#!/usr/bin/env bash
# Local CI gate: formatting, release build, tests, and the static audit.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (MAGUS_THREADS=1)"
MAGUS_THREADS=1 cargo test -q

echo "==> cargo test -q (MAGUS_THREADS=4)"
# Same suite, parallel exec layer engaged: by the determinism contract
# (DESIGN.md §"Parallel execution") results must not change.
MAGUS_THREADS=4 cargo test -q

echo "==> magus-audit check"
REPORT=target/audit-report.json
cargo run -q --release -p magus-audit -- check --json "$REPORT"

# Surface the machine-readable summary the audit binary just wrote.
python3 - "$REPORT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
print(f"audit: ok={r['ok']} "
      f"unsuppressed={r['unsuppressed_total']} "
      f"suppressed={r['suppressed_total']}")
for p in r["passes"]:
    print(f"  {p['pass']}: {p['unsuppressed']} open, {p['suppressed']} allowlisted")
if r["unused_allow_rules"]:
    print("  stale allowlist rules:")
    for rule in r["unused_allow_rules"]:
        print(f"    {rule}")
EOF

echo "==> obs overhead gate"
# Fixed tiny scenario, ObsLevel::Off vs Full interleaved; fails (exit 1)
# past 10% wall-clock overhead (MAGUS_OBS_OVERHEAD_MAX_PCT to override).
cargo run -q --release -p magus-bench --bin obs_overhead

echo "==> parallel speedup gate"
# Store rebuild + prewarm at 1 thread vs N, with a bit-level determinism
# check; on >= 4-core runners the N-thread run must be >= 1.8x faster
# (MAGUS_SPEEDUP_MIN to override), self-skips on smaller machines.
MAGUS_SCALE=tiny cargo run -q --release -p magus-bench --bin parallel_speedup

echo "CI: all stages green"
