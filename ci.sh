#!/usr/bin/env bash
# Local CI gate: formatting, release build, tests, the static audit, and
# the runtime robustness gates. Run from the repo root. Fails fast on the
# first broken stage and prints a per-stage wall-clock summary at the end.
set -euo pipefail
cd "$(dirname "$0")"

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_START=0

stage() {
    stage_end
    CURRENT_STAGE="$1"
    STAGE_START=$SECONDS
    echo "==> $1"
}

stage_end() {
    if [[ -n "$CURRENT_STAGE" ]]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=($((SECONDS - STAGE_START)))
        CURRENT_STAGE=""
    fi
}

summary() {
    stage_end
    echo "-- stage timing --"
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-32s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    done
}
trap summary EXIT

stage "cargo fmt --check"
cargo fmt --all -- --check

stage "cargo build --release"
cargo build --release

stage "cargo test (MAGUS_THREADS=1)"
MAGUS_THREADS=1 cargo test -q

stage "cargo test (MAGUS_THREADS=4)"
# Same suite, parallel exec layer engaged: by the determinism contract
# (DESIGN.md §"Parallel execution") results must not change.
MAGUS_THREADS=4 cargo test -q

stage "magus-audit check"
# The audit is a pre-commit-speed gate: ten passes over the whole
# workspace must finish inside a wall-clock budget or the gate itself
# has regressed (MAGUS_AUDIT_BUDGET_S to override). The binary is
# invoked directly so cargo overhead stays out of the measurement.
REPORT=target/audit-report.json
AUDIT_BUDGET_S=${MAGUS_AUDIT_BUDGET_S:-10}
# The root build stage only covers the root package's dependency
# graph, so build the auditor explicitly — outside the timed window.
cargo build -q --release -p magus-audit
AUDIT_START=$SECONDS
target/release/magus-audit check --json "$REPORT"
AUDIT_SECS=$((SECONDS - AUDIT_START))
if (( AUDIT_SECS > AUDIT_BUDGET_S )); then
    echo "magus-audit took ${AUDIT_SECS}s, over the ${AUDIT_BUDGET_S}s budget"
    exit 1
fi

# Surface the machine-readable summary the audit binary just wrote.
# python3 is a convenience, not a gate dependency: the audit above
# already failed the build on findings.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$REPORT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
print(f"audit: ok={r['ok']} "
      f"unsuppressed={r['unsuppressed_total']} "
      f"suppressed={r['suppressed_total']}")
for p in r["passes"]:
    print(f"  {p['pass']}: {p['unsuppressed']} open, {p['suppressed']} allowlisted")
if r["unused_allow_rules"]:
    print("  stale allowlist rules:")
    for rule in r["unused_allow_rules"]:
        print(f"    {rule}")
EOF
else
    echo "audit: summary skipped (python3 not installed); report at $REPORT"
fi

stage "obs overhead gate"
# Fixed tiny scenario, ObsLevel::Off vs Full interleaved; fails (exit 1)
# past 10% wall-clock overhead (MAGUS_OBS_OVERHEAD_MAX_PCT to override).
cargo run -q --release -p magus-bench --bin obs_overhead

stage "parallel speedup gate"
# Store rebuild + prewarm at 1 thread vs N, with a bit-level determinism
# check; on >= 4-core runners the N-thread run must be >= 1.8x faster
# (MAGUS_SPEEDUP_MIN to override), self-skips on smaller machines.
MAGUS_SCALE=tiny cargo run -q --release -p magus-bench --bin parallel_speedup

stage "probe bench gate"
# Probe-loop (apply -> read -> undo) throughput at 1/4/8 threads with
# bit-exact restoration and cross-thread identity asserts baked in;
# compares CPU-normalized single-thread probes/s against the committed
# BENCH_probe.json baseline and fails past a 10% regression
# (MAGUS_PROBE_REGRESSION_MAX_PCT to override). The regression compare
# self-skips on < 4-core runners; the smoke run always executes.
MAGUS_SCALE=tiny MAGUS_PROBE_TARGET_S=0.5 \
    cargo run -q --release -p magus-bench --bin probe_bench

stage "search portfolio gate"
# Cross-strategy quality harness in release (anneal and beam must never
# return a worse final utility than greedy on any paper market × seed;
# the measured utilities are pinned in EXPERIMENTS.md), then the
# strategy-throughput regression gate: each strategy's CPU-normalized
# probes/s against the committed BENCH_search.json baseline, failing
# past a 10% regression (MAGUS_SEARCH_REGRESSION_MAX_PCT to override).
# The regression compare self-skips on < 4-core runners; the smoke run
# and determinism asserts always execute. Re-baseline with
# MAGUS_SEARCH_WRITE_BASELINE=1.
cargo test -q --release -p magus-core --test search_portfolio
MAGUS_SCALE=tiny MAGUS_SEARCH_TARGET_S=0.5 \
    cargo run -q --release -p magus-bench --bin search_bench

stage "scale matrix gate"
# Continental-scale market generation + pruned evaluation at ~2k
# sectors: tile-compressed bases asserted, probe sweeps asserted to
# stay inside one footprint window (no full-raster rescans), and the
# CPU-normalized sectors/s compared against the committed
# BENCH_scale.json baseline, failing past a 10% regression
# (MAGUS_SCALE_REGRESSION_MAX_PCT to override). The regression compare
# self-skips on < 4-core runners; the smoke run and pruning asserts
# always execute. Re-baseline with MAGUS_SCALE_WRITE_BASELINE=1 (or
# scripts/rebaseline.sh for all three baselines at once). The fresh
# measurement lands in target/magus-results/scale_matrix.json for
# artifact upload.
MAGUS_SCALE_SECTORS=2001 \
    cargo run -q --release -p magus-bench --bin scale_matrix

stage "chaos matrix gate"
# Fault rates x scenarios through the migration executor, the search
# portfolio (greedy x anneal x beam), and the testbed sim: no panics,
# invariants hold after every recovery, zero-rate plans byte-identical
# to the no-fault baseline (see crates/bench chaos_matrix).
MAGUS_SCALE=tiny cargo run -q --release -p magus-bench --bin chaos_matrix

stage "CLI zero-rate fault identity"
# End-to-end flavor of the same contract: `mitigate --json` under a
# rate=0 fault plan must be byte-identical to the fault-free run, at 1
# and 4 worker threads. Every run streams the flight recorder; on a
# cmp failure `magus trace diff` names the first divergent record and
# the traces are copied into target/magus-results/ for artifact upload.
MAGUS_CLI=target/release/magus
mkdir -p target/magus-results
"$MAGUS_CLI" mitigate --json --seed 2 --threads 1 \
    --trace-out target/mitigate-base.trace.jsonl \
    2>/dev/null > target/mitigate-base.json
for t in 1 4; do
    "$MAGUS_CLI" mitigate --json --seed 2 --threads "$t" --faults "seed=9,rate=0" \
        --trace-out "target/mitigate-zero-$t.trace.jsonl" \
        2>/dev/null > "target/mitigate-zero-$t.json"
    cmp target/mitigate-base.json "target/mitigate-zero-$t.json" || {
        echo "CLI zero-rate fault run diverged at $t threads"
        "$MAGUS_CLI" trace diff target/mitigate-base.trace.jsonl \
            "target/mitigate-zero-$t.trace.jsonl" || true
        cp target/mitigate-base.trace.jsonl "target/mitigate-zero-$t.trace.jsonl" \
            target/magus-results/
        exit 1; }
done
# The traces themselves are part of the contract: schema-valid, and the
# zero-rate 1-thread and 4-thread streams must be byte-identical too
# (timings never enter the trace, so thread count must not show).
"$MAGUS_CLI" trace check target/mitigate-base.trace.jsonl \
    target/mitigate-zero-1.trace.jsonl target/mitigate-zero-4.trace.jsonl
"$MAGUS_CLI" trace diff target/mitigate-zero-1.trace.jsonl \
    target/mitigate-zero-4.trace.jsonl || {
        echo "zero-rate traces diverged between 1 and 4 threads"
        cp target/mitigate-zero-?.trace.jsonl target/magus-results/
        exit 1; }
echo "mitigate --json byte-identical under rate=0 plan at 1 and 4 threads"

stage "CLI cache identity"
# The path-loss cache must accelerate, never perturb: a scaled
# `mitigate --json` with a fresh --cache-dir (cold, writes the blobs),
# the same command again (warm, loads them), and a cache-free run must
# all be byte-identical. A corrupt blob must heal: flip a byte in the
# store blob and the next run has to quietly rebuild and still match.
CACHE_DIR=target/magus-cache-ci
rm -rf "$CACHE_DIR"
"$MAGUS_CLI" mitigate --json --seed 2 --scale 150 --threads 2 \
    2>/dev/null > target/mitigate-nocache.json
"$MAGUS_CLI" mitigate --json --seed 2 --scale 150 --threads 2 \
    --cache-dir "$CACHE_DIR" 2>/dev/null > target/mitigate-cachecold.json
"$MAGUS_CLI" mitigate --json --seed 2 --scale 150 --threads 2 \
    --cache-dir "$CACHE_DIR" 2>/dev/null > target/mitigate-cachewarm.json
cmp target/mitigate-nocache.json target/mitigate-cachecold.json || {
    echo "cache-dir cold run diverged from the cache-free run"; exit 1; }
cmp target/mitigate-cachecold.json target/mitigate-cachewarm.json || {
    echo "warm cache run diverged from the cold run"; exit 1; }
STORE_BLOB=$(ls "$CACHE_DIR"/magus-store-*.mpl2)
printf '\xff' | dd of="$STORE_BLOB" bs=1 seek=1000 conv=notrunc 2>/dev/null
"$MAGUS_CLI" mitigate --json --seed 2 --scale 150 --threads 2 \
    --cache-dir "$CACHE_DIR" 2>/dev/null > target/mitigate-cachehealed.json
cmp target/mitigate-nocache.json target/mitigate-cachehealed.json || {
    echo "corrupt-blob rebuild diverged from the cache-free run"; exit 1; }
rm -rf "$CACHE_DIR"
echo "mitigate --json byte-identical across no-cache, cold, warm, and healed-blob runs"

echo "CI: all stages green"
