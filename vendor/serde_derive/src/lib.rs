//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses: plain structs (named, tuple, unit) and
//! enums (unit, tuple, struct variants), with at most simple `<T>` type
//! parameters and **no** `#[serde(...)]` attributes. Parsing is done
//! directly over `proc_macro::TokenStream` (no `syn`/`quote` — the build
//! sandbox has no network), and code is generated as source text.
//!
//! The generated impls target the Value-based traits of the sibling
//! `serde` stub: `serialize_value(&self) -> Value` and
//! `deserialize_value(&Value) -> Result<Self, DeError>`, using serde's
//! external enum tagging (`"Variant"` / `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Bare type-parameter names (e.g. `["T"]` for `GridMap<T>`).
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VFields,
}

#[derive(Debug)]
enum VFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the Value-based `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the Value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let keyword = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let generics = parse_generics(&mut toks);
    match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                generics,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                generics,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input {
                name,
                generics,
                kind: Kind::UnitStruct,
            },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                generics,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}`"),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<T, U>` after the type name; only bare type parameters are
/// supported (no bounds, lifetimes, or const generics — the workspace
/// doesn't derive on such types).
fn parse_generics(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Vec<String> {
    match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    toks.next();
    let mut params = Vec::new();
    let mut depth = 1usize;
    while depth > 0 {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Ident(i)) if depth == 1 => params.push(i.to_string()),
            Some(_) => {}
            None => panic!("unterminated generics"),
        }
    }
    params
}

/// Splits a token stream at top-level commas. Groups are atomic token
/// trees; only `<`/`>` nesting needs explicit tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut it = seg.into_iter().peekable();
            skip_attrs_and_vis(&mut it);
            match it.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut it = seg.into_iter().peekable();
            skip_attrs_and_vis(&mut it);
            let name = match it.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VFields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VFields::Named(parse_named_fields(g.stream()))
                }
                // `= discriminant` or end of variant: unit either way.
                _ => VFields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ---- code generation -------------------------------------------------

fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let bare = input.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{bare}>",
            bounded.join(", "),
            input.name
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\", ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let name = &input.name;
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vname}\", {inner});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VFields::Named(fields) => {
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\", ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vname}\", ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{} {{\nfn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        impl_header(input, "Serialize")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", v.kind()))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(\
                     m.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?)?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v.kind()))?;\n\
                 if a.len() != {n} {{\n\
                 return Err(::serde::DeError::custom(format!(\"expected {n} elements, got {{}}\", a.len())));\n\
                 }}\nOk({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(&a[{i}])?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Kind::UnitStruct => format!("let _ = v; Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    VFields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    VFields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let a = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", inner.kind()))?;\n\
                             if a.len() != {n} {{\n\
                             return Err(::serde::DeError::custom(\"wrong tuple arity\"));\n\
                             }}\nOk({name}::{vname}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(&a[{i}])?,\n"
                            ));
                        }
                        arm.push_str("))\n}\n");
                        data_arms.push_str(&arm);
                    }
                    VFields::Named(fields) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let fm = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", inner.kind()))?;\n\
                             Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 fm.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?)?,\n"
                            ));
                        }
                        arm.push_str("})\n}\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\"enum representation\", other.kind())),\n\
                 }}"
            )
        }
    };
    format!(
        "{} {{\nfn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}",
        impl_header(input, "Deserialize")
    )
}
