//! Offline stand-in for `criterion`: runs each registered benchmark a
//! fixed number of iterations and reports mean wall-clock time per
//! iteration. No warm-up modeling, outlier analysis, or HTML reports —
//! enough to keep `cargo bench` meaningful for relative comparisons.

use std::time::Instant;

/// Drives closures under measurement.
pub struct Bencher {
    iters: u64,
    /// (total nanoseconds, iterations) recorded by the last `iter` call.
    last: Option<(u128, u64)>,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to move lazy initialization out of the timing.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last = Some((start.elapsed().as_nanos(), self.iters));
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 60 }
    }
}

fn report(name: &str, last: Option<(u128, u64)>) {
    match last {
        Some((nanos, iters)) if iters > 0 => {
            let per = nanos as f64 / iters as f64;
            let (value, unit) = if per >= 1e9 {
                (per / 1e9, "s")
            } else if per >= 1e6 {
                (per / 1e6, "ms")
            } else if per >= 1e3 {
                (per / 1e3, "µs")
            } else {
                (per, "ns")
            };
            println!("{name:<50} {value:>10.3} {unit}/iter ({iters} iters)");
        }
        _ => println!("{name:<50} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last: None,
        };
        f(&mut b);
        report(name, b.last);
        self
    }

    /// Opens a named group sharing this driver's settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let iters = self.sample_size.unwrap_or(self.parent.sample_size) as u64;
        let mut b = Bencher { iters, last: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.last);
        self
    }

    /// Ends the group (report flushing is immediate; kept for API shape).
    pub fn finish(&mut self) {}
}

/// Prevents the optimizer from discarding a value (compat re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
