//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `prop_map`, `prop_oneof!`, `prop::collection::vec`, and
//! `any::<T>()` — as a plain sampling harness. Each test runs its body
//! over N independently drawn cases with a per-test deterministic seed.
//! There is **no shrinking**: a failing case panics with the values
//! baked into the assertion message, which is enough to reproduce given
//! the deterministic seeding.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-run configuration; `Default` honors `PROPTEST_CASES`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// The harness RNG: SplitMix64, seeded per test from the test name (and
/// `PROPTEST_SEED` if set) so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = extra.parse::<u64>() {
                h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty draw domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: `sample` draws a plain
/// value and failing cases do not shrink.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// (see [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// An equal-weight union of strategies (the [`prop_oneof!`] backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// ---- range strategies ------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ---- any / Arbitrary -------------------------------------------------

/// Full-domain sampling for [`any`].
pub trait Arbitrary {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}
macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The [`any`] strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over a type's full natural domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- collections -----------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length domain for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<i32> for SizeRange {
        fn from(n: i32) -> SizeRange {
            assert!(n >= 0, "negative collection size");
            SizeRange {
                lo: n as usize,
                hi: n as usize,
            }
        }
    }
    impl From<u32> for SizeRange {
        fn from(n: u32) -> SizeRange {
            SizeRange {
                lo: n as usize,
                hi: n as usize,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::Range<i32>> for SizeRange {
        fn from(r: std::ops::Range<i32>) -> SizeRange {
            assert!(0 <= r.start && r.start < r.end, "bad size range");
            SizeRange {
                lo: r.start as usize,
                hi: (r.end - 1) as usize,
            }
        }
    }
    impl From<std::ops::Range<u32>> for SizeRange {
        fn from(r: std::ops::Range<u32>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start as usize,
                hi: (r.end - 1) as usize,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---- macros ----------------------------------------------------------

/// Declares property tests. Each `fn name(pat in strategy, ...)` body is
/// run over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion worker for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards a case when its assumption fails. With no shrinking or
/// rejection bookkeeping, a failed assumption just skips the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// An equal-weight choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The `prop` path alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5.0..5.0f64, n in 1u8..=4, v in prop::collection::vec(0u32..10, 1..6)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=4).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments and tuple patterns parse.
        #[test]
        fn tuples_and_maps(a in (0u32..3, 1.0..2.0f64), flip in any::<bool>()) {
            let (i, f) = a;
            prop_assert!(i < 3);
            prop_assert!((1.0..2.0).contains(&f));
            let mapped = (0u32..5).prop_map(|v| v * 2);
            let mut rng = TestRng::for_test("inner");
            prop_assert!(mapped.sample(&mut rng) % 2 == 0);
            let _ = flip;
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![(0u32..1).prop_map(|_| "a"), (0u32..1).prop_map(|_| "b"),];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
