//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! parking_lot API shape — `lock()` returns the guard directly, with no
//! poisoning. Built over `std::sync`; a panic while a guard is held
//! simply leaves the data as the panicking thread left it (parking_lot's
//! own semantics), instead of wedging every later `lock()` the way
//! std's poisoning does.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that cannot be poisoned.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never errors: a
    /// poisoned std lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that cannot be poisoned.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // A std Mutex would now be poisoned; ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
