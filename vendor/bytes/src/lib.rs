//! Offline stand-in for `bytes`: the little-endian read/write subset the
//! propagation binary format uses, backed by plain `Vec<u8>` (no
//! refcounted slices — `freeze` simply transfers ownership).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential big/little-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential reads from a cursor-like view. Implemented for `&[u8]`,
/// which advances the slice itself (the `bytes` crate convention).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Copies exactly `dest.len()` bytes out. Panics if fewer remain.
    fn copy_to_slice(&mut self, dest: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(dest.len() <= self.len(), "read past end of buffer");
        dest.copy_from_slice(&self[..dest.len()]);
        *self = &self[dest.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(-3.25);
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        view.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(view.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(view.get_f32_le(), -3.25);
        assert_eq!(view.remaining(), 0);
    }
}
