//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope` and a clonable multi-consumer unbounded channel
//! over `std::sync::mpsc` — the two pieces the bench harness uses for
//! its parallel market map.

use std::any::Any;
use std::sync::{mpsc, Arc, Mutex};

/// Multi-producer multi-consumer channels.
pub mod channel {
    use super::*;

    /// Sending half; clonable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Receiving half; clonable (receivers share one queue — each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues a message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors once the channel is
        /// drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

/// A scope handle for spawning borrowing threads; mirrors
/// `crossbeam::thread::Scope` closely enough for `|_|` closures.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The
    /// closure receives the scope handle again (crossbeam's signature),
    /// allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        inner.spawn(move || f(&Scope(inner)))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned;
/// returns once every spawned thread has finished.
///
/// Unlike real crossbeam, a panicking child propagates the panic out of
/// `scope` (std semantics) instead of surfacing it in the `Err` arm, so
/// the error arm here is vestigial — callers' `.expect(...)` still works.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

/// `crossbeam::thread` module alias, matching the real crate layout.
pub mod thread {
    pub use crate::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_workers_drain_shared_queue() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).expect("open");
        }
        drop(tx);
        let total = std::sync::Mutex::new(0u32);
        scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        *total.lock().expect("sane") += v;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(*total.lock().expect("sane"), (0..100).sum());
    }
}
