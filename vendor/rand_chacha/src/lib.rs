//! Offline stand-in for `rand_chacha`: genuine ChaCha block functions
//! (8, 12, and 20 double-round variants) behind the rand-stub traits.
//! Output streams are deterministic per seed, which is the property the
//! workspace actually relies on (market/terrain generation and the
//! testbed are all explicitly seeded).
//!
//! The 20-round keystream is RFC 8439-conformant and therefore
//! **bit-compatible** with upstream `rand_chacha` word streams for the
//! default stream id 0: the state layout below (64-bit counter in words
//! 12–13, zero stream id in 14–15) coincides with the RFC's
//! 32-bit-counter + 96-bit-nonce layout whenever the nonce is zero and
//! the counter stays under 2³². `tests/rng_kat.rs` (workspace root)
//! pins this against the RFC 8439 Appendix A.1 zero-nonce vectors; the
//! SplitMix64 `seed_from_u64` expansion in the vendored `rand` matches
//! `rand_core`'s documented default, so u64-seeded streams match
//! upstream too.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha block function with `rounds` total rounds (8/12/20).
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            block: [u32; 16],
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> $name {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    block: [0; 16],
                    index: 16, // forces a refill on first use
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.block = chacha_block(&self.key, self.counter, $rounds);
                    self.counter = self.counter.wrapping_add(1);
                    self.index = 0;
                }
                let word = self.block[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds (fast, statistically strong)."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds (the IETF cipher core)."
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i: u32 = rng.random_range(5..10);
            assert!((5..10).contains(&i));
        }
    }
}
