//! Offline stand-in for `rand` 0.9.
//!
//! Implements the trait surface this workspace uses — [`RngCore`],
//! [`Rng::random_range`]/[`Rng::random`], and [`SeedableRng`] (including
//! the SplitMix64-based `seed_from_u64` seed expansion, so ChaCha
//! streams stay deterministic per seed) — with the rand 0.9 method
//! names. Distribution machinery, `thread_rng`, and OS entropy are
//! deliberately absent: every RNG in this repo is explicitly seeded.

use std::ops::{Range, RangeInclusive};

/// The core RNG interface: a source of uniform random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A uniform f64 in `[0, 1)` built from the top 53 bits of a word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draws one value. Panics on an empty range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 sample range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform draw over a type's full natural domain
    /// (`f64`/`f32` in `[0, 1)`, `bool` fair coin, integers full width).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Full-domain uniform sampling, used by [`Rng::random`].
pub trait Random {
    /// Draws one value.
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Random for f64 {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> f64 {
        unit_f64(rng.next_u64())
    }
}
impl Random for bool {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Random for u64 {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> u64 {
        rng.next_u64()
    }
}
impl Random for u32 {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> u32 {
        rng.next_u32()
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction real rand uses, so streams are stable per seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}
