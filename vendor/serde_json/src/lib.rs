//! Offline stand-in for `serde_json`, over the sibling `serde` stub's
//! [`Value`] data model: text parsing, compact/pretty writers, and a
//! `json!` macro covering object/array/expression forms.

use serde::{Deserialize, Map, Number, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed (2-space indented) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize_value(), 0).map_err(Error::new)?;
    Ok(out)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) -> fmt::Result {
    use fmt::Write;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
            Ok(())
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                serde::write_escaped(out, k)?;
                out.push_str(": ");
                write_pretty(out, val, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
            Ok(())
        }
        other => write!(out, "{other}"),
    }
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value).map_err(Error::new)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let n = if is_float {
            Number::F(text.parse::<f64>().map_err(Error::new)?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(Error::new)?)
        } else {
            Number::U(text.parse::<u64>().map_err(Error::new)?)
        };
        Ok(Value::Number(n))
    }
}

/// Builds a [`Value`] from JSON-ish syntax: objects with string-literal
/// keys (values may be nested objects or arbitrary serializable
/// expressions), arrays of expressions, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::serde::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut m = ::serde::Map::new();
        $crate::json_object_entries!(m; $($body)+);
        $crate::Value::Object(m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for [`json!`] object bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($m:ident;) => {};
    ($m:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $m.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($m; $($rest)*);
    };
    ($m:ident; $key:literal : { $($inner:tt)* }) => {
        $m.insert($key, $crate::json!({ $($inner)* }));
    };
    ($m:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert($key, $crate::to_value(&$val));
        $crate::json_object_entries!($m; $($rest)*);
    };
    ($m:ident; $key:literal : $val:expr) => {
        $m.insert($key, $crate::to_value(&$val));
    };
}
