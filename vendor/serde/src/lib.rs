//! Offline stand-in for `serde`.
//!
//! The sandbox this repository builds in has no network access, so the
//! real `serde` cannot be fetched. This crate implements the subset the
//! workspace actually uses — `#[derive(Serialize, Deserialize)]` on
//! plain structs and enums (no serde attributes), routed through an
//! in-memory JSON [`Value`] — with the same public item names, so
//! swapping the real crates back in is a one-line `Cargo.toml` change.
//!
//! Design: instead of serde's visitor-based zero-copy data model, both
//! traits go through [`Value`]. That is slower but dramatically simpler,
//! and every serialization in this workspace is either a small config
//! header or an offline artifact dump where throughput is irrelevant.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, kept in its original domain so integer round-trips are
/// exact (u64 seeds must not be squeezed through f64).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as an f64 (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as a u64 if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as an i64 if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// An order-preserving string → [`Value`] map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts a key, replacing any previous entry with the same key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// An in-memory JSON value — the interchange type both traits use.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric form, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Writes a string with JSON escaping.
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            // Non-finite floats have no JSON representation; follow
            // serde_json's Value convention and emit null.
            Number::F(v) if !v.is_finite() => f.write_str("null"),
            Number::F(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Type-mismatch error.
    pub fn expected(what: &str, found: &str) -> DeError {
        DeError(format!("expected {what}, found {found}"))
    }

    /// A struct field was absent.
    pub fn missing_field(name: &str) -> DeError {
        DeError(format!("missing field `{name}`"))
    }

    /// Free-form error.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Value-based serialization (see crate docs for why this replaces the
/// visitor model of real serde).
pub trait Serialize {
    /// Converts `self` into a JSON [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Value-based deserialization.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON [`Value`].
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_number().ok_or_else(|| DeError::expected("number", v.kind()))?;
                let u = n.as_u64().ok_or_else(|| DeError::expected("unsigned integer", "number"))?;
                <$t>::try_from(u).map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_number().ok_or_else(|| DeError::expected("number", v.kind()))?;
                let i = n.as_i64().ok_or_else(|| DeError::expected("integer", "number"))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_number().ok_or_else(|| DeError::expected("number", v.kind()))?;
                Ok(n.as_f64() as $t)
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v.kind()))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", v.kind()))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", "string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v.kind()))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::deserialize_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v.kind()))?;
                let expected = [$(stringify!($idx)),+].len();
                if a.len() != expected {
                    return Err(DeError::custom(format!("expected tuple of {expected}, got {}", a.len())));
                }
                Ok(($($name::deserialize_value(&a[$idx])?,)+))
            }
        }
    )+};
}
ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize_value());
        }
        Value::Object(m)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v.kind()))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v.kind()))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
