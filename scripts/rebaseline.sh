#!/usr/bin/env bash
# Regenerates every committed perf baseline in one command:
#
#   BENCH_probe.json   (probe_bench,  MAGUS_PROBE_WRITE_BASELINE=1)
#   BENCH_search.json  (search_bench, MAGUS_SEARCH_WRITE_BASELINE=1)
#   BENCH_scale.json   (scale_matrix, MAGUS_SCALE_WRITE_BASELINE=1)
#
# Run it on a quiet machine (the numbers are calibration-normalized,
# but noise still widens the floor), review the printed old -> new
# deltas, and commit the three JSON files together. See README
# "Performance gates".
set -euo pipefail
cd "$(dirname "$0")/.."

# Captures the headline normalized figure from a baseline file so the
# delta survives the rewrite. Missing file or field prints "none".
headline() {
    local file="$1" key="$2"
    if [ -f "$file" ]; then
        grep -o "\"$key\": *[0-9.]*" "$file" | head -1 | grep -o '[0-9.]*$' || echo none
    else
        echo none
    fi
}

echo "rebaseline: building release bench bins…"
cargo build -q --release -p magus-bench \
    --bin probe_bench --bin search_bench --bin scale_matrix

declare -A OLD
OLD[probe]=$(headline BENCH_probe.json normalized_1t)
OLD[search]=$(headline BENCH_search.json normalized)
OLD[scale]=$(headline BENCH_scale.json normalized)

echo "rebaseline: probe_bench…"
MAGUS_PROBE_WRITE_BASELINE=1 ./target/release/probe_bench >/dev/null
echo "rebaseline: search_bench…"
MAGUS_SEARCH_WRITE_BASELINE=1 ./target/release/search_bench >/dev/null
echo "rebaseline: scale_matrix (MAGUS_SCALE_SECTORS=${MAGUS_SCALE_SECTORS:-2001})…"
MAGUS_SCALE_SECTORS="${MAGUS_SCALE_SECTORS:-2001}" \
    MAGUS_SCALE_WRITE_BASELINE=1 ./target/release/scale_matrix >/dev/null

echo
echo "rebaseline: normalized headline deltas (old -> new):"
printf '  %-18s %s -> %s\n' BENCH_probe.json "${OLD[probe]}" "$(headline BENCH_probe.json normalized_1t)"
printf '  %-18s %s -> %s\n' BENCH_search.json "${OLD[search]}" "$(headline BENCH_search.json normalized)"
printf '  %-18s %s -> %s\n' BENCH_scale.json "${OLD[scale]}" "$(headline BENCH_scale.json normalized)"
echo
echo "rebaseline: review the deltas, then commit the three BENCH_*.json files."
