//! Facade crate for the Magus reproduction.
//!
//! Re-exports the whole workspace under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use magus::prelude::*;
//! ```
//!
//! See the individual crates for subsystem documentation:
//! [`magus_core`] (search & mitigation), [`magus_exec`] (deterministic
//! parallel execution), [`magus_model`] (coverage / capacity analysis),
//! [`magus_net`] (topology & scenarios),
//! [`magus_propagation`] (path loss), [`magus_lte`] (link adaptation),
//! [`magus_terrain`] (synthetic geography), [`magus_testbed`] (the §3
//! LTE testbed simulator), [`magus_viz`] (map rendering), and
//! [`magus_geo`] (grids & units).

pub use magus_core as core;
pub use magus_exec as exec;
pub use magus_fault as fault;
pub use magus_geo as geo;
pub use magus_lte as lte;
pub use magus_model as model;
pub use magus_net as net;
pub use magus_propagation as propagation;
pub use magus_terrain as terrain;
pub use magus_testbed as testbed;
pub use magus_viz as viz;

/// Convenient single-import surface for examples and quickstarts.
pub mod prelude {
    pub use magus_core::prelude::*;
    pub use magus_geo::{Db, Dbm, GridCoord, GridSpec, MilliWatt, PointM};
    pub use magus_lte::RateMapper;
    pub use magus_model::prelude::*;
    pub use magus_net::prelude::*;
}
