//! `magus-exec`: the workspace's deterministic parallel-execution layer.
//!
//! Magus's proactive search probes hundreds of candidate settings per
//! sector (paper §5); the probe/undo structure of the evaluator makes
//! each candidate independent, which is exactly the shape a work pool
//! wants. This crate is the one place threads are spawned:
//!
//! * [`map_indexed`] — a deterministic parallel map: `n` indexed tasks
//!   fan out over scoped workers pulling from a shared queue, and the
//!   results come back **in index order** no matter which worker ran
//!   what. Used by the path-loss store's base-matrix build, cache
//!   prewarming, and the bench harness's per-market fan-out.
//! * [`team`] — round-synchronized worker teams with per-worker state
//!   and explicit command/result channels. Used by the hill-climber,
//!   where every worker keeps a private `ModelState` replica in
//!   lock-step with the driver.
//! * [`argmax_det`] — the order-fixed reduction: maximum by
//!   [`f64::total_cmp`], ties broken by the lowest index. Any partition
//!   of the same scored candidates reduces to the same winner, which is
//!   what makes search trajectories thread-count-invariant.
//!
//! **Thread-count resolution** ([`threads`]): an explicit
//! [`set_threads`] override (the CLI's `--threads`) wins; otherwise the
//! `MAGUS_THREADS` environment variable; otherwise
//! [`std::thread::available_parallelism`]. The resolved count only ever
//! changes wall-clock, never results — that contract is enforced by the
//! thread-count-invariance suites in `tests/model_properties.rs` and
//! `crates/cli/tests/threads_flag.rs`.
//!
//! **Instrumentation** (through `magus-obs`): `pool.tasks` (tasks
//! executed), `pool.queue_depth` (remaining tasks, gauge),
//! `pool.worker_busy_ns` (per-worker busy time per [`map_indexed`]
//! call), `pool.teams` / `pool.team_rounds` for the team layer.
//!
//! The crate is std-only (scoped threads) plus the vendored `crossbeam`
//! channels, panic-free by design (every channel failure degrades to
//! "stop working", never to an unwrap), and spawns nothing at all when
//! the resolved thread count is 1 — the serial path is the parallel
//! path with the fan-out inlined, not a separate code path.

#![forbid(unsafe_code)]

mod pool;
pub mod team;

pub use pool::map_indexed;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the resolved thread count for the whole process (the CLI's
/// `--threads N`). Values are floored at 1.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Clears a [`set_threads`] override, returning resolution to
/// `MAGUS_THREADS` / available parallelism (used by tests).
pub fn clear_threads_override() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The worker count parallel sections use: the [`set_threads`] override
/// if present, else `MAGUS_THREADS` (when it parses to ≥ 1), else
/// [`std::thread::available_parallelism`] (1 when unknown).
///
/// By the determinism contract, this value never affects results —
/// callers may read it at any time without synchronizing.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("MAGUS_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The order-fixed reduction: the pair with the maximum value by
/// [`f64::total_cmp`], ties broken by the **lowest** index.
///
/// Equivalent to scanning candidates in index order and keeping a
/// strictly-greater running best — but insensitive to the iteration
/// order, so results collected from racing workers reduce identically
/// to a serial scan. `total_cmp` is total (positive NaN sorts above
/// +inf), so the reduction never stalls on NaN; callers that must not
/// select NaN (the hill-climber) filter it out beforehand with their
/// improvement threshold.
pub fn argmax_det(pairs: impl IntoIterator<Item = (usize, f64)>) -> Option<(usize, f64)> {
    pairs.into_iter().fold(None, |best, (i, v)| match best {
        None => Some((i, v)),
        Some((bi, bv)) => match v.total_cmp(&bv) {
            std::cmp::Ordering::Greater => Some((i, v)),
            std::cmp::Ordering::Equal if i < bi => Some((i, v)),
            _ => Some((bi, bv)),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide override.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn override_wins_and_clears() {
        let _g = guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0); // floored at 1
        assert_eq!(threads(), 1);
        clear_threads_override();
        assert!(threads() >= 1);
    }

    #[test]
    fn argmax_is_order_independent() {
        let fwd = argmax_det([(0, 1.0), (1, 3.0), (2, 3.0), (3, 2.0)]);
        let rev = argmax_det([(3, 2.0), (2, 3.0), (1, 3.0), (0, 1.0)]);
        assert_eq!(fwd, Some((1, 3.0)));
        assert_eq!(rev, Some((1, 3.0)));
    }

    #[test]
    fn argmax_matches_serial_strictly_greater_scan() {
        let vals = [2.0, 7.0, 7.0, -1.0, 7.0, 3.0];
        let mut serial: Option<(usize, f64)> = None;
        for (i, &v) in vals.iter().enumerate() {
            if serial.map_or(true, |(_, bv)| v > bv) {
                serial = Some((i, v));
            }
        }
        assert_eq!(argmax_det(vals.into_iter().enumerate()), serial);
    }

    #[test]
    fn argmax_handles_empty_and_nan() {
        assert_eq!(argmax_det(std::iter::empty()), None);
        // total_cmp is total: positive NaN sorts above every real, and
        // the outcome is the same from either direction.
        let a = argmax_det([(0, f64::NAN), (1, 0.0)]);
        let b = argmax_det([(1, 0.0), (0, f64::NAN)]);
        assert!(matches!(a, Some((0, v)) if v.is_nan()));
        assert!(matches!(b, Some((0, v)) if v.is_nan()));
    }
}
