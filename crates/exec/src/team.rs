//! Round-synchronized worker teams with per-worker state.
//!
//! A [`map_indexed`](crate::map_indexed) task is stateless; the
//! hill-climber needs more: each worker holds a private replica of the
//! search state, probes candidate batches against it, and replays every
//! accepted move so the replica stays in lock-step with the driver.
//! [`with_team`] provides exactly that shape: one command channel per
//! worker (so the driver can address or broadcast), one shared result
//! channel back, scoped threads underneath.
//!
//! Determinism contract: the driver decides *what* to evaluate and how
//! to reduce; workers only compute. As long as worker computations are
//! deterministic per command and the reduction is order-fixed (see
//! [`argmax_det`](crate::argmax_det)), the team's results are identical
//! at any worker count — including 1.

use crossbeam::channel;
use std::time::Instant;

/// A worker's endpoints: commands in, `(worker id, result)` out.
pub struct WorkerPort<Cmd, Out> {
    id: usize,
    rx: channel::Receiver<Cmd>,
    tx: channel::Sender<(usize, Out)>,
}

impl<Cmd, Out> WorkerPort<Cmd, Out> {
    /// This worker's index within the team.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Blocks for the next command; `None` once the driver is done
    /// (its [`Team`] dropped, closing the command channel).
    pub fn next(&self) -> Option<Cmd> {
        let cmd = self.rx.recv().ok();
        if cmd.is_some() {
            magus_obs::counter_inc!("pool.team_commands");
        }
        cmd
    }

    /// Sends a result to the driver; `false` if the driver is gone
    /// (the worker should wind down).
    pub fn send(&self, out: Out) -> bool {
        let ok = self.tx.send((self.id, out)).is_ok();
        if ok {
            magus_obs::counter_inc!("pool.team_results");
        }
        ok
    }
}

/// The driver's handle to a running team.
pub struct Team<Cmd, Out> {
    txs: Vec<channel::Sender<Cmd>>,
    rx: channel::Receiver<(usize, Out)>,
}

impl<Cmd, Out> Team<Cmd, Out> {
    /// Number of workers in the team.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Sends a command to one worker; `false` if it already exited.
    pub fn send(&self, worker: usize, cmd: Cmd) -> bool {
        self.txs
            .get(worker)
            .map_or(false, |tx| tx.send(cmd).is_ok())
    }

    /// Sends a copy of `cmd` to every worker; returns how many accepted.
    pub fn broadcast(&self, cmd: Cmd) -> usize
    where
        Cmd: Clone,
    {
        self.txs
            .iter()
            .filter(|tx| tx.send(cmd.clone()).is_ok())
            .count()
    }

    /// Blocks for the next `(worker id, result)`; `None` if every
    /// worker has exited.
    pub fn recv(&self) -> Option<(usize, Out)> {
        self.rx.recv().ok()
    }

    /// Receives exactly `n` results (or fewer if workers die), in
    /// arrival order. Callers reduce with an order-fixed reduction.
    pub fn collect(&self, n: usize) -> Vec<(usize, Out)> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.recv() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }
}

/// Spawns `workers` scoped threads each running `worker(port)`, then
/// runs `driver(team)` on the calling thread and returns its result.
///
/// Dropping the [`Team`] (which `driver` consumes) closes every command
/// channel; workers observe `None` from [`WorkerPort::next`], return,
/// and the scope joins them before `with_team` returns. A panicking
/// worker propagates the panic out of the scope (std semantics).
pub fn with_team<Cmd, Out, R, W, D>(workers: usize, worker: W, driver: D) -> R
where
    Cmd: Send,
    Out: Send,
    W: Fn(WorkerPort<Cmd, Out>) + Sync,
    D: FnOnce(Team<Cmd, Out>) -> R,
{
    let workers = workers.max(1);
    magus_obs::counter_inc!("pool.teams");
    magus_obs::gauge_max!(
        "pool.team_workers",
        i64::try_from(workers).unwrap_or(i64::MAX)
    );
    let (out_tx, out_rx) = channel::unbounded::<(usize, Out)>();
    let mut txs = Vec::with_capacity(workers);
    let mut ports = Vec::with_capacity(workers);
    for id in 0..workers {
        let (tx, rx) = channel::unbounded::<Cmd>();
        txs.push(tx);
        ports.push(WorkerPort {
            id,
            rx,
            tx: out_tx.clone(),
        });
    }
    drop(out_tx);
    std::thread::scope(|s| {
        for port in ports {
            let worker = &worker;
            s.spawn(move || {
                let started = Instant::now();
                worker(port);
                magus_obs::observe!(
                    "pool.worker_lifetime_ns",
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
                );
            });
        }
        driver(Team { txs, rx: out_rx })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers double numbers; the driver runs two synchronized rounds.
    #[test]
    fn rounds_synchronize_and_results_tag_workers() {
        let out = with_team(
            3,
            |port: WorkerPort<u64, u64>| {
                while let Some(v) = port.next() {
                    if !port.send(v * 2) {
                        break;
                    }
                }
            },
            |team| {
                let mut totals = Vec::new();
                for round in 0..2u64 {
                    for w in 0..team.workers() {
                        assert!(team.send(w, round * 10 + w as u64));
                    }
                    let mut results = team.collect(team.workers());
                    results.sort_unstable();
                    totals.push(results);
                }
                totals
            },
        );
        assert_eq!(out[0], vec![(0, 0), (1, 2), (2, 4)]);
        assert_eq!(out[1], vec![(0, 20), (1, 22), (2, 24)]);
    }

    /// Per-worker state survives across rounds (the hill-climb shape).
    #[test]
    fn workers_keep_state_between_commands() {
        #[derive(Clone)]
        enum Cmd {
            Add(u64),
            Report,
        }
        let sums = with_team(
            2,
            |port: WorkerPort<Cmd, u64>| {
                let mut acc = 0u64;
                while let Some(cmd) = port.next() {
                    match cmd {
                        Cmd::Add(v) => acc += v,
                        Cmd::Report => {
                            if !port.send(acc) {
                                break;
                            }
                        }
                    }
                }
            },
            |team| {
                assert_eq!(team.broadcast(Cmd::Add(5)), 2);
                assert_eq!(team.broadcast(Cmd::Add(7)), 2);
                assert_eq!(team.broadcast(Cmd::Report), 2);
                let mut r = team.collect(2);
                r.sort_unstable();
                r
            },
        );
        assert_eq!(sums, vec![(0, 12), (1, 12)]);
    }

    /// Dropping the team ends the workers; with_team returns cleanly.
    #[test]
    fn team_drop_terminates_workers() {
        let r = with_team(
            4,
            |port: WorkerPort<(), ()>| while port.next().is_some() {},
            |_team| 42,
        );
        assert_eq!(r, 42);
    }
}
