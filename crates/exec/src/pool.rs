//! The deterministic indexed work pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs `f(0), …, f(n - 1)` across up to `workers` scoped threads and
/// returns the results **in index order**.
///
/// Workers pull indices from a shared atomic queue (dynamic load
/// balancing), tag each result with its index, and the driver slots
/// results back into place — so the output is identical to the serial
/// `(0..n).map(f)` no matter how the work interleaved. With `workers`
/// ≤ 1 (or `n` ≤ 1) no thread is spawned and the map runs inline.
///
/// `f` must be deterministic per index for the pool to be deterministic
/// overall; nothing here re-orders or drops results. A panicking task
/// propagates out of the enclosing scope (std scoped-thread semantics).
///
/// Instrumented via `magus-obs`: `pool.tasks` counts executed tasks,
/// `pool.queue_depth` tracks the remaining-task gauge,
/// `pool.worker_busy_ns` records each worker's busy time for the call,
/// and `pool.worker_tasks` records each worker's share of the queue —
/// a skewed histogram there means the dynamic balancing is fighting
/// uneven task costs.
pub fn map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n)
            .map(|i| {
                let out = f(i);
                magus_obs::counter_inc!("pool.tasks");
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || {
                let started = Instant::now();
                let mut executed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    magus_obs::gauge_set!(
                        "pool.queue_depth",
                        i64::try_from(n.saturating_sub(i + 1)).unwrap_or(i64::MAX)
                    );
                    let out = f(i);
                    executed += 1;
                    magus_obs::counter_inc!("pool.tasks");
                    if tx.send((i, out)).is_err() {
                        break; // driver gone: stop quietly
                    }
                }
                magus_obs::observe!("pool.worker_tasks", executed);
                magus_obs::observe!(
                    "pool.worker_busy_ns",
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
                );
            });
        }
        drop(tx);
        while let Ok((i, v)) = rx.recv() {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(v);
            }
        }
    });
    let out: Vec<T> = slots.into_iter().flatten().collect();
    // Every index was claimed exactly once and either sent a result or
    // panicked (which propagated above); a short vector is unreachable.
    assert!(out.len() == n, "work pool lost {} results", n - out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 9] {
            let out = map_indexed(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_item_maps() {
        assert_eq!(map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn parallel_matches_serial_for_float_work() {
        let work = |i: usize| (i as f64).sqrt().sin() * 1e9;
        let serial: Vec<f64> = (0..257).map(work).collect();
        let parallel = map_indexed(257, 8, work);
        // Bit-identical, not approximately equal: same index, same math.
        let sb: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb);
    }

    #[test]
    fn workers_actually_run_concurrently() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        map_indexed(16, 4, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // On a single-core box the scheduler may still serialize us, but
        // more than one worker must at least have been alive at once when
        // any real parallelism exists; accept >= 1 to stay robust.
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }
}
