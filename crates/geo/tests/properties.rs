//! Property-based tests of the geometry/raster substrate.

use magus_geo::{Db, Dbm, GridSpec, GridWindow, PointM};
use proptest::prelude::*;

proptest! {
    /// dBm ↔ mW roundtrips across the whole plausible power range.
    #[test]
    fn dbm_milliwatt_roundtrip(v in -200.0..80.0f64) {
        let back = Dbm(v).to_milliwatt().to_dbm();
        prop_assert!((back.0 - v).abs() < 1e-9);
    }

    /// dB linear factors compose multiplicatively.
    #[test]
    fn db_addition_is_linear_multiplication(a in -60.0..60.0f64, b in -60.0..60.0f64) {
        let composed = (Db(a) + Db(b)).linear_factor();
        let product = Db(a).linear_factor() * Db(b).linear_factor();
        prop_assert!((composed - product).abs() <= product * 1e-12);
    }

    /// Index/coordinate bijection holds for arbitrary raster shapes.
    #[test]
    fn grid_index_bijection(w in 1u32..80, h in 1u32..80, ox in -1e5..1e5f64, oy in -1e5..1e5f64) {
        let spec = GridSpec::new(PointM::new(ox, oy), 100.0, w, h);
        for i in (0..spec.len()).step_by(7) {
            prop_assert_eq!(spec.index(spec.coord_of_index(i)), i);
        }
    }

    /// Every cell center maps back to its own cell.
    #[test]
    fn center_point_roundtrip(w in 1u32..40, h in 1u32..40, cell in 10.0..500.0f64) {
        let spec = GridSpec::new(PointM::new(-1000.0, 500.0), cell, w, h);
        for c in spec.coords() {
            prop_assert_eq!(spec.coord_of_point(spec.center_of(c)), Some(c));
        }
    }

    /// A window around any interior point contains that point's cell.
    #[test]
    fn window_contains_its_center(x in -4000.0..4000.0f64, y in -4000.0..4000.0f64, span in 100.0..5000.0f64) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 100.0, 10_000.0);
        let p = PointM::new(x, y);
        let w = spec.window_around(p, span);
        let c = spec.coord_of_point(p).unwrap();
        prop_assert!(w.contains(c), "{w:?} missing {c:?}");
    }

    /// Window intersection is commutative and shrinking.
    #[test]
    fn window_intersection_properties(
        a in (0u32..50, 0u32..50, 1u32..50, 1u32..50),
        b in (0u32..50, 0u32..50, 1u32..50, 1u32..50),
    ) {
        let mk = |(x0, y0, dw, dh): (u32, u32, u32, u32)| GridWindow {
            x0, y0, x1: x0 + dw, y1: y0 + dh,
        };
        let (wa, wb) = (mk(a), mk(b));
        let i1 = wa.intersect(&wb);
        let i2 = wb.intersect(&wa);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1.len() <= wa.len());
        prop_assert!(i1.len() <= wb.len());
    }

    /// Bearings always normalize into [0, 360) and projection roundtrips.
    #[test]
    fn bearing_projection_roundtrip(deg in -720.0..720.0f64, dist in 1.0..10_000.0f64) {
        use magus_geo::Bearing;
        let b = Bearing::new(deg);
        prop_assert!((0.0..360.0).contains(&b.degrees()));
        let o = PointM::new(3.0, -7.0);
        let p = o.project(b, dist);
        prop_assert!((o.distance(p) - dist).abs() < 1e-6);
        prop_assert!((o.bearing_to(p).degrees() - b.degrees()).abs() < 1e-6);
    }
}
