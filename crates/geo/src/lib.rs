//! Planar geometry, raster grids, and radio-unit arithmetic for the Magus
//! reproduction.
//!
//! The Magus model (paper §4.1) partitions geography into rectangular grids
//! of 100 m × 100 m cells and reasons about per-cell path loss (dB),
//! received power (dBm), and interference sums (linear milliwatts). This
//! crate provides the shared vocabulary for all of that:
//!
//! * [`units`] — strongly-typed decibel/linear power arithmetic ([`Db`],
//!   [`Dbm`], [`MilliWatt`]) so that "adding two dBm values" is a compile
//!   error rather than a silent bug.
//! * [`geometry`] — planar points, distances, and bearings in meters. The
//!   paper's areas (10 km × 10 km tuning areas inside 30 km × 30 km
//!   analysis regions, 60 km × 60 km path-loss windows) are small enough
//!   that a local tangent plane is exact for our purposes.
//! * [`grid`] — [`GridSpec`]/[`GridMap`] rasters with georeferencing,
//!   mirroring the Atoll-style per-sector path-loss matrices Magus
//!   consumes.
//!
//! Everything here is deterministic, `no_std`-friendly in spirit (we use
//! `std` for convenience), and free of I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
pub mod geometry;
pub mod grid;
pub mod units;

pub use geometry::{Bearing, PointM};
pub use grid::{GridCoord, GridMap, GridSpec, GridWindow};
pub use units::{Db, Dbm, MilliWatt};
