//! Checked numeric narrowing for grid math.
//!
//! The audit's `cast-audit` pass forbids bare `as usize` / `as u32` /
//! `as i32` on computed expressions in the numeric crates: a silent
//! wrap there turns into a bogus grid index or a corrupted path-loss
//! offset far from the cause. These helpers centralize the narrowing
//! with the range stated, checked in debug builds, and clamped (never
//! wrapped) in release builds.

/// Widens a `u32` grid quantity to an index. Lossless on every target
/// this workspace supports (`usize` ≥ 32 bits).
#[inline]
pub fn idx(v: u32) -> usize {
    v as usize
}

/// Narrows a non-negative float (cell counts, rounded offsets) to
/// `u32`, flooring. Debug builds assert the value is finite and within
/// range; release builds clamp instead of wrapping.
#[inline]
pub fn floor_u32(v: f64) -> u32 {
    debug_assert!(v.is_finite(), "floor_u32 on non-finite {v}");
    debug_assert!(
        (-0.5..=u32::MAX as f64).contains(&v),
        "floor_u32 out of range: {v}"
    );
    v.max(0.0).min(u32::MAX as f64) as u32
}

/// Narrows a rounded float to `u32` (e.g. TBS interpolation results).
/// Same checking policy as [`floor_u32`].
#[inline]
pub fn round_u32(v: f64) -> u32 {
    floor_u32(v.round())
}

/// Narrows an `i64` already clamped into `[0, u32::MAX]` by the caller
/// (window clamping arithmetic). Debug-asserted, saturating in release.
#[inline]
pub fn narrow_i64_u32(v: i64) -> u32 {
    debug_assert!(
        (0..=u32::MAX as i64).contains(&v),
        "narrow_i64_u32 out of range: {v}"
    );
    v.clamp(0, u32::MAX as i64) as u32
}

/// Narrows a length/count `usize` to `u32` (sector counts, header
/// sizes). Debug-asserted, saturating in release.
#[inline]
pub fn len_u32(v: usize) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "len_u32 out of range: {v}");
    u32::try_from(v).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_roundtrip() {
        assert_eq!(idx(7), 7usize);
        assert_eq!(floor_u32(3.9), 3);
        assert_eq!(floor_u32(0.0), 0);
        assert_eq!(round_u32(3.5), 4);
        assert_eq!(narrow_i64_u32(42), 42);
        assert_eq!(len_u32(9), 9);
    }

    #[test]
    #[should_panic(expected = "floor_u32")]
    #[cfg(debug_assertions)]
    fn nan_is_caught_in_debug() {
        floor_u32(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn negative_i64_is_caught_in_debug() {
        narrow_i64_u32(-1);
    }
}
