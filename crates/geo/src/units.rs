//! Strongly-typed radio units.
//!
//! Three distinct quantities appear throughout the Magus model and are easy
//! to confuse when all of them are bare `f64`s:
//!
//! * **Relative decibels** ([`Db`]) — path loss, antenna gain, power deltas.
//! * **Absolute power in dBm** ([`Dbm`]) — transmit power, received power,
//!   noise floor.
//! * **Linear power in milliwatts** ([`MilliWatt`]) — the only domain in
//!   which powers may be *summed* (interference accumulation in the SINR
//!   denominator of paper Formula 2).
//!
//! The arithmetic impls encode the physically meaningful operations:
//! `Dbm + Db = Dbm` (apply a gain/loss), `Dbm - Dbm = Db` (a ratio),
//! `MilliWatt + MilliWatt = MilliWatt` (incoherent power sum). Adding two
//! `Dbm` values does not compile.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A relative quantity in decibels (a pure ratio, e.g. path loss or a power
/// adjustment step).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

/// An absolute power level in dBm (decibels relative to one milliwatt).
///
/// ```
/// use magus_geo::{Db, Dbm};
/// let tx = Dbm(43.0);                  // sector transmit power
/// let path_loss = Db(-120.0);          // paper Formula 1 convention
/// let rp = tx + path_loss;             // received power
/// assert_eq!(rp, Dbm(-77.0));
/// // Powers are summed in linear milliwatts, never in dB:
/// let total = rp.to_milliwatt() + rp.to_milliwatt();
/// assert!((total.to_dbm().0 - (-77.0 + 3.0103)).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// An absolute power level in linear milliwatts.
///
/// This is the only representation in which adding powers is physically
/// meaningful, so interference sums are accumulated here.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatt(pub f64);

impl Db {
    /// The zero adjustment (0 dB = unity gain).
    pub const ZERO: Db = Db(0.0);

    /// Converts this ratio to its linear factor: `10^(dB/10)`.
    #[inline]
    pub fn linear_factor(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a `Db` from a linear power ratio.
    ///
    /// Returns negative infinity dB for a non-positive ratio, mirroring the
    /// convention that zero power is "infinitely attenuated".
    #[inline]
    pub fn from_linear_factor(ratio: f64) -> Db {
        if ratio <= 0.0 {
            Db(f64::NEG_INFINITY)
        } else {
            Db(10.0 * ratio.log10())
        }
    }

    /// Absolute value of the adjustment.
    #[inline]
    pub fn abs(self) -> Db {
        Db(self.0.abs())
    }

    /// Total ordering over the underlying dB value (IEEE 754
    /// `totalOrder`), for sort/min/max without a panic on NaN.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// `true` if the value is finite (not ±∞ or NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Dbm {
    /// A conventional "no signal" floor, far below any modeled noise level.
    pub const FLOOR: Dbm = Dbm(-300.0);

    /// Converts to linear milliwatts: `10^(dBm/10)`.
    #[inline]
    pub fn to_milliwatt(self) -> MilliWatt {
        MilliWatt(10f64.powf(self.0 / 10.0))
    }

    /// Total ordering over the underlying dB value (IEEE 754
    /// `totalOrder`), for sort/min/max without a panic on NaN.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// `true` if the value is finite (not ±∞ or NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Clamps this power level into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Dbm, hi: Dbm) -> Dbm {
        Dbm(self.0.clamp(lo.0, hi.0))
    }

    /// The larger of two power levels.
    #[inline]
    pub fn max(self, other: Dbm) -> Dbm {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl MilliWatt {
    /// Zero power.
    pub const ZERO: MilliWatt = MilliWatt(0.0);

    /// Converts back to dBm. Non-positive powers map to [`Dbm::FLOOR`]
    /// rather than −∞ so downstream comparisons stay total.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::FLOOR
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }

    /// Saturating subtraction: never goes below zero. Used when removing a
    /// contribution from an interference sum where floating-point error
    /// could otherwise produce a tiny negative power.
    #[inline]
    pub fn saturating_sub(self, other: MilliWatt) -> MilliWatt {
        MilliWatt((self.0 - other.0).max(0.0))
    }
}

impl Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}
impl Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}
impl Mul<f64> for Db {
    type Output = Db;
    #[inline]
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}
impl AddAssign for Db {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}
impl SubAssign for Db {
    #[inline]
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}
impl Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}
impl Sub<Dbm> for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl AddAssign<Db> for Dbm {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Add for MilliWatt {
    type Output = MilliWatt;
    #[inline]
    fn add(self, rhs: MilliWatt) -> MilliWatt {
        MilliWatt(self.0 + rhs.0)
    }
}
impl Sub for MilliWatt {
    type Output = MilliWatt;
    #[inline]
    fn sub(self, rhs: MilliWatt) -> MilliWatt {
        MilliWatt(self.0 - rhs.0)
    }
}
impl AddAssign for MilliWatt {
    #[inline]
    fn add_assign(&mut self, rhs: MilliWatt) {
        self.0 += rhs.0;
    }
}
impl SubAssign for MilliWatt {
    #[inline]
    fn sub_assign(&mut self, rhs: MilliWatt) {
        self.0 -= rhs.0;
    }
}
impl Div for MilliWatt {
    type Output = f64;
    #[inline]
    fn div(self, rhs: MilliWatt) -> f64 {
        self.0 / rhs.0
    }
}
impl Mul<f64> for MilliWatt {
    type Output = MilliWatt;
    #[inline]
    fn mul(self, rhs: f64) -> MilliWatt {
        MilliWatt(self.0 * rhs)
    }
}
impl Sum for MilliWatt {
    fn sum<I: Iterator<Item = MilliWatt>>(iter: I) -> MilliWatt {
        MilliWatt(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}
impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}
impl fmt::Display for MilliWatt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

/// Thermal noise power over a bandwidth, at the standard −174 dBm/Hz
/// density (290 K), plus a receiver noise figure.
///
/// This is the `Noise` term of paper Formula 2.
pub fn thermal_noise(bandwidth_hz: f64, noise_figure: Db) -> Dbm {
    Dbm(-174.0 + 10.0 * bandwidth_hz.log10()) + noise_figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        for v in [-120.0, -60.5, 0.0, 23.0, 46.0] {
            let d = Dbm(v);
            let back = d.to_milliwatt().to_dbm();
            assert!((back.0 - v).abs() < 1e-9, "{v} -> {back:?}");
        }
    }

    #[test]
    fn zero_milliwatt_maps_to_floor() {
        assert_eq!(MilliWatt::ZERO.to_dbm(), Dbm::FLOOR);
        assert_eq!(MilliWatt(-1.0).to_dbm(), Dbm::FLOOR);
    }

    #[test]
    fn db_linear_factor() {
        assert!((Db(10.0).linear_factor() - 10.0).abs() < 1e-12);
        assert!((Db(3.0).linear_factor() - 1.9952623149688795).abs() < 1e-12);
        assert!((Db::from_linear_factor(100.0).0 - 20.0).abs() < 1e-12);
        assert_eq!(Db::from_linear_factor(0.0).0, f64::NEG_INFINITY);
    }

    #[test]
    fn typed_arithmetic() {
        let tx = Dbm(43.0);
        let pl = Db(-120.0);
        let rp = tx + pl;
        assert!((rp.0 - (-77.0)).abs() < 1e-12);
        let ratio = Dbm(-70.0) - Dbm(-90.0);
        assert!((ratio.0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn milliwatt_sum_matches_linear_addition() {
        let a = Dbm(-80.0).to_milliwatt();
        let b = Dbm(-80.0).to_milliwatt();
        let total = (a + b).to_dbm();
        // Doubling power is +3.0103 dB.
        assert!((total.0 - (-80.0 + 10.0 * 2f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = MilliWatt(1.0);
        let b = MilliWatt(2.0);
        assert_eq!(a.saturating_sub(b), MilliWatt::ZERO);
    }

    #[test]
    fn thermal_noise_10mhz() {
        // -174 + 10*log10(10e6) = -174 + 70 = -104 dBm, +7 dB NF = -97 dBm.
        let n = thermal_noise(10e6, Db(7.0));
        assert!((n.0 - (-97.0)).abs() < 1e-9);
    }

    #[test]
    fn dbm_clamp_and_max() {
        assert_eq!(Dbm(50.0).clamp(Dbm(0.0), Dbm(46.0)), Dbm(46.0));
        assert_eq!(Dbm(-10.0).max(Dbm(5.0)), Dbm(5.0));
    }
}
