//! Georeferenced rasters.
//!
//! The Magus model (paper §4.1) represents everything — path loss, received
//! power, SINR, UE counts — as values on a rectangular grid of (by default)
//! 100 m cells. [`GridSpec`] fixes the georeferencing of such a raster and
//! [`GridMap`] stores row-major data over it. [`GridWindow`] describes a
//! clipped rectangular sub-region, used to scope a sector's path-loss
//! footprint (the paper's per-sector 60 km × 60 km window) inside the
//! market-wide analysis raster.

use crate::geometry::PointM;
use serde::{Deserialize, Serialize};

/// Integer cell coordinates within a [`GridSpec`] (column `x`, row `y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCoord {
    /// Column index (west → east).
    pub x: u32,
    /// Row index (south → north).
    pub y: u32,
}

impl GridCoord {
    /// Constructs a coordinate.
    pub const fn new(x: u32, y: u32) -> GridCoord {
        GridCoord { x, y }
    }
}

/// Georeferencing of a raster: origin (south-west corner), square cell
/// size, and dimensions.
///
/// ```
/// use magus_geo::{GridSpec, PointM};
/// // The paper's geometry: 100 m cells over a square region.
/// let spec = GridSpec::centered(PointM::new(0.0, 0.0), 100.0, 10_000.0);
/// assert_eq!(spec.len(), 100 * 100);
/// let c = spec.coord_of_point(PointM::new(120.0, -380.0)).unwrap();
/// assert!(spec.center_of(c).distance(PointM::new(120.0, -380.0)) < 71.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// South-west corner of cell (0,0), in meters.
    pub origin: PointM,
    /// Edge length of a square cell, in meters (paper default: 100 m).
    pub cell_size: f64,
    /// Number of columns.
    pub width: u32,
    /// Number of rows.
    pub height: u32,
}

impl GridSpec {
    /// Creates a spec. Panics if `cell_size` is not strictly positive or a
    /// dimension is zero — a zero-area raster is always a caller bug.
    pub fn new(origin: PointM, cell_size: f64, width: u32, height: u32) -> GridSpec {
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(width > 0 && height > 0, "grid must be non-empty");
        GridSpec {
            origin,
            cell_size,
            width,
            height,
        }
    }

    /// A spec centered on `center` spanning `span_m` meters on each side.
    pub fn centered(center: PointM, cell_size: f64, span_m: f64) -> GridSpec {
        let cells = crate::cast::round_u32((span_m / cell_size).max(1.0));
        let half = cells as f64 * cell_size / 2.0;
        GridSpec::new(
            PointM::new(center.x - half, center.y - half),
            cell_size,
            cells,
            cells,
        )
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `true` if the raster holds no cells (never true for a validly
    /// constructed spec, but kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of `c`. Debug-asserts in-bounds.
    #[inline]
    pub fn index(&self, c: GridCoord) -> usize {
        debug_assert!(c.x < self.width && c.y < self.height, "{c:?} out of bounds");
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Inverse of [`GridSpec::index`].
    #[inline]
    pub fn coord_of_index(&self, i: usize) -> GridCoord {
        debug_assert!(i < self.len());
        GridCoord::new(
            crate::cast::len_u32(i % crate::cast::idx(self.width)),
            crate::cast::len_u32(i / crate::cast::idx(self.width)),
        )
    }

    /// Geographic center of cell `c`.
    #[inline]
    pub fn center_of(&self, c: GridCoord) -> PointM {
        PointM::new(
            self.origin.x + (c.x as f64 + 0.5) * self.cell_size,
            self.origin.y + (c.y as f64 + 0.5) * self.cell_size,
        )
    }

    /// Cell containing geographic point `p`, or `None` if outside the
    /// raster.
    #[inline]
    pub fn coord_of_point(&self, p: PointM) -> Option<GridCoord> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let (x, y) = (fx as u32, fy as u32);
        (x < self.width && y < self.height && fx < self.width as f64 && fy < self.height as f64)
            .then_some(GridCoord::new(x, y))
    }

    /// Iterator over all coordinates, row-major (matching index order).
    pub fn coords(&self) -> impl Iterator<Item = GridCoord> + '_ {
        let w = self.width;
        (0..self.len()).map(move |i| GridCoord::new((i as u32) % w, (i as u32) / w))
    }

    /// The window of this raster that intersects a square of `span_m`
    /// meters centered at `center` (clipped to raster bounds). Used to
    /// restrict work to a sector's path-loss footprint.
    pub fn window_around(&self, center: PointM, span_m: f64) -> GridWindow {
        let half = span_m / 2.0;
        let lo_x = crate::cast::floor_u32(
            ((center.x - half - self.origin.x) / self.cell_size)
                .floor()
                .max(0.0),
        );
        let lo_y = crate::cast::floor_u32(
            ((center.y - half - self.origin.y) / self.cell_size)
                .floor()
                .max(0.0),
        );
        let hi_x = crate::cast::narrow_i64_u32(
            (((center.x + half - self.origin.x) / self.cell_size).ceil() as i64)
                .clamp(0, self.width as i64),
        );
        let hi_y = crate::cast::narrow_i64_u32(
            (((center.y + half - self.origin.y) / self.cell_size).ceil() as i64)
                .clamp(0, self.height as i64),
        );
        GridWindow {
            x0: lo_x.min(hi_x),
            y0: lo_y.min(hi_y),
            x1: hi_x,
            y1: hi_y,
        }
    }

    /// Whether `w` lies fully within this raster's bounds — the
    /// grid-side invariant every per-sector window must satisfy.
    pub fn contains_window(&self, w: GridWindow) -> bool {
        w.x0 <= w.x1 && w.y0 <= w.y1 && w.x1 <= self.width && w.y1 <= self.height
    }

    /// Window covering the full raster.
    pub fn full_window(&self) -> GridWindow {
        GridWindow {
            x0: 0,
            y0: 0,
            x1: self.width,
            y1: self.height,
        }
    }
}

/// A half-open rectangular region `[x0, x1) × [y0, y1)` of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridWindow {
    /// Inclusive west column.
    pub x0: u32,
    /// Inclusive south row.
    pub y0: u32,
    /// Exclusive east column.
    pub x1: u32,
    /// Exclusive north row.
    pub y1: u32,
}

impl GridWindow {
    /// Number of cells in the window.
    #[inline]
    pub fn len(&self) -> usize {
        crate::cast::idx(self.x1.saturating_sub(self.x0))
            * crate::cast::idx(self.y1.saturating_sub(self.y0))
    }

    /// `true` if the window covers no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// `true` if `c` lies inside the window.
    #[inline]
    pub fn contains(&self, c: GridCoord) -> bool {
        c.x >= self.x0 && c.x < self.x1 && c.y >= self.y0 && c.y < self.y1
    }

    /// Iterator over the window's coordinates, row-major.
    pub fn coords(&self) -> impl Iterator<Item = GridCoord> + '_ {
        let (x0, x1) = (self.x0, self.x1);
        (self.y0..self.y1).flat_map(move |y| (x0..x1).map(move |x| GridCoord::new(x, y)))
    }

    /// Intersection of two windows (possibly empty).
    pub fn intersect(&self, other: &GridWindow) -> GridWindow {
        GridWindow {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        }
    }
}

/// A row-major raster of `T` over a [`GridSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridMap<T> {
    spec: GridSpec,
    data: Vec<T>,
}

impl<T: Clone> GridMap<T> {
    /// Creates a map with every cell set to `fill`.
    pub fn filled(spec: GridSpec, fill: T) -> GridMap<T> {
        GridMap {
            spec,
            data: vec![fill; spec.len()],
        }
    }
}

impl<T> GridMap<T> {
    /// Creates a map from existing row-major data.
    ///
    /// Panics if `data.len()` does not match the spec — a mismatched raster
    /// is unrecoverable corruption.
    pub fn from_vec(spec: GridSpec, data: Vec<T>) -> GridMap<T> {
        assert_eq!(data.len(), spec.len(), "raster data length mismatch");
        GridMap { spec, data }
    }

    /// Builds a map by evaluating `f` at every coordinate (row-major).
    pub fn from_fn(spec: GridSpec, mut f: impl FnMut(GridCoord) -> T) -> GridMap<T> {
        let data = (0..spec.len()).map(|i| f(spec.coord_of_index(i))).collect();
        GridMap { spec, data }
    }

    /// The raster's georeferencing.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Shared cell access.
    #[inline]
    pub fn get(&self, c: GridCoord) -> &T {
        &self.data[self.spec.index(c)]
    }

    /// Mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, c: GridCoord) -> &mut T {
        let i = self.spec.index(c);
        &mut self.data[i]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterator over `(coord, &value)` pairs, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (GridCoord, &T)> + '_ {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (self.spec.coord_of_index(i), v))
    }

    /// Maps every cell through `f`, producing a raster of a new type over
    /// the same spec.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> GridMap<U> {
        GridMap {
            spec: self.spec,
            data: self.data.iter().map(|v| f(v)).collect(),
        }
    }
}

impl GridMap<f64> {
    /// Minimum and maximum finite values, or `None` if no cell is finite.
    pub fn finite_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for &v in &self.data {
            if v.is_finite() {
                let (lo, hi) = range.get_or_insert((v, v));
                if v < *lo {
                    *lo = v;
                }
                if v > *hi {
                    *hi = v;
                }
            }
        }
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::new(PointM::new(-500.0, -500.0), 100.0, 10, 8)
    }

    #[test]
    fn index_bijection() {
        let s = spec();
        for i in 0..s.len() {
            assert_eq!(s.index(s.coord_of_index(i)), i);
        }
    }

    #[test]
    fn center_and_point_roundtrip() {
        let s = spec();
        for c in s.coords() {
            assert_eq!(s.coord_of_point(s.center_of(c)), Some(c));
        }
    }

    #[test]
    fn out_of_bounds_point_is_none() {
        let s = spec();
        assert_eq!(s.coord_of_point(PointM::new(-501.0, 0.0)), None);
        assert_eq!(s.coord_of_point(PointM::new(501.0, 0.0)), None);
        assert_eq!(s.coord_of_point(PointM::new(0.0, 300.1)), None);
    }

    #[test]
    fn centered_spec_covers_span() {
        let s = GridSpec::centered(PointM::new(0.0, 0.0), 100.0, 3000.0);
        assert_eq!(s.width, 30);
        assert_eq!(s.height, 30);
        assert!(s.coord_of_point(PointM::new(-1499.0, 1499.0)).is_some());
    }

    #[test]
    fn window_clipping() {
        let s = spec();
        let w = s.window_around(PointM::new(-500.0, -500.0), 400.0);
        assert_eq!(w.x0, 0);
        assert_eq!(w.y0, 0);
        assert_eq!(w.x1, 2);
        assert_eq!(w.y1, 2);
        let full = s.window_around(PointM::new(0.0, 0.0), 1e9);
        assert_eq!(full, s.full_window());
    }

    #[test]
    fn window_coords_count_matches_len() {
        let w = GridWindow {
            x0: 2,
            y0: 1,
            x1: 5,
            y1: 4,
        };
        assert_eq!(w.coords().count(), w.len());
        assert_eq!(w.len(), 9);
        assert!(w.contains(GridCoord::new(2, 1)));
        assert!(!w.contains(GridCoord::new(5, 1)));
    }

    #[test]
    fn window_intersection() {
        let a = GridWindow {
            x0: 0,
            y0: 0,
            x1: 5,
            y1: 5,
        };
        let b = GridWindow {
            x0: 3,
            y0: 4,
            x1: 9,
            y1: 9,
        };
        let i = a.intersect(&b);
        assert_eq!(
            i,
            GridWindow {
                x0: 3,
                y0: 4,
                x1: 5,
                y1: 5
            }
        );
        let disjoint = GridWindow {
            x0: 6,
            y0: 6,
            x1: 7,
            y1: 7,
        };
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn gridmap_from_fn_and_access() {
        let s = spec();
        let m = GridMap::from_fn(s, |c| (c.x + 10 * c.y) as f64);
        assert_eq!(*m.get(GridCoord::new(3, 2)), 23.0);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(*doubled.get(GridCoord::new(3, 2)), 46.0);
    }

    #[test]
    fn finite_range_skips_non_finite() {
        let s = GridSpec::new(PointM::new(0.0, 0.0), 1.0, 2, 2);
        let m = GridMap::from_vec(s, vec![f64::NEG_INFINITY, 1.0, 5.0, f64::NAN]);
        assert_eq!(m.finite_range(), Some((1.0, 5.0)));
        let empty = GridMap::from_vec(s, vec![f64::NAN; 4]);
        assert_eq!(empty.finite_range(), None);
    }

    #[test]
    #[should_panic(expected = "raster data length mismatch")]
    fn from_vec_length_mismatch_panics() {
        let s = spec();
        let _ = GridMap::from_vec(s, vec![0.0; 3]);
    }
}
