//! Planar geometry in meters.
//!
//! All Magus areas are at most tens of kilometers across, so a local
//! tangent-plane approximation (flat Earth, meters on both axes) is used
//! throughout, exactly as grid-based coverage planning tools do internally.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// A point on the local tangent plane, in meters.
///
/// `x` grows eastward, `y` grows northward.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PointM {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

/// A compass bearing in degrees, normalized to `[0, 360)`.
///
/// 0° = north, 90° = east — the convention used for sector azimuths.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bearing(f64);

impl PointM {
    /// Constructs a point from easting/northing meters.
    pub const fn new(x: f64, y: f64) -> PointM {
        PointM { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(self, other: PointM) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Compass bearing from `self` toward `other`.
    ///
    /// Returns north (0°) for coincident points, keeping the function total.
    #[inline]
    pub fn bearing_to(self, other: PointM) -> Bearing {
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        if dx == 0.0 && dy == 0.0 {
            return Bearing::new(0.0);
        }
        // atan2 measured from north, clockwise.
        Bearing::new(dx.atan2(dy).to_degrees())
    }

    /// The point `dist` meters from `self` along `bearing`.
    #[inline]
    pub fn project(self, bearing: Bearing, dist: f64) -> PointM {
        let rad = bearing.degrees().to_radians();
        PointM {
            x: self.x + dist * rad.sin(),
            y: self.y + dist * rad.cos(),
        }
    }

    /// Midpoint between two points.
    #[inline]
    pub fn midpoint(self, other: PointM) -> PointM {
        PointM {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }
}

impl Add for PointM {
    type Output = PointM;
    fn add(self, rhs: PointM) -> PointM {
        PointM::new(self.x + rhs.x, self.y + rhs.y)
    }
}
impl Sub for PointM {
    type Output = PointM;
    fn sub(self, rhs: PointM) -> PointM {
        PointM::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Bearing {
    /// Creates a bearing, normalizing any finite degree value into `[0, 360)`.
    #[inline]
    pub fn new(degrees: f64) -> Bearing {
        Bearing(degrees.rem_euclid(360.0))
    }

    /// The bearing in degrees, in `[0, 360)`.
    #[inline]
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// Signed smallest angular difference `self - other` in degrees,
    /// in `(-180, 180]`.
    ///
    /// This is the horizontal off-boresight angle used by antenna patterns.
    #[inline]
    pub fn angle_from(self, other: Bearing) -> f64 {
        let mut d = self.0 - other.0;
        if d > 180.0 {
            d -= 360.0;
        } else if d <= -180.0 {
            d += 360.0;
        }
        d
    }
}

impl Default for Bearing {
    fn default() -> Self {
        Bearing(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        assert!((PointM::new(0.0, 0.0).distance(PointM::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bearings_cardinal() {
        let o = PointM::new(0.0, 0.0);
        assert!((o.bearing_to(PointM::new(0.0, 1.0)).degrees() - 0.0).abs() < 1e-9);
        assert!((o.bearing_to(PointM::new(1.0, 0.0)).degrees() - 90.0).abs() < 1e-9);
        assert!((o.bearing_to(PointM::new(0.0, -1.0)).degrees() - 180.0).abs() < 1e-9);
        assert!((o.bearing_to(PointM::new(-1.0, 0.0)).degrees() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn bearing_to_self_is_north() {
        let p = PointM::new(5.0, 5.0);
        assert_eq!(p.bearing_to(p).degrees(), 0.0);
    }

    #[test]
    fn project_roundtrip() {
        let o = PointM::new(100.0, 200.0);
        for deg in [0.0, 37.0, 90.0, 181.5, 359.0] {
            let p = o.project(Bearing::new(deg), 1234.5);
            assert!((o.distance(p) - 1234.5).abs() < 1e-9);
            assert!((o.bearing_to(p).degrees() - deg).abs() < 1e-9, "deg={deg}");
        }
    }

    #[test]
    fn angle_from_wraps() {
        assert!((Bearing::new(10.0).angle_from(Bearing::new(350.0)) - 20.0).abs() < 1e-9);
        assert!((Bearing::new(350.0).angle_from(Bearing::new(10.0)) + 20.0).abs() < 1e-9);
        assert!((Bearing::new(180.0).angle_from(Bearing::new(0.0)) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn bearing_normalization() {
        assert!((Bearing::new(-90.0).degrees() - 270.0).abs() < 1e-12);
        assert!((Bearing::new(720.0).degrees() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = PointM::new(0.0, 0.0).midpoint(PointM::new(10.0, 20.0));
        assert_eq!(m, PointM::new(5.0, 10.0));
    }
}
