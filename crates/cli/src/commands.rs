//! The CLI commands, each a thin orchestration over the library API.

use crate::args::Args;
use magus_core::{
    execute_gradual, plan_gradual, prepare_scenario, ExperimentConfig, GradualParams,
    MigrateParams, OutagePlaybook,
};
use magus_geo::{Db, PointM};
use magus_lte::Bandwidth;
use magus_model::{standard_setup, ServiceMap, StandardModel, UtilityKind};
use magus_net::{Market, MarketParams};
use serde_json::json;

fn market_params(args: &Args) -> Result<MarketParams, String> {
    let area = args.area()?;
    let seed = args.seed()?;
    Ok(match args.size()? {
        "full" => MarketParams::preset(area, seed),
        "eval" => {
            let mut p = MarketParams::preset(area, seed);
            p.cell_size_m = 150.0;
            p.analysis_span_m = 18_000.0;
            p.tuning_span_m = 8_000.0;
            p.footprint_span_m = p.footprint_span_m.min(9_000.0);
            p.spm.diffraction_samples = 8;
            p
        }
        _ => MarketParams::tiny(area, seed),
    })
}

fn build(args: &Args) -> Result<(Market, StandardModel), String> {
    let params = market_params(args)?;
    eprintln!(
        "generating {} market (seed {})…",
        params.area_type, params.seed
    );
    let market = Market::generate(params);
    let model = standard_setup(&market, Bandwidth::Mhz10);
    Ok((market, model))
}

/// `magus market`
pub fn market(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let state = model.nominal_state();
    let map = ServiceMap::capture(&model.evaluator, &state);
    let noise = magus_model::setup::noise_for(Bandwidth::Mhz10);
    let interferers = market.interfering_sector_count(noise, Db(6.0));
    if args.json() {
        println!(
            "{}",
            json!({
                "area": market.params().area_type.to_string(),
                "seed": market.params().seed,
                "sectors": market.network().num_sectors(),
                "base_stations": market.network().base_stations().len(),
                "grids": market.spec().len(),
                "cell_size_m": market.spec().cell_size,
                "interfering_sectors": interferers,
                "coverage_fraction": map.coverage_fraction(),
            })
        );
    } else {
        println!("area            {}", market.params().area_type);
        println!("seed            {}", market.params().seed);
        println!("base stations   {}", market.network().base_stations().len());
        println!("sectors         {}", market.network().num_sectors());
        println!(
            "analysis grid   {}x{} cells of {:.0} m",
            market.spec().width,
            market.spec().height,
            market.spec().cell_size
        );
        println!("interferers     {} (into the tuning area)", interferers);
        println!("coverage        {:.1}%", map.coverage_fraction() * 100.0);
    }
    Ok(())
}

/// `magus evaluate`
pub fn evaluate(args: &Args) -> Result<(), String> {
    let (_market, model) = build(args)?;
    let state = model.nominal_state();
    let perf = state.utility(UtilityKind::Performance);
    let cov = state.utility(UtilityKind::Coverage);
    let map = ServiceMap::capture(&model.evaluator, &state);
    if args.json() {
        println!(
            "{}",
            json!({
                "utility_performance": perf,
                "utility_coverage": cov,
                "coverage_fraction": map.coverage_fraction(),
                "total_ues": model.evaluator.ue_layer().total(),
            })
        );
    } else {
        println!("performance utility  {perf:.1}");
        println!("coverage utility     {cov:.1} UEs in service");
        println!(
            "covered grids        {:.1}%",
            map.coverage_fraction() * 100.0
        );
        println!(
            "total UEs            {:.0}",
            model.evaluator.ue_layer().total()
        );
    }
    Ok(())
}

/// `magus mitigate`
pub fn mitigate(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let scenario = args.scenario()?;
    let tuning = args.tuning()?;
    let mut cfg = ExperimentConfig::default();
    cfg.search.utility = args.utility()?;
    eprintln!("planning mitigation for scenario {scenario} with {tuning} tuning…");
    let prepared = prepare_scenario(&model, &market, scenario, &cfg);
    let out = prepared.run(&model, tuning, &cfg);
    let recovery = out.recovery(cfg.search.utility);
    if args.json() {
        println!(
            "{}",
            json!({
                "scenario": scenario.label(),
                "tuning": tuning.to_string(),
                "targets": out.targets.iter().map(|t| t.0).collect::<Vec<_>>(),
                "neighbors": out.neighbors.len(),
                "f_before": out.before.get(cfg.search.utility),
                "f_upgrade": out.upgrade.get(cfg.search.utility),
                "f_after": out.after.get(cfg.search.utility),
                "recovery_ratio": recovery,
                "changes": out.search.steps.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>(),
            })
        );
    } else {
        println!(
            "targets          {:?}",
            out.targets.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        println!("neighbors        {}", out.neighbors.len());
        println!("f(C_before)      {:.1}", out.before.get(cfg.search.utility));
        println!(
            "f(C_upgrade)     {:.1}",
            out.upgrade.get(cfg.search.utility)
        );
        println!("f(C_after)       {:.1}", out.after.get(cfg.search.utility));
        println!("recovery ratio   {:.1}%", recovery * 100.0);
        println!("changes to push:");
        for ch in &out.search.steps {
            println!("  {ch:?}");
        }
    }
    Ok(())
}

/// `magus gradual`
pub fn gradual(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let scenario = args.scenario()?;
    let tuning = args.tuning()?;
    let cfg = ExperimentConfig::default();
    let prepared = prepare_scenario(&model, &market, scenario, &cfg);
    let out = prepared.run(&model, tuning, &cfg);
    let plan = plan_gradual(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &out.targets,
        &GradualParams::default(),
    );
    // Rehearse the schedule through the fault-aware executor: under an
    // installed `--faults` plan this exercises retry/rollback recovery;
    // without one it is a clean deterministic replay.
    let rehearsal = execute_gradual(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &plan,
        &MigrateParams {
            utility: cfg.search.utility,
            ..MigrateParams::default()
        },
    );
    if args.json() {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "plan": plan,
                "rehearsal": {
                    "completed": rehearsal.completed,
                    "steps": rehearsal.steps.len(),
                    "retries": rehearsal.steps.iter().map(|s| s.retries).sum::<u32>(),
                    "stragglers": rehearsal.steps.iter().map(|s| s.stragglers).sum::<u32>(),
                    "rolled_back_steps": rehearsal.rolled_back_steps,
                    "sim_time_ms": rehearsal.sim_time_ms,
                    "degraded": rehearsal.degraded,
                    "invariant_violations": rehearsal.invariant_violations,
                },
            }))
            .expect("serialize plan")
        );
        return Ok(());
    }
    println!(
        "migration schedule ({} steps, floor f(C_after) = {:.1}):",
        plan.steps.len(),
        plan.f_after
    );
    for (k, step) in plan.steps.iter().enumerate() {
        println!(
            "  step {k}: utility {:.1}, handovers {:.0} ({:.0} seamless), {} changes",
            step.utility,
            step.handovers,
            step.seamless,
            step.changes.len()
        );
    }
    println!(
        "one-shot would cause {:.0} simultaneous handovers; gradual peaks at {:.0} ({:.1}x better), {:.1}% seamless",
        plan.direct.handovers,
        plan.max_simultaneous,
        plan.simultaneous_reduction_factor(),
        plan.seamless_fraction * 100.0
    );
    let retries: u32 = rehearsal.steps.iter().map(|s| s.retries).sum();
    let stragglers: u32 = rehearsal.steps.iter().map(|s| s.stragglers).sum();
    println!(
        "rehearsal: {} ({} steps, {} retries, {} stragglers, {} rollbacks, {} ms sim time{})",
        if rehearsal.completed {
            "reached C_after"
        } else {
            "INCOMPLETE"
        },
        rehearsal.steps.len(),
        retries,
        stragglers,
        rehearsal.rolled_back_steps,
        rehearsal.sim_time_ms,
        if rehearsal.degraded {
            ", degraded reads"
        } else {
            ""
        }
    );
    for v in &rehearsal.invariant_violations {
        println!("  invariant violation: {v}");
    }
    Ok(())
}

/// `magus playbook`
pub fn playbook(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let cfg = ExperimentConfig::default();
    let station = market
        .network()
        .nearest_base_station(PointM::new(0.0, 0.0))
        .ok_or("market has no base stations")?;
    eprintln!(
        "precomputing playbook for {} sectors of the central station…",
        station.sectors.len()
    );
    let playbook =
        OutagePlaybook::precompute(&model, &market, &station.sectors, args.tuning()?, &cfg);
    let mut rows = Vec::new();
    for s in &station.sectors {
        let entry = playbook.lookup(*s).expect("precomputed entry");
        rows.push(json!({
            "sector": s.0,
            "recovery_ratio": entry.outcome.recovery(UtilityKind::Performance),
            "changes": entry.outcome.config_before.diff(entry.config_after()).len(),
        }));
    }
    if args.json() {
        println!("{}", json!({ "entries": rows }));
    } else {
        println!("outage playbook ({} entries):", playbook.len());
        for r in rows {
            println!(
                "  sector {:>4}: recovery {:>5.1}%, {} changes staged",
                r["sector"],
                r["recovery_ratio"].as_number().map_or(0.0, |n| n.as_f64()) * 100.0,
                r["changes"]
            );
        }
    }
    Ok(())
}

/// `magus export-db`
pub fn export_db(args: &Args) -> Result<(), String> {
    let params = market_params(args)?;
    eprintln!(
        "generating {} market (seed {})…",
        params.area_type, params.seed
    );
    let market = Market::generate(params);
    let blob = magus_propagation::encode_store(market.store());
    let path = args.out("pathloss.mpl");
    std::fs::write(&path, &blob).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {path}: {} sectors, {:.1} MiB",
        market.store().num_sectors(),
        blob.len() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// `magus inspect-db`
pub fn inspect_db(args: &Args) -> Result<(), String> {
    let path = args.input().ok_or("--in <path> is required")?;
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let store = magus_propagation::decode_store(&blob).map_err(|e| e.to_string())?;
    let spec = store.spec();
    if args.json() {
        println!(
            "{}",
            json!({
                "sectors": store.num_sectors(),
                "grid": { "width": spec.width, "height": spec.height, "cell_m": spec.cell_size },
                "bytes": blob.len(),
            })
        );
    } else {
        println!("path-loss database {path}");
        println!("  sectors      {}", store.num_sectors());
        println!(
            "  analysis     {}x{} cells of {:.0} m",
            spec.width, spec.height, spec.cell_size
        );
        println!(
            "  size         {:.1} MiB",
            blob.len() as f64 / (1024.0 * 1024.0)
        );
        // Spot-check one matrix to prove the blob is usable.
        let m = store.matrix(0, magus_propagation::NOMINAL_TILT_INDEX);
        println!(
            "  sector 0     window {} cells, loss {:?} … sampled OK",
            m.window().len(),
            m.values().first()
        );
    }
    Ok(())
}

/// `magus render`
pub fn render(args: &Args) -> Result<(), String> {
    let (_market, model) = build(args)?;
    let state = model.nominal_state();
    let map = ServiceMap::capture(&model.evaluator, &state);
    let spec = *map.spec();
    let path = args.out("coverage.ppm");
    let img = magus_viz::serving_map_ppm(map.serving(), spec.width, spec.height);
    std::fs::write(&path, img).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {path} ({}x{} cells)", spec.width, spec.height);
    Ok(())
}
