//! The CLI commands, each a thin orchestration over the library API.

use crate::args::Args;
use magus_core::{
    execute_gradual, plan_gradual, prepare_scenario, ExperimentConfig, GradualParams,
    MigrateParams, OutagePlaybook,
};
use magus_geo::{Db, PointM};
use magus_lte::Bandwidth;
use magus_model::{standard_setup, ServiceMap, StandardModel, UtilityKind};
use magus_net::{Market, MarketParams};
use serde_json::json;

fn market_params(args: &Args) -> Result<MarketParams, String> {
    let seed = args.seed()?;
    if let Some(target) = args.scale()? {
        return Ok(MarketParams::scaled(target, seed));
    }
    let area = args.area()?;
    Ok(match args.size()? {
        "full" => MarketParams::preset(area, seed),
        "eval" => {
            let mut p = MarketParams::preset(area, seed);
            p.cell_size_m = 150.0;
            p.analysis_span_m = 18_000.0;
            p.tuning_span_m = 8_000.0;
            p.footprint_span_m = p.footprint_span_m.min(9_000.0);
            p.spm.diffraction_samples = 8;
            p
        }
        _ => MarketParams::tiny(area, seed),
    })
}

fn build(args: &Args) -> Result<(Market, StandardModel), String> {
    let params = market_params(args)?;
    eprintln!(
        "generating {} market (seed {})…",
        params.area_type, params.seed
    );
    let market = Market::generate_cached(params, args.cache_dir().as_deref());
    let model = standard_setup(&market, Bandwidth::Mhz10);
    Ok((market, model))
}

/// `magus market`
pub fn market(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let state = model.nominal_state();
    let map = ServiceMap::capture(&model.evaluator, &state);
    let noise = magus_model::setup::noise_for(Bandwidth::Mhz10);
    let interferers = market.interfering_sector_count(noise, Db(6.0));
    if args.json() {
        println!(
            "{}",
            json!({
                "area": market.params().area_type.to_string(),
                "seed": market.params().seed,
                "sectors": market.network().num_sectors(),
                "base_stations": market.network().base_stations().len(),
                "grids": market.spec().len(),
                "cell_size_m": market.spec().cell_size,
                "interfering_sectors": interferers,
                "coverage_fraction": map.coverage_fraction(),
            })
        );
    } else {
        println!("area            {}", market.params().area_type);
        println!("seed            {}", market.params().seed);
        println!("base stations   {}", market.network().base_stations().len());
        println!("sectors         {}", market.network().num_sectors());
        println!(
            "analysis grid   {}x{} cells of {:.0} m",
            market.spec().width,
            market.spec().height,
            market.spec().cell_size
        );
        println!("interferers     {} (into the tuning area)", interferers);
        println!("coverage        {:.1}%", map.coverage_fraction() * 100.0);
    }
    Ok(())
}

/// `magus evaluate`
pub fn evaluate(args: &Args) -> Result<(), String> {
    let (_market, model) = build(args)?;
    let state = model.nominal_state();
    let perf = state.utility(UtilityKind::Performance);
    let cov = state.utility(UtilityKind::Coverage);
    let map = ServiceMap::capture(&model.evaluator, &state);
    if args.json() {
        println!(
            "{}",
            json!({
                "utility_performance": perf,
                "utility_coverage": cov,
                "coverage_fraction": map.coverage_fraction(),
                "total_ues": model.evaluator.ue_layer().total(),
            })
        );
    } else {
        println!("performance utility  {perf:.1}");
        println!("coverage utility     {cov:.1} UEs in service");
        println!(
            "covered grids        {:.1}%",
            map.coverage_fraction() * 100.0
        );
        println!(
            "total UEs            {:.0}",
            model.evaluator.ue_layer().total()
        );
    }
    Ok(())
}

/// `magus mitigate`
pub fn mitigate(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let scenario = args.scenario()?;
    let tuning = args.tuning()?;
    let strategy = args.strategy()?;
    let mut cfg = ExperimentConfig::default();
    cfg.search.utility = args.utility()?;
    match strategy {
        Some(spec) => {
            eprintln!("planning mitigation for scenario {scenario} with the {spec} strategy…");
        }
        None => eprintln!("planning mitigation for scenario {scenario} with {tuning} tuning…"),
    }
    let prepared = prepare_scenario(&model, &market, scenario, &cfg);
    let out = match strategy {
        Some(spec) => prepared.run_strategy(&model, spec, &cfg),
        None => prepared.run(&model, tuning, &cfg),
    };
    let recovery = out.recovery(cfg.search.utility);
    if args.json() {
        let mut doc = json!({
            "scenario": scenario.label(),
            "tuning": tuning.to_string(),
            "targets": out.targets.iter().map(|t| t.0).collect::<Vec<_>>(),
            "neighbors": out.neighbors.len(),
            "f_before": out.before.get(cfg.search.utility),
            "f_upgrade": out.upgrade.get(cfg.search.utility),
            "f_after": out.after.get(cfg.search.utility),
            "recovery_ratio": recovery,
            "changes": out.search.steps.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>(),
        });
        // The strategy path adds its key without disturbing the legacy
        // layout — a `--strategy`-free invocation stays byte-identical.
        if let Some(name) = &out.strategy {
            if let serde_json::Value::Object(map) = &mut doc {
                map.insert("strategy".to_string(), json!(name));
                map.insert("probes".to_string(), json!(out.search.probes));
            }
        }
        println!("{doc}");
    } else {
        if let Some(name) = &out.strategy {
            println!("strategy         {name} ({} probes)", out.search.probes);
        }
        println!(
            "targets          {:?}",
            out.targets.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        println!("neighbors        {}", out.neighbors.len());
        println!("f(C_before)      {:.1}", out.before.get(cfg.search.utility));
        println!(
            "f(C_upgrade)     {:.1}",
            out.upgrade.get(cfg.search.utility)
        );
        println!("f(C_after)       {:.1}", out.after.get(cfg.search.utility));
        println!("recovery ratio   {:.1}%", recovery * 100.0);
        println!("changes to push:");
        for ch in &out.search.steps {
            println!("  {ch:?}");
        }
    }
    Ok(())
}

/// `magus gradual`
pub fn gradual(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let scenario = args.scenario()?;
    let tuning = args.tuning()?;
    let cfg = ExperimentConfig::default();
    let prepared = prepare_scenario(&model, &market, scenario, &cfg);
    let out = prepared.run(&model, tuning, &cfg);
    let plan = plan_gradual(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &out.targets,
        &GradualParams::default(),
    );
    // Rehearse the schedule through the fault-aware executor: under an
    // installed `--faults` plan this exercises retry/rollback recovery;
    // without one it is a clean deterministic replay.
    let rehearsal = execute_gradual(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &plan,
        &MigrateParams {
            utility: cfg.search.utility,
            ..MigrateParams::default()
        },
    );
    if args.json() {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "plan": plan,
                "rehearsal": {
                    "completed": rehearsal.completed,
                    "steps": rehearsal.steps.len(),
                    "retries": rehearsal.steps.iter().map(|s| s.retries).sum::<u32>(),
                    "stragglers": rehearsal.steps.iter().map(|s| s.stragglers).sum::<u32>(),
                    "rolled_back_steps": rehearsal.rolled_back_steps,
                    "sim_time_ms": rehearsal.sim_time_ms,
                    "degraded": rehearsal.degraded,
                    "invariant_violations": rehearsal.invariant_violations,
                },
            }))
            .expect("serialize plan")
        );
        return Ok(());
    }
    println!(
        "migration schedule ({} steps, floor f(C_after) = {:.1}):",
        plan.steps.len(),
        plan.f_after
    );
    for (k, step) in plan.steps.iter().enumerate() {
        println!(
            "  step {k}: utility {:.1}, handovers {:.0} ({:.0} seamless), {} changes",
            step.utility,
            step.handovers,
            step.seamless,
            step.changes.len()
        );
    }
    println!(
        "one-shot would cause {:.0} simultaneous handovers; gradual peaks at {:.0} ({:.1}x better), {:.1}% seamless",
        plan.direct.handovers,
        plan.max_simultaneous,
        plan.simultaneous_reduction_factor(),
        plan.seamless_fraction * 100.0
    );
    let retries: u32 = rehearsal.steps.iter().map(|s| s.retries).sum();
    let stragglers: u32 = rehearsal.steps.iter().map(|s| s.stragglers).sum();
    println!(
        "rehearsal: {} ({} steps, {} retries, {} stragglers, {} rollbacks, {} ms sim time{})",
        if rehearsal.completed {
            "reached C_after"
        } else {
            "INCOMPLETE"
        },
        rehearsal.steps.len(),
        retries,
        stragglers,
        rehearsal.rolled_back_steps,
        rehearsal.sim_time_ms,
        if rehearsal.degraded {
            ", degraded reads"
        } else {
            ""
        }
    );
    for v in &rehearsal.invariant_violations {
        println!("  invariant violation: {v}");
    }
    Ok(())
}

/// `magus playbook`
pub fn playbook(args: &Args) -> Result<(), String> {
    let (market, model) = build(args)?;
    let cfg = ExperimentConfig::default();
    let station = market
        .network()
        .nearest_base_station(PointM::new(0.0, 0.0))
        .ok_or("market has no base stations")?;
    eprintln!(
        "precomputing playbook for {} sectors of the central station…",
        station.sectors.len()
    );
    let playbook =
        OutagePlaybook::precompute(&model, &market, &station.sectors, args.tuning()?, &cfg);
    let mut rows = Vec::new();
    for s in &station.sectors {
        let entry = playbook.lookup(*s).expect("precomputed entry");
        rows.push(json!({
            "sector": s.0,
            "recovery_ratio": entry.outcome.recovery(UtilityKind::Performance),
            "changes": entry.outcome.config_before.diff(entry.config_after()).len(),
        }));
    }
    if args.json() {
        println!("{}", json!({ "entries": rows }));
    } else {
        println!("outage playbook ({} entries):", playbook.len());
        for r in rows {
            println!(
                "  sector {:>4}: recovery {:>5.1}%, {} changes staged",
                r["sector"],
                r["recovery_ratio"].as_number().map_or(0.0, |n| n.as_f64()) * 100.0,
                r["changes"]
            );
        }
    }
    Ok(())
}

/// `magus export-db`
pub fn export_db(args: &Args) -> Result<(), String> {
    let params = market_params(args)?;
    eprintln!(
        "generating {} market (seed {})…",
        params.area_type, params.seed
    );
    let market = Market::generate_cached(params, args.cache_dir().as_deref());
    let blob = magus_propagation::encode_store(market.store());
    let path = args.out("pathloss.mpl");
    std::fs::write(&path, &blob).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {path}: {} sectors, {:.1} MiB",
        market.store().num_sectors(),
        blob.len() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// `magus inspect-db`
pub fn inspect_db(args: &Args) -> Result<(), String> {
    let path = args.input().ok_or("--in <path> is required")?;
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let store = magus_propagation::decode_store(&blob).map_err(|e| e.to_string())?;
    let spec = store.spec();
    if args.json() {
        println!(
            "{}",
            json!({
                "sectors": store.num_sectors(),
                "grid": { "width": spec.width, "height": spec.height, "cell_m": spec.cell_size },
                "bytes": blob.len(),
            })
        );
    } else {
        println!("path-loss database {path}");
        println!("  sectors      {}", store.num_sectors());
        println!(
            "  analysis     {}x{} cells of {:.0} m",
            spec.width, spec.height, spec.cell_size
        );
        println!(
            "  size         {:.1} MiB",
            blob.len() as f64 / (1024.0 * 1024.0)
        );
        // Spot-check one matrix to prove the blob is usable.
        let m = store.matrix(0, magus_propagation::NOMINAL_TILT_INDEX);
        println!(
            "  sector 0     window {} cells, loss {:?} … sampled OK",
            m.window().len(),
            m.values().first()
        );
    }
    Ok(())
}

/// `magus trace` — analysis over flight-recorder output: `check`
/// (schema/seq validation), `diff` (first-divergence finder), `stats`
/// (record counts for traces; phase attribution + quantiles for
/// `--metrics-out` snapshots). Runs entirely on files; no market is
/// built and no obs/fault state is touched.
pub fn trace(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_positionals(argv);
    let mut operands: Vec<String> = args.positionals().to_vec();
    if operands.is_empty() {
        return Err("usage: magus trace <check|diff|stats> <file>...".to_string());
    }
    let sub = operands.remove(0);
    // `--folded run.json` binds the file as the flag's value (the
    // parser can't know `folded` takes none); recover it as an operand.
    let folded_only = args.flag("folded") || args.value("folded").is_some();
    if let Some(v) = args.value("folded") {
        operands.push(v.to_string());
    }
    match sub.as_str() {
        "check" => trace_check(&operands),
        "diff" => trace_diff(&operands),
        "stats" => trace_stats(&operands, folded_only),
        other => Err(format!(
            "unknown trace subcommand `{other}` (check|diff|stats)"
        )),
    }
}

/// `magus trace check`: every file must parse (dense seqs enforced by
/// the reader) and satisfy the v1 schema. Exit 1 if any file fails.
fn trace_check(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("usage: magus trace check <trace.jsonl>...".to_string());
    }
    let mut bad = 0usize;
    for path in files {
        match magus_obs::trace::read::read_trace(std::path::Path::new(path)) {
            Err(e) => {
                println!("{path}: INVALID — {e}");
                bad += 1;
            }
            Ok(t) => {
                let problems = magus_obs::trace::read::check_trace(&t);
                if problems.is_empty() {
                    let schema = t.schema.map_or("(none)".to_string(), |v| v.to_string());
                    println!("{path}: OK — schema {schema}, {} records", t.records.len());
                } else {
                    for p in &problems {
                        println!("{path}: {p}");
                    }
                    bad += 1;
                }
            }
        }
    }
    if bad > 0 {
        Err(format!(
            "{bad} of {} trace file(s) failed validation",
            files.len()
        ))
    } else {
        Ok(())
    }
}

/// `magus trace diff`: prints the first record where two traces
/// disagree (seq, field, both values) and exits 1; exit 0 means the
/// traces are record-for-record identical.
fn trace_diff(files: &[String]) -> Result<(), String> {
    if files.len() != 2 {
        return Err("usage: magus trace diff <a.jsonl> <b.jsonl>".to_string());
    }
    let (a, b) = (&files[0], &files[1]);
    let ta = magus_obs::trace::read::read_trace(std::path::Path::new(a))
        .map_err(|e| format!("{a}: {e}"))?;
    let tb = magus_obs::trace::read::read_trace(std::path::Path::new(b))
        .map_err(|e| format!("{b}: {e}"))?;
    match magus_obs::trace::read::diff_traces(&ta, &tb) {
        None => {
            println!(
                "no divergence: {} records identical ({a} vs {b})",
                ta.records.len()
            );
            Ok(())
        }
        Some(d) => {
            println!("{a} vs {b}:");
            println!("{d}");
            Err(format!("traces diverge at seq {}", d.seq))
        }
    }
}

/// `magus trace stats`: for `.jsonl` traces, per-kind record counts;
/// for `--metrics-out` JSON snapshots, folded flamegraph span
/// attribution plus a p50/p95/p99 table recomputed through the same
/// quantile code the registry dump used.
fn trace_stats(files: &[String], folded_only: bool) -> Result<(), String> {
    if files.is_empty() {
        return Err("usage: magus trace stats <trace.jsonl|metrics.json>...".to_string());
    }
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        if text.trim_start().starts_with("{\"seq\"") {
            // A JSONL trace stream.
            let trace =
                magus_obs::trace::read::parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
            if folded_only {
                continue; // traces carry no span timings (by design)
            }
            println!("{path}: {} records", trace.records.len());
            for (kind, count) in trace.kind_counts() {
                println!("  {kind:<28} {count:>10}");
            }
        } else {
            // A `--metrics-out` registry snapshot.
            let snap = magus_obs::trace::read::parse_metrics_snapshot(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            let folded = magus_obs::trace::read::folded_spans(&snap.histograms);
            if folded_only {
                print!("{folded}");
                continue;
            }
            println!("{path}: phase attribution (folded; ns totals):");
            for line in folded.lines() {
                println!("  {line}");
            }
            println!(
                "  {:<34} {:>10} {:>10} {:>10} {:>10} {:>12}",
                "histogram", "count", "p50", "p95", "p99", "max"
            );
            for h in &snap.histograms {
                println!(
                    "  {:<34} {:>10} {:>10} {:>10} {:>10} {:>12}",
                    h.name,
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
    }
    Ok(())
}

/// `magus render`
pub fn render(args: &Args) -> Result<(), String> {
    let (_market, model) = build(args)?;
    let state = model.nominal_state();
    let map = ServiceMap::capture(&model.evaluator, &state);
    let spec = *map.spec();
    let path = args.out("coverage.ppm");
    let img = magus_viz::serving_map_ppm(map.serving(), spec.width, spec.height);
    std::fs::write(&path, img).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {path} ({}x{} cells)", spec.width, spec.height);
    Ok(())
}
