//! `magus` — operator CLI for the Magus reproduction.
//!
//! ```text
//! magus market   --area suburban --seed 1          market summary
//! magus evaluate --area suburban --seed 1          nominal-state utilities & coverage
//! magus mitigate --area suburban --seed 1 --scenario a --tuning joint
//! magus gradual  --area suburban --seed 1 --scenario a
//! magus playbook --area suburban --seed 1          precompute central-station outages
//! magus render   --area suburban --seed 1 --out map.ppm
//! ```
//!
//! Every command accepts `--size tiny|eval|full` (default `tiny`) and
//! `--json` for machine-readable output. Argument parsing is hand-rolled
//! (two dozen lines) to keep the workspace's dependency set at the
//! project baseline.

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
magus — proactive mitigation of planned cellular upgrades (CoNEXT'15 reproduction)

USAGE:
    magus <COMMAND> [OPTIONS]

COMMANDS:
    market      Generate a synthetic market and print its summary
    evaluate    Evaluate the nominal configuration (utilities, coverage)
    mitigate    Plan mitigation for an upgrade scenario (recovery ratio, change list)
    gradual     Produce the gradual migration schedule for a scenario
    playbook    Precompute mitigations for every central-station sector
    render      Write the coverage map as a PPM image
    export-db   Write the market's path-loss database (MAGUSPL1 blob)
    inspect-db  Summarize a previously exported path-loss database
    trace       Analyze flight-recorder output (see TRACE ANALYSIS)

OPTIONS (all commands):
    --area <rural|suburban|urban>    Market density regime   [default: suburban]
    --seed <u64>                     Market seed             [default: 1]
    --size <tiny|eval|full>          Market scale            [default: tiny]
    --scale <sectors>                Continental-scale multi-city market with
                                     roughly this many sectors (e.g. 10000);
                                     overrides --area/--size. Base rasters are
                                     tile-compressed; evaluation is pruned to
                                     each probe's interference neighborhood.
    --cache-dir <dir>                Persist/reuse the assembled path-loss store
                                     and neighborhood index (versioned,
                                     checksummed blobs; corrupt or stale blobs
                                     are rebuilt). [default: MAGUS_CACHE_DIR
                                     env, else no cache] Warm runs are
                                     byte-identical to cold runs.
    --json                           JSON output on stdout
    --threads <N>                    Worker threads for parallel sections
                                     [default: MAGUS_THREADS env, else all cores]
                                     Results are identical at any thread count;
                                     only wall-clock changes.

OBSERVABILITY (all commands):
    --metrics                        Print the metric registry after the command
    --metrics-out <path>             Write the metric registry as JSON
    --trace-out <path>               Stream JSONL search/sim trace records
    --obs <off|counters|full>        Observability level [default: off, or full
                                     when any of the flags above is given]

FAULT INJECTION (all commands):
    --faults <seed|spec>             Install a deterministic fault plan: a bare
                                     seed (`--faults 42`) uses default rates; a
                                     spec tunes them, e.g.
                                     `seed=42,rate=0.05,store=0.2,transient=2,
                                     permanent=0.1,retries=4`. `rate=0` injects
                                     nothing and is byte-identical to no plan.
    --fault-report                   Print injection/recovery counters (JSON,
                                     stderr) after the command

TRACE ANALYSIS:
    trace check <trace.jsonl>...     Validate traces: schema header, dense
                                     seq numbers, required fields per record
                                     kind. Exit 1 on any problem.
    trace diff <a.jsonl> <b.jsonl>   First-divergence finder: prints the first
                                     record where two runs disagree (seq,
                                     field, both values). Exit 1 when the
                                     traces diverge — the diagnostic behind
                                     every byte-identity gate.
    trace stats <file>...            Per-kind record counts for .jsonl traces;
                                     phase-time attribution (folded
                                     flamegraph lines + p50/p95/p99) for
                                     --metrics-out JSON snapshots.
        --folded                     Print only the folded flamegraph lines
                                     (pipe into flamegraph tooling).

COMMAND OPTIONS:
    mitigate/gradual:
        --scenario <a|b|c>           Upgrade scenario        [default: a]
        --tuning <power|tilt|joint>  Search family           [default: joint]
        --utility <performance|coverage>                     [default: performance]
    mitigate:
        --strategy <greedy|anneal|beam[:K]>
                                     Search-portfolio strategy (power+tilt
                                     jointly). `anneal` = deterministic
                                     simulated annealing; `beam:K` = width-K
                                     beam search (default K=4). Both are
                                     proven never worse than `greedy`, and
                                     all three are bit-identical at any
                                     --threads value. Absent: classic
                                     --tuning families run.
    render:
        --out <path>                 Output PPM path         [default: coverage.ppm]
    export-db:
        --out <path>                 Output blob path        [default: pathloss.mpl]
    inspect-db:
        --in <path>                  Blob to inspect         [required]

EXAMPLES:
    magus mitigate --area suburban --seed 3 --scenario b --tuning joint
    magus mitigate --seed 3 --strategy anneal --json
    magus mitigate --seed 3 --strategy beam:8 --threads 4
    magus gradual --area urban --scenario a --json
    magus mitigate --seed 3 --trace-out run.jsonl --metrics-out run-metrics.json
    magus trace diff run-a.jsonl run-b.jsonl
    magus trace stats run-metrics.json --folded
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = argv[0].clone();
    // `trace` takes positional file operands and touches no market or
    // fault state, so it dispatches before the strict no-positionals
    // parse and the obs/fault setup below.
    if command == "trace" {
        return match commands::trace(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\nrun `magus --help` for usage");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = init_obs(&args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match args.threads() {
        Ok(Some(n)) => magus_exec::set_threads(n),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The guard keeps the plan installed for the whole command and
    // uninstalls it on every exit path.
    let fault_plan = match args.faults() {
        Ok(p) => p.map(std::sync::Arc::new),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _fault_guard = fault_plan.clone().map(magus_fault::PlanGuard::install);
    let result = match command.as_str() {
        "market" => commands::market(&args),
        "evaluate" => commands::evaluate(&args),
        "mitigate" => commands::mitigate(&args),
        "gradual" => commands::gradual(&args),
        "playbook" => commands::playbook(&args),
        "render" => commands::render(&args),
        "export-db" => commands::export_db(&args),
        "inspect-db" => commands::inspect_db(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    // finish_obs runs on *every* exit path: a truncated trace on the
    // failing run is exactly when the trace matters most, so the sink
    // is flushed (and metrics written) even when the command errored.
    // The command's own error wins over a secondary obs-flush error.
    let obs_result = finish_obs(&args);
    let result = match (result, obs_result) {
        (Err(e), _) => Err(e),
        (Ok(()), obs) => obs,
    };
    if args.fault_report() {
        match fault_plan {
            Some(plan) => match serde_json::to_string_pretty(&plan.report()) {
                Ok(json) => eprintln!("{json}"),
                Err(e) => eprintln!("error: cannot serialize fault report: {e}"),
            },
            None => eprintln!("fault report: no --faults plan installed"),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Applies the observability flags before the command runs: an explicit
/// `--obs` wins; otherwise requesting any metrics/trace output implies
/// the full level (collecting nothing while writing a report would be
/// surprising).
fn init_obs(args: &Args) -> Result<(), String> {
    for key in ["metrics-out", "trace-out", "obs", "threads"] {
        args.require_value(key)?;
    }
    let level = match args.obs_level()? {
        Some(l) => l,
        None => {
            if args.metrics() || args.metrics_out().is_some() || args.trace_out().is_some() {
                magus_obs::ObsLevel::Full
            } else {
                magus_obs::ObsLevel::Off
            }
        }
    };
    magus_obs::set_level(level);
    if let Some(path) = args.trace_out() {
        magus_obs::set_trace_path(std::path::Path::new(path))
            .map_err(|e| format!("cannot open --trace-out `{path}`: {e}"))?;
    }
    Ok(())
}

/// Emits the requested metric/trace outputs after the command ran —
/// on success *and* failure (failed runs are the ones worth tracing).
fn finish_obs(args: &Args) -> Result<(), String> {
    let registry = magus_obs::registry();
    if args.metrics() {
        print!("{}", registry.render_table());
    }
    if let Some(path) = args.metrics_out() {
        std::fs::write(path, registry.to_json())
            .map_err(|e| format!("cannot write --metrics-out `{path}`: {e}"))?;
    }
    if args.trace_out().is_some() {
        magus_obs::flush_trace().map_err(|e| format!("cannot flush --trace-out stream: {e}"))?;
    }
    Ok(())
}
