//! Minimal `--key value` / `--flag` argument parsing.

use magus_core::TuningKind;
use magus_model::UtilityKind;
use magus_net::{AreaType, UpgradeScenario};
use std::collections::BTreeMap;

/// Parsed command-line options with typed accessors and defaults.
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s. Unknown keys are
    /// accepted here and validated by the typed accessors. Positional
    /// arguments are rejected — the original commands take none, and a
    /// stray word is almost always a typo'd flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let args = Args::parse_with_positionals(argv);
        if let Some(arg) = args.positionals.first() {
            return Err(format!("unexpected positional argument `{arg}`"));
        }
        Ok(args)
    }

    /// Like [`Args::parse`] but collects positional arguments (tokens
    /// without a `--` prefix that aren't consumed as a key's value)
    /// instead of rejecting them — for subcommands that take file
    /// operands, like `magus trace diff a.jsonl b.jsonl`.
    pub fn parse_with_positionals(argv: &[String]) -> Args {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                positionals.push(arg.clone());
                i += 1;
                continue;
            };
            // A flag is a `--key` followed by another option or nothing.
            // A leading `-` normally marks the next token as an option,
            // but negative numbers (`--delta -3`) are values, so a token
            // that parses as a number is always treated as a value.
            let next_is_value = argv
                .get(i + 1)
                .map_or(false, |n| !n.starts_with('-') || n.parse::<f64>().is_ok());
            if next_is_value {
                values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Args {
            values,
            flags,
            positionals,
        }
    }

    /// The collected positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// `true` if `--json` was given.
    pub fn json(&self) -> bool {
        self.flags.iter().any(|f| f == "json")
    }

    /// `true` if the bare flag `--<name>` was given (generic accessor
    /// for subcommand-specific flags).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--<key> value`, if given (generic accessor for
    /// subcommand-specific options).
    pub fn value(&self, key: &str) -> Option<&str> {
        self.get(key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// `--area`, default suburban.
    pub fn area(&self) -> Result<AreaType, String> {
        match self.get("area").unwrap_or("suburban") {
            "rural" => Ok(AreaType::Rural),
            "suburban" => Ok(AreaType::Suburban),
            "urban" => Ok(AreaType::Urban),
            other => Err(format!("invalid --area `{other}` (rural|suburban|urban)")),
        }
    }

    /// `--seed`, default 1.
    pub fn seed(&self) -> Result<u64, String> {
        match self.get("seed") {
            None => Ok(1),
            Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`")),
        }
    }

    /// `--size`, default tiny.
    pub fn size(&self) -> Result<&str, String> {
        match self.get("size").unwrap_or("tiny") {
            s @ ("tiny" | "eval" | "full") => Ok(s),
            other => Err(format!("invalid --size `{other}` (tiny|eval|full)")),
        }
    }

    /// `--scale`, if given: target sector count for a continental-scale
    /// multi-city market (`MarketParams::scaled`); overrides the
    /// `--size`/`--area` presets.
    pub fn scale(&self) -> Result<Option<usize>, String> {
        match self.get("scale") {
            None => Ok(None),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 3 => Ok(Some(n)),
                _ => Err(format!("invalid --scale `{s}` (sector count, at least 3)")),
            },
        }
    }

    /// `--cache-dir`, falling back to the `MAGUS_CACHE_DIR` environment
    /// variable: directory holding persisted path-loss stores and
    /// neighborhood indexes so repeated runs skip the precompute.
    pub fn cache_dir(&self) -> Option<std::path::PathBuf> {
        self.get("cache-dir")
            .map(std::path::PathBuf::from)
            .or_else(|| std::env::var_os("MAGUS_CACHE_DIR").map(std::path::PathBuf::from))
    }

    /// `--scenario`, default (a).
    pub fn scenario(&self) -> Result<UpgradeScenario, String> {
        match self.get("scenario").unwrap_or("a") {
            "a" => Ok(UpgradeScenario::SingleCentralSector),
            "b" => Ok(UpgradeScenario::CentralBaseStation),
            "c" => Ok(UpgradeScenario::FourCorners),
            other => Err(format!("invalid --scenario `{other}` (a|b|c)")),
        }
    }

    /// `--tuning`, default joint.
    pub fn tuning(&self) -> Result<TuningKind, String> {
        match self.get("tuning").unwrap_or("joint") {
            "power" => Ok(TuningKind::Power),
            "tilt" => Ok(TuningKind::Tilt),
            "joint" => Ok(TuningKind::Joint),
            other => Err(format!("invalid --tuning `{other}` (power|tilt|joint)")),
        }
    }

    /// `--strategy`, if given: a portfolio search strategy
    /// (`greedy|anneal|beam[:K]`). Absent means the classic tuning
    /// families selected by `--tuning` run instead.
    pub fn strategy(&self) -> Result<Option<magus_core::StrategySpec>, String> {
        match self.get("strategy") {
            None => Ok(None),
            Some(s) => s
                .parse()
                .map(Some)
                .map_err(|e| format!("invalid --strategy: {e}")),
        }
    }

    /// `--utility`, default performance.
    pub fn utility(&self) -> Result<UtilityKind, String> {
        match self.get("utility").unwrap_or("performance") {
            "performance" => Ok(UtilityKind::Performance),
            "coverage" => Ok(UtilityKind::Coverage),
            other => Err(format!(
                "invalid --utility `{other}` (performance|coverage)"
            )),
        }
    }

    /// `--threads`, if given: worker count for parallel sections. By
    /// the exec determinism contract this only changes wall-clock,
    /// never output.
    pub fn threads(&self) -> Result<Option<usize>, String> {
        match self.get("threads") {
            None => Ok(None),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!("invalid --threads `{s}` (positive integer)")),
            },
        }
    }

    /// `--out`, with a command-specific default.
    pub fn out(&self, default: &str) -> String {
        self.get("out").unwrap_or(default).to_string()
    }

    /// `--in`, if given.
    pub fn input(&self) -> Option<&str> {
        self.get("in")
    }

    /// `true` if `--metrics` was given (print the registry table).
    pub fn metrics(&self) -> bool {
        self.flags.iter().any(|f| f == "metrics")
    }

    /// `--metrics-out`, if given (write the registry as JSON).
    pub fn metrics_out(&self) -> Option<&str> {
        self.get("metrics-out")
    }

    /// `--trace-out`, if given (stream JSONL trace records).
    pub fn trace_out(&self) -> Option<&str> {
        self.get("trace-out")
    }

    /// `--obs`, the explicit observability level, if given.
    pub fn obs_level(&self) -> Result<Option<magus_obs::ObsLevel>, String> {
        match self.get("obs") {
            None => Ok(None),
            Some(s) => s
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid --obs `{s}` (off|counters|full)")),
        }
    }

    /// `--faults`, if given: a fault-injection plan, either a bare seed
    /// (`--faults 42`, default rates) or a spec string
    /// (`--faults "seed=42,rate=0.05,transient=2"`).
    pub fn faults(&self) -> Result<Option<magus_fault::FaultPlan>, String> {
        match self.get("faults") {
            None => Ok(None),
            Some(s) => magus_fault::FaultPlan::parse(s)
                .map(Some)
                .map_err(|e| format!("invalid --faults `{s}`: {e}")),
        }
    }

    /// `true` if `--fault-report` was given (print injection/recovery
    /// counters after the command).
    pub fn fault_report(&self) -> bool {
        self.flags.iter().any(|f| f == "fault-report")
    }

    /// Errors if `key` was given as a bare `--key` with no value —
    /// otherwise a typo'd `--metrics-out` would silently write nothing.
    pub fn require_value(&self, key: &str) -> Result<(), String> {
        if self.flags.iter().any(|f| f == key) && !self.values.contains_key(key) {
            return Err(format!("--{key} requires a value"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.area().unwrap(), AreaType::Suburban);
        assert_eq!(a.seed().unwrap(), 1);
        assert_eq!(a.size().unwrap(), "tiny");
        assert!(!a.json());
    }

    #[test]
    fn values_and_flags() {
        let a = parse(&[
            "--area",
            "urban",
            "--seed",
            "7",
            "--json",
            "--scenario",
            "b",
        ]);
        assert_eq!(a.area().unwrap(), AreaType::Urban);
        assert_eq!(a.seed().unwrap(), 7);
        assert!(a.json());
        assert_eq!(a.scenario().unwrap(), UpgradeScenario::CentralBaseStation);
    }

    #[test]
    fn invalid_values_error() {
        let a = parse(&["--area", "lunar"]);
        assert!(a.area().is_err());
        let b = parse(&["--seed", "xyz"]);
        assert!(b.seed().is_err());
    }

    #[test]
    fn positional_rejected() {
        let argv = vec!["bogus".to_string()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn positionals_collected_when_asked() {
        let argv: Vec<String> = ["diff", "a.jsonl", "b.jsonl", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse_with_positionals(&argv);
        assert_eq!(a.positionals(), ["diff", "a.jsonl", "b.jsonl"]);
        assert!(a.json());
        // `--key value` pairs still bind before positional collection.
        let argv: Vec<String> = ["check", "--obs", "full", "t.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let b = Args::parse_with_positionals(&argv);
        assert_eq!(b.positionals(), ["check", "t.jsonl"]);
        assert_eq!(b.value("obs"), Some("full"));
        assert!(!b.flag("obs"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = parse(&["--delta", "-3", "--json"]);
        assert_eq!(a.values.get("delta").map(String::as_str), Some("-3"));
        assert!(a.json());
        let b = parse(&["--offset", "-2.5e3", "--seed", "4"]);
        assert_eq!(b.values.get("offset").map(String::as_str), Some("-2.5e3"));
        assert_eq!(b.seed().unwrap(), 4);
    }

    #[test]
    fn dashed_words_are_still_flags() {
        // `--json` after `--metrics` must not be swallowed as a value.
        let a = parse(&["--metrics", "--json"]);
        assert!(a.metrics());
        assert!(a.json());
        assert!(a.values.is_empty());
    }

    #[test]
    fn threads_accessor() {
        assert_eq!(parse(&[]).threads().unwrap(), None);
        assert_eq!(parse(&["--threads", "4"]).threads().unwrap(), Some(4));
        assert!(parse(&["--threads", "0"]).threads().is_err());
        assert!(parse(&["--threads", "many"]).threads().is_err());
    }

    #[test]
    fn obs_accessors() {
        let a = parse(&[
            "--metrics-out",
            "m.json",
            "--trace-out",
            "t.jsonl",
            "--obs",
            "full",
        ]);
        assert_eq!(a.metrics_out(), Some("m.json"));
        assert_eq!(a.trace_out(), Some("t.jsonl"));
        assert_eq!(a.obs_level().unwrap(), Some(magus_obs::ObsLevel::Full));
        assert!(parse(&["--obs", "loud"]).obs_level().is_err());
    }

    #[test]
    fn faults_accessor() {
        assert!(parse(&[]).faults().unwrap().is_none());
        let a = parse(&["--faults", "42"]);
        assert_eq!(a.faults().unwrap().unwrap().seed(), 42);
        let b = parse(&["--faults", "seed=3,rate=0.2,transient=1"]);
        assert_eq!(b.faults().unwrap().unwrap().seed(), 3);
        assert!(parse(&["--faults", "rate=2.0"]).faults().is_err());
        assert!(!parse(&[]).fault_report());
        assert!(parse(&["--fault-report"]).fault_report());
    }

    #[test]
    fn scale_and_cache_dir_accessors() {
        assert_eq!(parse(&[]).scale().unwrap(), None);
        assert_eq!(parse(&["--scale", "10000"]).scale().unwrap(), Some(10_000));
        assert!(parse(&["--scale", "0"]).scale().is_err());
        assert!(parse(&["--scale", "many"]).scale().is_err());
        let a = parse(&["--cache-dir", "/tmp/plcache"]);
        assert_eq!(
            a.cache_dir(),
            Some(std::path::PathBuf::from("/tmp/plcache"))
        );
    }

    #[test]
    fn value_keys_reject_bare_flag_form() {
        let a = parse(&["--metrics-out", "--json"]);
        assert_eq!(a.metrics_out(), None);
        assert!(a.require_value("metrics-out").is_err());
        assert!(a.require_value("trace-out").is_ok());
        let b = parse(&["--trace-out", "t.jsonl"]);
        assert!(b.require_value("trace-out").is_ok());
    }
}
