//! End-to-end check of the `--threads` flag and the exec determinism
//! contract: `magus mitigate --json` must produce **byte-identical**
//! stdout at every thread count — the flag may only change wall-clock.
//! Also covers `MAGUS_THREADS` (the env-var spelling of the same knob)
//! and rejection of invalid values.

use std::process::Command;

fn mitigate_json(threads: Option<&str>, env_threads: Option<&str>) -> Vec<u8> {
    mitigate_json_strategy(None, threads, env_threads)
}

fn mitigate_json_strategy(
    strategy: Option<&str>,
    threads: Option<&str>,
    env_threads: Option<&str>,
) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_magus"));
    cmd.args([
        "mitigate",
        "--size",
        "tiny",
        "--seed",
        "1",
        "--scenario",
        "a",
        "--tuning",
        "joint",
        "--json",
    ]);
    if let Some(s) = strategy {
        cmd.args(["--strategy", s]);
    }
    if let Some(n) = threads {
        cmd.args(["--threads", n]);
    }
    match env_threads {
        Some(n) => cmd.env("MAGUS_THREADS", n),
        None => cmd.env_remove("MAGUS_THREADS"),
    };
    let output = cmd.output().expect("run magus mitigate");
    assert!(
        output.status.success(),
        "mitigate (threads {threads:?}, env {env_threads:?}) failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

#[test]
fn mitigate_json_is_byte_identical_across_thread_counts() {
    let baseline = mitigate_json(Some("1"), None);
    // Sanity: the baseline is well-formed JSON, not an empty run.
    let v: serde_json::Value =
        serde_json::from_slice(&baseline).expect("mitigate --json output parses");
    assert!(v.as_object().is_some(), "expected a JSON object on stdout");
    for n in ["2", "3", "8"] {
        let out = mitigate_json(Some(n), None);
        assert!(
            out == baseline,
            "--threads {n} output diverged from --threads 1 ({} vs {} bytes)",
            out.len(),
            baseline.len()
        );
    }
}

#[test]
fn magus_threads_env_matches_flag() {
    let by_flag = mitigate_json(Some("4"), None);
    let by_env = mitigate_json(None, Some("4"));
    assert!(
        by_env == by_flag,
        "MAGUS_THREADS=4 diverged from --threads 4"
    );
    // An explicit flag must win over the environment.
    let flag_wins = mitigate_json(Some("1"), Some("7"));
    assert!(
        flag_wins == by_flag,
        "--threads 1 under MAGUS_THREADS=7 diverged"
    );
}

/// Every portfolio strategy holds the same contract as the classic
/// tunings: `mitigate --json --strategy …` stdout is byte-identical at
/// every `--threads` value.
#[test]
fn strategy_json_is_byte_identical_across_thread_counts() {
    for strategy in ["anneal", "beam:3"] {
        let baseline = mitigate_json_strategy(Some(strategy), Some("1"), None);
        let v: serde_json::Value =
            serde_json::from_slice(&baseline).expect("strategy --json output parses");
        let obj = v.as_object().expect("expected a JSON object on stdout");
        assert_eq!(
            obj.get("strategy").and_then(|s| s.as_str()),
            Some(strategy),
            "output names the strategy that ran"
        );
        for n in ["2", "4", "8"] {
            let out = mitigate_json_strategy(Some(strategy), Some(n), None);
            assert!(
                out == baseline,
                "--strategy {strategy} --threads {n} output diverged from --threads 1 \
                 ({} vs {} bytes)",
                out.len(),
                baseline.len()
            );
        }
    }
}

#[test]
fn invalid_strategy_values_are_rejected() {
    for bad in ["annealing", "beam:0", "beam:x", "best"] {
        let output = Command::new(env!("CARGO_BIN_EXE_magus"))
            .args(["mitigate", "--size", "tiny", "--strategy", bad])
            .output()
            .expect("run magus mitigate");
        assert!(
            !output.status.success(),
            "--strategy {bad:?} unexpectedly accepted"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("strategy"),
            "error message should mention --strategy, got: {stderr}"
        );
    }
}

#[test]
fn invalid_threads_values_are_rejected() {
    for bad in ["0", "many", ""] {
        let output = Command::new(env!("CARGO_BIN_EXE_magus"))
            .args(["mitigate", "--size", "tiny", "--threads", bad])
            .output()
            .expect("run magus mitigate");
        assert!(
            !output.status.success(),
            "--threads {bad:?} unexpectedly accepted"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("threads"),
            "error message should mention --threads, got: {stderr}"
        );
    }
}
