//! End-to-end check of the observability flags: `magus mitigate` with
//! `--metrics-out`/`--trace-out` must produce a JSON registry dump with
//! the advertised counters/histograms and a well-formed JSONL trace
//! with one record per hill-climb iteration.

use std::path::PathBuf;
use std::process::Command;

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

#[test]
fn mitigate_emits_metrics_and_trace() {
    let metrics = out_dir().join("metrics_flags_m.json");
    let trace = out_dir().join("metrics_flags_t.jsonl");
    let output = Command::new(env!("CARGO_BIN_EXE_magus"))
        .args([
            "mitigate",
            "--size",
            "tiny",
            "--seed",
            "1",
            "--json",
            "--metrics-out",
            metrics.to_str().expect("utf8 path"),
            "--trace-out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run magus mitigate");
    assert!(
        output.status.success(),
        "mitigate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Registry dump: valid JSON with the headline instrumentation.
    let dump = std::fs::read_to_string(&metrics).expect("read metrics dump");
    let v: serde_json::Value = serde_json::from_str(&dump).expect("metrics dump parses");
    let counters = v["counters"].as_object().expect("counters object");
    for name in [
        "pathloss.cache.hit",
        "pathloss.cache.miss",
        "evaluator.probe",
        "hillclimb.iters",
    ] {
        let n = counters
            .get(name)
            .and_then(|c| c.as_number())
            .and_then(|n| n.as_u64())
            .unwrap_or_else(|| panic!("counter `{name}` missing from dump"));
        assert!(n > 0, "counter `{name}` never incremented");
    }
    let histograms = v["histograms"].as_object().expect("histograms object");
    let probe_ns = histograms
        .get("evaluator.probe_ns")
        .expect("evaluator.probe_ns histogram missing");
    let probe_count = probe_ns["count"]
        .as_number()
        .and_then(|n| n.as_u64())
        .expect("histogram count");
    assert!(probe_count > 0, "probe histogram recorded nothing");

    // Trace: every line parses; hill-climb iteration records are dense
    // (iters 0..n with the advertised fields).
    let body = std::fs::read_to_string(&trace).expect("read trace");
    let mut hc_iters = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let rec: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not JSON ({e}): {line}"));
        assert!(rec["kind"].as_str().is_some(), "line {i} lacks kind");
        if rec["kind"].as_str() == Some("hillclimb.iter") {
            for field in [
                "iter",
                "candidate",
                "probes",
                "objective",
                "delta",
                "accepted",
            ] {
                assert!(
                    !matches!(rec[field], serde_json::Value::Null),
                    "hillclimb.iter line {i} lacks `{field}`"
                );
            }
            hc_iters.push(
                rec["iter"]
                    .as_number()
                    .and_then(|n| n.as_u64())
                    .expect("iter number"),
            );
        }
    }
    assert!(!hc_iters.is_empty(), "no hillclimb.iter records in trace");
    let expect: Vec<u64> = (0..hc_iters.len() as u64).collect();
    assert_eq!(hc_iters, expect, "hill-climb iterations not dense from 0");

    let iters_counter = counters
        .get("hillclimb.iters")
        .and_then(|c| c.as_number())
        .and_then(|n| n.as_u64())
        .expect("hillclimb.iters");
    assert_eq!(
        iters_counter,
        hc_iters.len() as u64,
        "one trace record per hill-climb iteration"
    );
}

#[test]
fn obs_off_emits_nothing_extra() {
    let output = Command::new(env!("CARGO_BIN_EXE_magus"))
        .args(["evaluate", "--size", "tiny", "--json", "--obs", "off"])
        .output()
        .expect("run magus evaluate");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !stdout.contains("counters:"),
        "no metrics table without --metrics"
    );
}
