//! End-to-end tests for the `magus trace` subcommand family: the
//! first-divergence finder on real runs (same-seed runs must diff
//! clean across thread counts, different-seed runs must name the exact
//! first divergent record), schema validation, phase-attribution
//! stats, and the flush-on-error contract (a failing command still
//! leaves a `trace check`-clean file behind).

use std::path::PathBuf;
use std::process::{Command, Output};

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn magus(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_magus"))
        .args(args)
        .output()
        .expect("run magus")
}

/// `mitigate --trace-out <path>`, returning the trace path.
fn traced_mitigate(name: &str, seed: &str, threads: &str) -> PathBuf {
    let path = out_dir().join(name);
    let out = magus(&[
        "mitigate",
        "--size",
        "tiny",
        "--json",
        "--seed",
        seed,
        "--threads",
        threads,
        "--trace-out",
        path.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "mitigate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn same_seed_runs_diff_clean_across_thread_counts() {
    let a = traced_mitigate("same_1t.jsonl", "2", "1");
    let b = traced_mitigate("same_4t.jsonl", "2", "4");
    let out = magus(&[
        "trace",
        "diff",
        a.to_str().expect("utf8"),
        b.to_str().expect("utf8"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "same-seed traces diverged:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("no divergence"),
        "expected a no-divergence report, got: {stdout}"
    );
}

#[test]
fn different_seed_runs_report_first_divergent_record() {
    let a = traced_mitigate("seed2.jsonl", "2", "1");
    let b = traced_mitigate("seed3.jsonl", "3", "1");
    let out = magus(&[
        "trace",
        "diff",
        a.to_str().expect("utf8"),
        b.to_str().expect("utf8"),
    ]);
    assert!(
        !out.status.success(),
        "different-seed traces unexpectedly identical"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The report must name the seq, the field, and both values.
    assert!(
        stdout.contains("first divergence at seq"),
        "missing seq in: {stdout}"
    );
    assert!(stdout.contains("left:"), "missing left value in: {stdout}");
    assert!(
        stdout.contains("right:"),
        "missing right value in: {stdout}"
    );
    assert!(
        stdout.contains("field `"),
        "missing field name in: {stdout}"
    );
}

#[test]
fn trace_check_validates_real_runs_and_rejects_seq_gaps() {
    let a = traced_mitigate("check_ok.jsonl", "2", "1");
    let ok = magus(&["trace", "check", a.to_str().expect("utf8")]);
    assert!(
        ok.status.success(),
        "trace check failed on a real run: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("OK — schema 1"));

    // Drop a middle line: the dense-seq contract must catch it.
    let text = std::fs::read_to_string(&a).expect("read trace");
    let gapped: Vec<&str> = text
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, l)| l)
        .collect();
    let bad = out_dir().join("check_gap.jsonl");
    std::fs::write(&bad, gapped.join("\n") + "\n").expect("write gapped trace");
    let fail = magus(&["trace", "check", bad.to_str().expect("utf8")]);
    assert!(!fail.status.success(), "seq gap not rejected");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    let stdout = String::from_utf8_lossy(&fail.stdout);
    assert!(
        stdout.contains("seq gap") || stderr.contains("seq gap"),
        "gap not named: stdout={stdout} stderr={stderr}"
    );
}

#[test]
fn failing_command_still_flushes_a_check_clean_trace() {
    let path = out_dir().join("failing_cmd.jsonl");
    let out = magus(&[
        "render",
        "--size",
        "tiny",
        "--seed",
        "1",
        "--out",
        "/nonexistent-dir/never/x.ppm",
        "--trace-out",
        path.to_str().expect("utf8"),
    ]);
    assert!(!out.status.success(), "render into missing dir succeeded?");
    // The failed run's trace is flushed and complete: header present,
    // seq dense, every record schema-valid.
    let check = magus(&["trace", "check", path.to_str().expect("utf8")]);
    assert!(
        check.status.success(),
        "trace from failing command not check-clean: {}{}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr)
    );
}

#[test]
fn stats_reports_kind_counts_and_folded_phase_attribution() {
    let trace = out_dir().join("stats_t.jsonl");
    let metrics = out_dir().join("stats_m.json");
    let out = magus(&[
        "mitigate",
        "--size",
        "tiny",
        "--json",
        "--seed",
        "2",
        "--trace-out",
        trace.to_str().expect("utf8"),
        "--metrics-out",
        metrics.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());

    let stats = magus(&["trace", "stats", trace.to_str().expect("utf8")]);
    assert!(stats.status.success());
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(
        stdout.contains("hillclimb.iter"),
        "kind counts missing: {stdout}"
    );

    // Metrics snapshot: quantile table plus folded flamegraph lines in
    // `stack;frames count` form, consumable by standard tooling.
    let stats = magus(&["trace", "stats", metrics.to_str().expect("utf8")]);
    assert!(stats.status.success());
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("p50"), "quantile table missing: {stdout}");
    assert!(stdout.contains("p99"), "p99 missing: {stdout}");
    assert!(
        stdout.contains("magus;"),
        "folded span lines missing: {stdout}"
    );

    let folded = magus(&[
        "trace",
        "stats",
        metrics.to_str().expect("utf8"),
        "--folded",
    ]);
    assert!(folded.status.success());
    let stdout = String::from_utf8_lossy(&folded.stdout);
    for line in stdout.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(stack.starts_with("magus;"), "bad stack root: {line}");
        assert!(count.parse::<u64>().is_ok(), "bad sample count: {line}");
    }
    assert!(!stdout.is_empty(), "no folded output");
}
