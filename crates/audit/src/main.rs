//! `magus-audit` — the workspace static-analysis gate.
//!
//! ```text
//! magus-audit check [--root DIR] [--allowlist FILE] [--json FILE]
//! magus-audit check --explain <pass|all>
//! ```
//!
//! `--explain` prints the named pass's rule, rationale, and allowlist
//! syntax and exits without auditing. Otherwise exits 0 when every
//! finding is fixed or allowlisted, 1 when findings remain, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use magus_audit::{run_audit, Allowlist, AuditError};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: magus-audit check [--root DIR] [--allowlist FILE] [--json FILE] [--explain PASS|all]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`\n{}", usage())),
        None => return Err(usage().to_string()),
    }
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: None,
        json: None,
        explain: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
            "--explain" => opts.explain = Some(value("--explain")?),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, AuditError> {
    let allow_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("audit.allowlist"));
    let allow = Allowlist::load(&allow_path)?;
    let report = run_audit(&opts.root, &allow)?;
    print!("{}", report.render_text());
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| opts.root.join("target").join("audit-report.json"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| AuditError::Io(parent.to_path_buf(), e))?;
    }
    std::fs::write(&json_path, report.to_json())
        .map_err(|e| AuditError::Io(json_path.clone(), e))?;
    println!("report: {}", json_path.display());
    Ok(report.ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(pass) = &opts.explain {
        return match magus_audit::explain::explain(pass) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "magus-audit: unknown pass `{pass}`; known passes: {} (or `all`)",
                    magus_audit::passes::ALL_PASSES.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("magus-audit: {e}");
            ExitCode::from(2)
        }
    }
}
