//! Findings, report assembly, and JSON emission (hand-rolled — the
//! auditor is std-only by design).

use crate::allow::Allowlist;
use std::fmt::Write as _;
use std::path::Path;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass id (`unit-safety`, `nondet-iter`, … — see
    /// [`crate::passes::ALL_PASSES`]).
    pub pass: String,
    /// Path relative to the audited root, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed offending source line.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// A finding plus the allowlist reason that suppressed it.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The underlying finding.
    pub finding: Finding,
    /// The allowlist rule's reason string.
    pub reason: String,
}

/// Per-pass counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass id.
    pub pass: String,
    /// Findings not covered by the allowlist.
    pub unsuppressed: usize,
    /// Findings covered by the allowlist.
    pub suppressed: usize,
}

/// The complete result of one audit run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The audited root, as given.
    pub root: String,
    /// Per-pass counts, in canonical pass order.
    pub passes: Vec<PassStats>,
    /// Unsuppressed findings (these fail the run).
    pub findings: Vec<Finding>,
    /// Allowlisted findings with their reasons.
    pub suppressed: Vec<Suppressed>,
    /// Allowlist rules that matched nothing (stale).
    pub unused_allow_rules: Vec<String>,
}

impl AuditReport {
    /// Whether the run passes (no unsuppressed findings).
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"root\": {},", json_str(&self.root));
        let _ = writeln!(s, "  \"ok\": {},", self.ok());
        let _ = writeln!(s, "  \"unsuppressed_total\": {},", self.findings.len());
        let _ = writeln!(s, "  \"suppressed_total\": {},", self.suppressed.len());
        s.push_str("  \"passes\": [\n");
        for (i, p) in self.passes.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"pass\": {}, \"unsuppressed\": {}, \"suppressed\": {}}}",
                json_str(&p.pass),
                p.unsuppressed,
                p.suppressed
            );
            s.push_str(if i + 1 < self.passes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&finding_json(f, None));
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"suppressed\": [\n");
        for (i, sp) in self.suppressed.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&finding_json(&sp.finding, Some(&sp.reason)));
            s.push_str(if i + 1 < self.suppressed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"unused_allow_rules\": [");
        for (i, r) in self.unused_allow_rules.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(r));
        }
        s.push_str("]\n}\n");
        s
    }

    /// One-line-per-finding human summary for the terminal.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}: [{}] {}\n    {}",
                f.file, f.line, f.pass, f.message, f.snippet
            );
        }
        for p in &self.passes {
            let _ = writeln!(
                s,
                "pass {:<15} {:>3} finding(s), {:>3} allowlisted",
                p.pass, p.unsuppressed, p.suppressed
            );
        }
        for r in &self.unused_allow_rules {
            let _ = writeln!(s, "warning: unused allowlist rule: {r}");
        }
        let _ = writeln!(
            s,
            "audit: {}",
            if self.ok() {
                "PASS"
            } else {
                "FAIL (fix the findings or allowlist them with a reason)"
            }
        );
        s
    }
}

/// Splits raw findings into suppressed/unsuppressed and tallies passes.
pub fn build_report(root: &Path, all: Vec<Finding>, allow: &Allowlist) -> AuditReport {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in all {
        match allow.suppression(&f) {
            Some(rule) => suppressed.push(Suppressed {
                finding: f,
                reason: rule.reason.clone(),
            }),
            None => findings.push(f),
        }
    }
    let passes = crate::passes::ALL_PASSES
        .iter()
        .map(|&pass| PassStats {
            pass: pass.to_string(),
            unsuppressed: findings.iter().filter(|f| f.pass == pass).count(),
            suppressed: suppressed.iter().filter(|s| s.finding.pass == pass).count(),
        })
        .collect();
    let unused_allow_rules = allow
        .unused()
        .iter()
        .map(|r| {
            format!(
                "line {}: {} | {} | {}",
                r.source_line, r.pass, r.file, r.needle
            )
        })
        .collect();
    AuditReport {
        root: root.display().to_string(),
        passes,
        findings,
        suppressed,
        unused_allow_rules,
    }
}

fn finding_json(f: &Finding, reason: Option<&str>) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"pass\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}",
        json_str(&f.pass),
        json_str(&f.file),
        f.line,
        json_str(&f.snippet),
        json_str(&f.message)
    );
    if let Some(r) = reason {
        let _ = write!(s, ", \"reason\": {}", json_str(r));
    }
    s.push('}');
    s
}

/// Escapes `v` as a JSON string literal.
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_counts_and_ok_flag() {
        let allow = Allowlist::parse("cast-audit | x.rs | * | checked upstream\n").expect("parses");
        let all = vec![
            Finding {
                pass: "cast-audit".into(),
                file: "crates/geo/src/x.rs".into(),
                line: 3,
                snippet: "let a = (b) as u32;".into(),
                message: "m".into(),
            },
            Finding {
                pass: "panic-freedom".into(),
                file: "crates/geo/src/y.rs".into(),
                line: 9,
                snippet: "z.unwrap()".into(),
                message: "m".into(),
            },
        ];
        let r = build_report(Path::new("/tmp/root"), all, &allow);
        assert!(!r.ok());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.suppressed.len(), 1);
        let json = r.to_json();
        assert!(json.contains("\"unsuppressed_total\": 1"));
        assert!(json.contains("\"reason\": \"checked upstream\""));
    }
}
