//! Comment/string-aware text sanitizing.
//!
//! The token-tree engine in [`crate::lex`]/[`crate::tree`] replaced
//! the old line scanner for every source-code pass; what remains here
//! is [`sanitize`], which the `lint-gate` pass uses to search crate
//! roots for `#![forbid(unsafe_code)]` without matching prose in
//! comments or string literals.

/// Lexer state carried across lines.
enum Mode {
    Code,
    Block { depth: u32 },
    Str,
    RawStr { hashes: u32 },
}

/// Returns `text` with comment bodies removed and string/char literal
/// contents replaced by spaces (delimiters kept). Newlines survive so
/// line numbers stay aligned with the original.
pub fn sanitize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut mode = Mode::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match (c, next) {
                ('/', Some('/')) => {
                    // Line comment (incl. doc comments): drop to EOL.
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    continue;
                }
                ('/', Some('*')) => {
                    mode = Mode::Block { depth: 1 };
                    i += 2;
                    continue;
                }
                ('r', Some('"')) | ('r', Some('#')) if raw_str_at(&chars, i).is_some() => {
                    let hashes = raw_str_at(&chars, i).unwrap_or(0);
                    out.push_str("r\"");
                    i += 2 + hashes as usize;
                    mode = Mode::RawStr { hashes };
                    continue;
                }
                ('"', _) => {
                    out.push('"');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                ('\'', _) => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote within a few chars (`'a'`, `'\n'`, `'\u{7}'`).
                    if let Some(end) = char_literal_end(&chars, i) {
                        out.push('\'');
                        out.push('\'');
                        i = end + 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                    continue;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::Block { depth } => match (c, next) {
                ('*', Some('/')) => {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block { depth: depth - 1 }
                    };
                    i += 2;
                }
                ('/', Some('*')) => {
                    mode = Mode::Block { depth: depth + 1 };
                    i += 2;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            },
            Mode::Str => match (c, next) {
                ('\\', Some(_)) => {
                    i += 2;
                }
                ('"', _) => {
                    out.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            },
            Mode::RawStr { hashes } => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    out.push('"');
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `chars[i..]` starts a raw string (`r"` or `r#…#"`), returns the
/// hash count; `None` for raw identifiers like `r#fn`.
fn raw_str_at(chars: &[char], i: usize) -> Option<u32> {
    debug_assert!(chars[i] == 'r');
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Whether the `"` at `i` is followed by `hashes` hash marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Index of the closing quote if `chars[i]` opens a char literal.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    debug_assert!(chars[i] == '\'');
    let mut j = i + 1;
    if chars.get(j) == Some(&'\\') {
        // Escape: skip the backslash and scan to the closing quote
        // (covers \n, \', \u{…}).
        j += 2;
        while j < chars.len() && chars[j] != '\'' && j - i < 12 {
            j += 1;
        }
        (chars.get(j) == Some(&'\'')).then_some(j)
    } else {
        // Unescaped: exactly one char then a quote, else it's a lifetime.
        (chars.get(j + 1) == Some(&'\'')).then_some(j + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_string_bodies() {
        let src =
            "let a = 1; // call .unwrap() here\nlet s = \".unwrap()\";\n/* panic!( */ let b = 2;\n";
        let out = sanitize(src);
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn keeps_lifetimes_but_blanks_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let out = sanitize(src);
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains("'x'"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"no .expect( inside\"#; let t = 3;\n";
        let out = sanitize(src);
        assert!(!out.contains("expect"));
        assert!(out.contains("let t = 3;"));
    }

    #[test]
    fn nested_block_comments() {
        let out = sanitize("/* a /* b */ c */ let x = 1;\n");
        assert!(out.contains("let x = 1;"));
        assert!(!out.contains('a'));
    }
}
