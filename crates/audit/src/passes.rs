//! The audit passes, all built on the token-tree engine in
//! [`crate::tree`] (except `lint-gate`, which reads manifests).
//!
//! Legacy code-hygiene passes: `unit-safety`, `panic-freedom`,
//! `cast-audit`, `no-bare-print`, `lint-gate`.
//!
//! Determinism & concurrency passes (the static half of the
//! reproduction contract — bit-identical results at any thread count,
//! under zero-rate fault plans, and across checkpoint resume):
//! `nondet-iter`, `wall-clock`, `float-order`, `lock-discipline`,
//! `env-nondet`. Run `magus-audit check --explain <pass>` for each
//! pass's rule, rationale, and allowlist syntax.

use crate::report::Finding;
use crate::tree::{
    after_dot, call_follows, is_ident, is_path2, param_name, param_segments, Delim, Shape,
    SourceFile, NO_MATE,
};
use crate::{
    AuditError, BINARY_CRATES, CAST_AUDIT_CRATES, FLOAT_ORDER_CRATES, NONDET_ITER_CRATES,
    PANIC_EXEMPT_CRATES, WALL_CLOCK_CRATES,
};
use std::path::Path;

/// Pass identifiers, as they appear in reports and the allowlist.
pub const PASS_UNIT_SAFETY: &str = "unit-safety";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_PANIC_FREEDOM: &str = "panic-freedom";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_CAST_AUDIT: &str = "cast-audit";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_LINT_GATE: &str = "lint-gate";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_NO_BARE_PRINT: &str = "no-bare-print";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_NONDET_ITER: &str = "nondet-iter";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_WALL_CLOCK: &str = "wall-clock";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_FLOAT_ORDER: &str = "float-order";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_LOCK_DISCIPLINE: &str = "lock-discipline";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_ENV_NONDET: &str = "env-nondet";

/// Canonical pass order for reports.
pub const ALL_PASSES: &[&str] = &[
    PASS_UNIT_SAFETY,
    PASS_PANIC_FREEDOM,
    PASS_CAST_AUDIT,
    PASS_LINT_GATE,
    PASS_NO_BARE_PRINT,
    PASS_NONDET_ITER,
    PASS_WALL_CLOCK,
    PASS_FLOAT_ORDER,
    PASS_LOCK_DISCIPLINE,
    PASS_ENV_NONDET,
];

fn finding(pass: &str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        pass: pass.to_string(),
        file: file.rel.clone(),
        line: line as usize,
        snippet: file.snippet(line),
        message,
    }
}

// ---------------------------------------------------------------- unit-safety

/// Parameter names that claim a radio unit. A bare `f64` with such a
/// name should be one of the `magus_geo::units` newtypes instead.
fn unit_suspicious(name: &str) -> Option<&'static str> {
    let n = name.to_ascii_lowercase();
    if n.ends_with("_dbm") {
        Some("Dbm")
    } else if n.ends_with("_db") {
        Some("Db")
    } else if n.ends_with("_mw") {
        Some("MilliWatt")
    } else if n.contains("power") {
        Some("Dbm (or MilliWatt for linear sums)")
    } else if n.contains("loss") || n.contains("gain") {
        Some("Db")
    } else if n == "tilt_deg" || n.ends_with("tilt_deg") || n.starts_with("dist") {
        Some("a dedicated quantity type (or a documented raw-f64 unit)")
    } else {
        None
    }
}

/// Flags public `fn` parameters typed as bare `f64` whose names match
/// the unit patterns above. Findings anchor at the parameter's own
/// line, so multi-line signatures report precisely.
pub fn unit_safety(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if BINARY_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for f in &file.fns {
            if !f.is_pub || f.in_test {
                continue;
            }
            for (s, e) in param_segments(&file.toks, f.params.0 + 1, f.params.1) {
                let Some((pname, ty_start)) = param_name(&file.toks, s, e) else {
                    continue;
                };
                let ty = &file.toks[ty_start..e];
                if ty.len() != 1 || ty[0].shape != Shape::Ident || ty[0].text != "f64" {
                    continue;
                }
                if let Some(suggest) = unit_suspicious(&pname) {
                    out.push(finding(
                        PASS_UNIT_SAFETY,
                        file,
                        file.toks[s].line,
                        format!(
                            "public fn takes bare `f64` parameter `{pname}`; \
                             use {suggest} from magus_geo::units"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// -------------------------------------------------------------- panic-freedom

/// Flags `.unwrap()` / `.expect(` / `panic!(` outside test and
/// `#[cfg(debug_assertions)]` code in library crates.
/// `debug_assert!`/`assert!` are deliberately allowed: stated
/// invariants are the point, silent `unwrap` panics are not.
pub fn panic_freedom(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.debug_only || t.shape != Shape::Ident {
                continue;
            }
            let display = match t.text.as_str() {
                "unwrap" if after_dot(&file.toks, i) && call_follows(&file.toks, i) => ".unwrap()",
                "expect" if after_dot(&file.toks, i) && call_follows(&file.toks, i) => ".expect(",
                "panic" if file.toks.get(i + 1).is_some_and(|n| n.text == "!") => "panic!(",
                _ => continue,
            };
            out.push(finding(
                PASS_PANIC_FREEDOM,
                file,
                t.line,
                format!(
                    "`{display}` in non-test library code; return a Result, \
                     use a total operation, or allowlist with a reason"
                ),
            ));
        }
    }
    out
}

// ----------------------------------------------------------------- cast-audit

/// Narrowing integer targets the cast pass watches.
const NARROW_TARGETS: &[&str] = &["usize", "u32", "i32"];

/// Flags `…) as usize` / `…] as u32` style casts — a computed value
/// narrowed without a range check — in the numeric crates. A cast
/// whose input is visibly range-guarded (`….clamp(…) as u32`,
/// `….min(…) as u32`) is exempt: that is exactly what the checked
/// helpers in `magus_geo::cast` do.
pub fn cast_audit(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !CAST_AUDIT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.shape != Shape::Ident || t.text != "as" {
                continue;
            }
            let Some(target) = file
                .toks
                .get(i + 1)
                .filter(|n| n.shape == Shape::Ident && NARROW_TARGETS.contains(&n.text.as_str()))
            else {
                continue;
            };
            if i == 0 {
                continue;
            }
            let prev = &file.toks[i - 1];
            let computed = matches!(
                prev.shape,
                Shape::Close(Delim::Paren) | Shape::Close(Delim::Bracket)
            );
            if !computed {
                continue;
            }
            if prev.shape == Shape::Close(Delim::Paren) && prev.mate != NO_MATE {
                let open = prev.mate;
                let guarded = open >= 2
                    && after_dot(&file.toks, open - 1)
                    && is_ident(&file.toks, open - 1, "clamp")
                    || open >= 2
                        && after_dot(&file.toks, open - 1)
                        && is_ident(&file.toks, open - 1, "min");
                if guarded {
                    continue;
                }
            }
            out.push(finding(
                PASS_CAST_AUDIT,
                file,
                t.line,
                format!(
                    "computed expression narrowed with `as {}`; \
                     use a checked helper from magus_geo::cast",
                    target.text
                ),
            ));
        }
    }
    out
}

// -------------------------------------------------------------- no-bare-print

/// Macros that write straight to stdout/stderr.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// Flags direct stdout/stderr printing in non-test library code.
/// `main.rs` crate roots and `src/bin/` binaries are exempt: their
/// printed text is the program's interface. Everything else reports
/// through `magus-obs` (counters, trace events) or returns data for the
/// binary layer to render; the few legitimate library-side print sites
/// are allowlisted with a reason.
pub fn no_bare_print(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if file.rel.ends_with("/main.rs") || file.rel.contains("/src/bin/") {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.shape != Shape::Ident || !PRINT_MACROS.contains(&t.text.as_str()) {
                continue;
            }
            if !file.toks.get(i + 1).is_some_and(|n| n.text == "!") {
                continue;
            }
            out.push(finding(
                PASS_NO_BARE_PRINT,
                file,
                t.line,
                format!(
                    "`{}!(…)` in non-main library code; emit a magus-obs \
                     metric/trace event or return the text to the binary layer",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- nondet-iter

/// Hash-ordered std types whose iteration order is seed-dependent.
const NONDET_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Flags `HashMap`/`HashSet` (and hasher) mentions in deterministic
/// crates: hash iteration order varies per process, so any iteration,
/// `Debug` dump, or serialization of one breaks bit-identity. Uses
/// that are provably order-insensitive (keyed get/insert only, with
/// aggregate reads) are allowlisted with a written argument.
pub fn nondet_iter(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !NONDET_ITER_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for t in &file.toks {
            if t.in_test || t.in_use || t.shape != Shape::Ident {
                continue;
            }
            if !NONDET_TYPES.contains(&t.text.as_str()) {
                continue;
            }
            out.push(finding(
                PASS_NONDET_ITER,
                file,
                t.line,
                format!(
                    "`{}` in a deterministic crate: iteration order is \
                     hash-seed dependent; use BTreeMap/BTreeSet or sorted \
                     iteration, or allowlist with an order-insensitivity \
                     argument",
                    t.text
                ),
            ));
        }
    }
    out
}

// ----------------------------------------------------------------- wall-clock

/// Flags `Instant::now()` and any `SystemTime` use in deterministic
/// crates: wall-clock values must never reach deterministic
/// computation. Timing for reports lives in `obs`/`bench`/the CLI;
/// sim time is explicit (`SimTime` ticks).
pub fn wall_clock(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !WALL_CLOCK_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.in_use {
                continue;
            }
            if is_path2(&file.toks, i, "Instant", "now") {
                out.push(finding(
                    PASS_WALL_CLOCK,
                    file,
                    t.line,
                    "`Instant::now()` in a deterministic crate; wall-clock \
                     readings belong in obs/bench/CLI timing code, sim time \
                     is explicit ticks"
                        .to_string(),
                ));
            } else if t.shape == Shape::Ident && t.text == "SystemTime" {
                out.push(finding(
                    PASS_WALL_CLOCK,
                    file,
                    t.line,
                    "`SystemTime` in a deterministic crate; wall-clock \
                     readings belong in obs/bench/CLI timing code"
                        .to_string(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- float-order

/// Parallel fan-out entry points from `magus-exec`: closures passed to
/// these run concurrently, so float reductions inside their argument
/// lists must be index-ordered.
const PARALLEL_ENTRIES: &[&str] = &["map_indexed", "with_team", "map_markets_parallel"];

/// Flags (a) `.partial_cmp(` call sites — NaN-propagating comparisons
/// used as sort/max keys must be `total_cmp` — and (b) unordered
/// `.sum(` / `.fold(` reductions lexically inside the argument list of
/// a `magus-exec` parallel entry point, where accumulation order is
/// not fixed; use `argmax_det` or an index-ordered reduction. `fn
/// partial_cmp` *definitions* (the canonical `Some(self.cmp(other))`
/// delegation) are not call sites and are not flagged.
pub fn float_order(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !FLOAT_ORDER_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        // Per-group flag: are we inside a parallel entry's call args?
        let mut stack: Vec<bool> = Vec::new();
        for (i, t) in file.toks.iter().enumerate() {
            match t.shape {
                Shape::Open(_) => {
                    let callee_parallel = i > 0
                        && file.toks[i - 1].shape == Shape::Ident
                        && PARALLEL_ENTRIES.contains(&file.toks[i - 1].text.as_str());
                    let inherited = stack.last().copied().unwrap_or(false);
                    stack.push(inherited || callee_parallel);
                }
                Shape::Close(_) => {
                    stack.pop();
                }
                Shape::Ident if !t.in_test => {
                    if t.text == "partial_cmp"
                        && after_dot(&file.toks, i)
                        && call_follows(&file.toks, i)
                    {
                        out.push(finding(
                            PASS_FLOAT_ORDER,
                            file,
                            t.line,
                            "`.partial_cmp(` call site; for float sort/max keys \
                             use `total_cmp` (deterministic total order, no \
                             NaN unwrap)"
                                .to_string(),
                        ));
                    } else if (t.text == "sum" || t.text == "fold")
                        && after_dot(&file.toks, i)
                        && call_follows(&file.toks, i)
                        && stack.last().copied().unwrap_or(false)
                    {
                        out.push(finding(
                            PASS_FLOAT_ORDER,
                            file,
                            t.line,
                            format!(
                                "`.{}(` inside a magus-exec parallel context; \
                                 float accumulation order must be fixed — use \
                                 an index-ordered reduction or `argmax_det`",
                                t.text
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

// ------------------------------------------------------------ lock-discipline

/// Flags (a) a second `.lock(` acquisition inside one fn body — the
/// store's sharded cache requires multi-shard holds to take shards in
/// ascending `shard_index` order, which a single lexical body cannot
/// prove, so it must be argued in the allowlist — and (b) calls of a
/// closure-typed parameter after a `.lock(` in the same body: a guard
/// held across user code invites lock-order inversion and re-entrancy
/// deadlocks. Both rules are lexical over-approximations by design;
/// the allowlist is the escape hatch and `cargo miri test` (nightly
/// CI) is the dynamic complement.
pub fn lock_discipline(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !WALL_CLOCK_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            let Some((b0, b1)) = f.body else {
                continue;
            };
            let mut lock_sites: Vec<usize> = Vec::new();
            for i in b0 + 1..b1 {
                let t = &file.toks[i];
                if t.shape == Shape::Ident
                    && t.text == "lock"
                    && after_dot(&file.toks, i)
                    && call_follows(&file.toks, i)
                {
                    lock_sites.push(i);
                }
            }
            for &i in lock_sites.iter().skip(1) {
                out.push(finding(
                    PASS_LOCK_DISCIPLINE,
                    file,
                    file.toks[i].line,
                    format!(
                        "fn `{}` acquires more than one lock; multi-shard \
                         holds must take shards in ascending shard_index \
                         order — restructure, or allowlist with the ordering \
                         argument",
                        f.name
                    ),
                ));
            }
            if lock_sites.is_empty() || f.closure_params.is_empty() {
                continue;
            }
            let first_lock = lock_sites[0];
            for i in first_lock + 1..b1 {
                let t = &file.toks[i];
                if t.shape == Shape::Ident
                    && f.closure_params.iter().any(|p| *p == t.text)
                    && call_follows(&file.toks, i)
                    && !after_dot(&file.toks, i)
                {
                    out.push(finding(
                        PASS_LOCK_DISCIPLINE,
                        file,
                        t.line,
                        format!(
                            "fn `{}` calls user closure `{}` after acquiring \
                             a lock in the same body; drop the guard before \
                             calling into user code, or allowlist with a \
                             no-guard-held argument",
                            f.name, t.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------------- env-nondet

/// `std::env` readers whose values depend on the process environment.
const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os", "args", "args_os"];

/// Flags process-environment and thread-identity reads in
/// deterministic crates: `std::env::*`, `thread::current`,
/// `available_parallelism`, `process::id`. Values like these flowing
/// into deterministic computation make results depend on the machine,
/// the environment, or scheduling. Config belongs at the CLI boundary;
/// thread *count* may shape work splitting only where the
/// merge is order-fixed (argued in the allowlist).
pub fn env_nondet(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !WALL_CLOCK_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.in_use {
                continue;
            }
            let msg = if is_ident(&file.toks, i, "env")
                && file.toks.get(i + 1).is_some_and(|x| x.text == ":")
                && file.toks.get(i + 2).is_some_and(|x| x.text == ":")
                && file
                    .toks
                    .get(i + 3)
                    .is_some_and(|x| ENV_READERS.contains(&x.text.as_str()))
            {
                Some(format!(
                    "`env::{}` in a deterministic crate; environment reads \
                     belong at the CLI boundary, passed down as explicit \
                     config",
                    file.toks[i + 3].text
                ))
            } else if is_path2(&file.toks, i, "thread", "current") {
                Some(
                    "`thread::current()` in a deterministic crate; thread \
                     identity must not influence results"
                        .to_string(),
                )
            } else if t.shape == Shape::Ident && t.text == "available_parallelism" {
                Some(
                    "`available_parallelism()` in a deterministic crate; \
                     machine shape must not influence results (thread count \
                     may only size order-fixed work splitting)"
                        .to_string(),
                )
            } else if is_path2(&file.toks, i, "process", "id") {
                Some(
                    "`process::id()` in a deterministic crate; process \
                     identity must not influence results"
                        .to_string(),
                )
            } else {
                None
            };
            if let Some(message) = msg {
                out.push(finding(PASS_ENV_NONDET, file, t.line, message));
            }
        }
    }
    out
}

// ------------------------------------------------------------------ lint-gate

/// Verifies the workspace lint plumbing: `[workspace.lints]` at the
/// root, `lints.workspace = true` in every member, and
/// `#![forbid(unsafe_code)]` at every crate root.
pub fn lint_gate(root: &Path) -> Result<Vec<Finding>, AuditError> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let root_text = toml_without_comments(
        &std::fs::read_to_string(&root_manifest)
            .map_err(|e| AuditError::Io(root_manifest.clone(), e))?,
    );
    if !root_text.contains("[workspace.lints") {
        out.push(Finding {
            pass: PASS_LINT_GATE.to_string(),
            file: "Cargo.toml".to_string(),
            line: 1,
            snippet: "[workspace]".to_string(),
            message: "workspace root does not declare [workspace.lints]".to_string(),
        });
    }

    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| AuditError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = dir.join("Cargo.toml");
        let rel_manifest = format!("crates/{name}/Cargo.toml");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let text = toml_without_comments(&text);
                let inherits = text.contains("lints.workspace = true")
                    || (text.contains("[lints]") && text.contains("workspace = true"));
                if !inherits {
                    out.push(Finding {
                        pass: PASS_LINT_GATE.to_string(),
                        file: rel_manifest.clone(),
                        line: 1,
                        snippet: format!("[package] name = \"{name}\""),
                        message: "member does not inherit workspace lints \
                                  (`lints.workspace = true`)"
                            .to_string(),
                    });
                }
            }
            Err(e) => return Err(AuditError::Io(manifest, e)),
        }
        // Crate root: lib.rs for libraries, main.rs for pure binaries.
        let crate_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| dir.join(p))
            .find(|p| p.is_file());
        if let Some(root_file) = crate_root {
            let text = crate::scan::sanitize(
                &std::fs::read_to_string(&root_file)
                    .map_err(|e| AuditError::Io(root_file.clone(), e))?,
            );
            if !text.contains("#![forbid(unsafe_code)]") {
                let rel = format!(
                    "crates/{name}/src/{}",
                    root_file
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                );
                out.push(Finding {
                    pass: PASS_LINT_GATE.to_string(),
                    file: rel,
                    line: 1,
                    snippet: String::new(),
                    message: "crate root does not declare #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
    }
    Ok(out)
}

/// TOML text with `#` comments removed (quote-unaware on purpose: no
/// manifest in this workspace puts `#` inside a string we care about).
fn toml_without_comments(text: &str) -> String {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("mem.rs"),
            format!("crates/{crate_name}/src/mem.rs"),
            crate_name.to_string(),
            src,
        )
    }

    #[test]
    fn unit_safety_flags_bare_f64_units() {
        let f = file(
            "geo",
            "pub fn rx(power_dbm: f64, name: &str) -> f64 { power_dbm }\n",
        );
        let found = unit_safety(&[f]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("power_dbm"));
    }

    #[test]
    fn unit_safety_anchors_multiline_signatures_at_the_param() {
        let f = file(
            "geo",
            "pub fn blend(\n    a: f64,\n    path_loss_db: f64,\n) -> f64 {\n    a\n}\n",
        );
        let found = unit_safety(&[f]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("path_loss_db"));
        assert_eq!(found[0].line, 3);
        assert_eq!(found[0].snippet, "path_loss_db: f64,");
    }

    #[test]
    fn unit_safety_ignores_newtyped_params_and_tests() {
        let f = file(
            "geo",
            "pub fn rx(power: Dbm) -> Dbm { power }\n#[cfg(test)]\nmod t {\n    pub fn bad(loss_db: f64) {}\n}\n",
        );
        assert!(unit_safety(&[f]).is_empty());
    }

    #[test]
    fn panic_freedom_skips_tests_comments_and_exempt_crates() {
        let lib = file(
            "geo",
            "pub fn f(x: Option<u8>) -> u8 {\n    // .unwrap() in prose is fine\n    x.unwrap()\n}\n#[cfg(test)]\nmod t {\n    fn g() { None::<u8>.unwrap(); }\n}\n",
        );
        let found = panic_freedom(&[lib]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        let cli = file("cli", "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(panic_freedom(&[cli]).is_empty());
    }

    #[test]
    fn panic_freedom_exempts_debug_assertions_blocks() {
        let f = file(
            "model",
            "fn check(ok: bool) {\n    #[cfg(debug_assertions)]\n    if !ok {\n        panic!(\"invariant\");\n    }\n}\nfn bad() { panic!(\"always\"); }\n",
        );
        let found = panic_freedom(&[f]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 7);
    }

    #[test]
    fn panic_freedom_ignores_literals_and_raw_strings() {
        let f = file(
            "geo",
            "pub fn f() -> &'static str {\n    r#\"call .unwrap() and panic!(\"#\n}\n",
        );
        assert!(panic_freedom(&[f]).is_empty());
    }

    #[test]
    fn cast_audit_flags_computed_narrowing_only() {
        let f = file(
            "propagation",
            "fn f(a: f64, i: u32, v: &[u8]) {\n    let x = (a * 2.0) as usize;\n    let y = i as usize;\n    let z = v[0] as usize;\n    let w = v.len() as u32;\n}\n",
        );
        let found = cast_audit(&[f]);
        // `(a * 2.0) as usize` and `v.len() as u32` are computed;
        // `i as usize` is a plain widening rebind; `v[0] as usize`
        // follows `]` and is flagged too.
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn cast_audit_exempts_clamp_guarded_narrowing() {
        let f = file(
            "geo",
            "fn f(v: f64, w: i64) {\n    let a = v.max(0.0).min(u32::MAX as f64) as u32;\n    let b = w.clamp(0, u32::MAX as i64) as u32;\n    let c = (v * 2.0) as u32;\n}\n",
        );
        let found = cast_audit(&[f]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn cast_audit_limited_to_numeric_crates() {
        let f = file("viz", "fn f(a: f64) { let x = (a * 2.0) as usize; }\n");
        assert!(cast_audit(&[f]).is_empty());
    }

    #[test]
    fn no_bare_print_flags_library_prints_once_each() {
        let f = file(
            "model",
            "pub fn f(x: u8) {\n    println!(\"{x}\");\n    eprintln!(\"{x}\");\n}\n",
        );
        let found = no_bare_print(&[f]);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].line, 3);
    }

    #[test]
    fn no_bare_print_skips_tests_comments_and_binaries() {
        let lib = file(
            "model",
            "pub fn f() {}\n// println!(\"in prose\") is fine\n#[cfg(test)]\nmod t {\n    fn g() { println!(\"dbg\"); }\n}\n",
        );
        assert!(no_bare_print(&[lib]).is_empty());
        let main = SourceFile::parse(
            PathBuf::from("main.rs"),
            "crates/cli/src/main.rs".to_string(),
            "cli".to_string(),
            "fn main() { println!(\"out\"); }\n",
        );
        assert!(no_bare_print(&[main]).is_empty());
        let bin = SourceFile::parse(
            PathBuf::from("t1.rs"),
            "crates/bench/src/bin/t1.rs".to_string(),
            "bench".to_string(),
            "fn main() { println!(\"out\"); }\n",
        );
        assert!(no_bare_print(&[bin]).is_empty());
    }

    #[test]
    fn nondet_iter_flags_hash_types_outside_tests_and_uses() {
        let f = file(
            "core",
            "use std::collections::HashMap;\npub struct P { m: HashMap<u32, u8> }\nimpl P {\n    pub fn new() -> P { P { m: HashMap::new() } }\n}\n#[cfg(test)]\nmod t {\n    fn g() { let s = std::collections::HashSet::<u8>::new(); let _ = s; }\n}\n",
        );
        let found = nondet_iter(&[f]);
        // The `use` and the test-module HashSet are exempt; the field
        // type and the constructor are findings.
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].line, 4);
    }

    #[test]
    fn nondet_iter_limited_to_deterministic_crates() {
        let f = file("obs", "pub struct R { m: HashMap<u32, u8> }\n");
        assert!(nondet_iter(&[f]).is_empty());
    }

    #[test]
    fn wall_clock_flags_instant_now_and_system_time() {
        let f = file(
            "exec",
            "use std::time::Instant;\nfn f() {\n    let t0 = Instant::now();\n    let epoch = std::time::SystemTime::UNIX_EPOCH;\n    let _ = (t0, epoch);\n}\n#[cfg(test)]\nmod t {\n    fn g() { let _ = std::time::Instant::now(); }\n}\n",
        );
        let found = wall_clock(&[f]);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 4);
    }

    #[test]
    fn float_order_flags_partial_cmp_calls_not_definitions() {
        let f = file(
            "testbed",
            "impl PartialOrd for E {\n    fn partial_cmp(&self, other: &E) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\nfn sortit(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        );
        let found = float_order(&[f]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 7);
    }

    #[test]
    fn float_order_flags_unordered_reductions_in_parallel_contexts() {
        let f = file(
            "exec",
            "fn par(xs: &[f64]) -> f64 {\n    let v = map_indexed(xs, |_, x| x.sum());\n    let serial: f64 = xs.iter().sum();\n    serial + v[0]\n}\n",
        );
        let found = float_order(&[f]);
        // `.sum()` inside the map_indexed argument list is flagged; the
        // serial `.sum()` outside any parallel entry is not.
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn lock_discipline_flags_second_lock_and_closure_after_lock() {
        let f = file(
            "propagation",
            "fn two_locks(a: &M, b: &M) {\n    let g1 = a.lock();\n    let g2 = b.lock();\n    drop((g1, g2));\n}\nfn with_cb(m: &M, cb: impl Fn(u8)) {\n    let g = m.lock();\n    cb(*g);\n}\nfn fine(m: &M) -> u8 {\n    *m.lock()\n}\n",
        );
        let found = lock_discipline(&[f]);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("two_locks"));
        assert_eq!(found[1].line, 8);
        assert!(found[1].message.contains("with_cb"));
    }

    #[test]
    fn lock_discipline_ignores_closure_calls_without_locks() {
        let f = file(
            "exec",
            "fn apply(cb: impl Fn(u8) -> u8, x: u8) -> u8 { cb(x) }\n",
        );
        assert!(lock_discipline(&[f]).is_empty());
    }

    #[test]
    fn env_nondet_flags_env_thread_and_parallelism_reads() {
        let f = file(
            "exec",
            "fn f() -> usize {\n    let v = std::env::var(\"MAGUS_THREADS\");\n    let t = std::thread::current();\n    let n = std::thread::available_parallelism();\n    let p = std::process::id();\n    let _ = (v, t, p);\n    n.map(|x| x.get()).unwrap_or(1)\n}\n",
        );
        let found = env_nondet(&[f]);
        assert_eq!(found.len(), 4, "{found:?}");
    }

    #[test]
    fn env_nondet_skips_tests_and_other_crates() {
        let test_only = file(
            "exec",
            "#[cfg(test)]\nmod t {\n    fn g() { let _ = std::env::var(\"X\"); }\n}\n",
        );
        assert!(env_nondet(&[test_only]).is_empty());
        let cli = file("cli", "fn f() { let _ = std::env::var(\"X\"); }\n");
        assert!(env_nondet(&[cli]).is_empty());
    }
}
