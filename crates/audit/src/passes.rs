//! The audit passes.

use crate::report::Finding;
use crate::scan::SourceFile;
use crate::{AuditError, BINARY_CRATES, CAST_AUDIT_CRATES, PANIC_EXEMPT_CRATES};
use std::path::Path;

/// Pass identifiers, as they appear in reports and the allowlist.
pub const PASS_UNIT_SAFETY: &str = "unit-safety";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_PANIC_FREEDOM: &str = "panic-freedom";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_CAST_AUDIT: &str = "cast-audit";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_LINT_GATE: &str = "lint-gate";
/// See [`PASS_UNIT_SAFETY`].
pub const PASS_NO_BARE_PRINT: &str = "no-bare-print";

fn finding(pass: &str, file: &SourceFile, line_no: usize, message: String) -> Finding {
    Finding {
        pass: pass.to_string(),
        file: file.rel.clone(),
        line: line_no + 1,
        snippet: file.lines[line_no].raw.trim().to_string(),
        message,
    }
}

// ---------------------------------------------------------------- unit-safety

/// Parameter names that claim a radio unit. A bare `f64` with such a
/// name should be one of the `magus_geo::units` newtypes instead.
fn unit_suspicious(name: &str) -> Option<&'static str> {
    let n = name.to_ascii_lowercase();
    if n.ends_with("_dbm") {
        Some("Dbm")
    } else if n.ends_with("_db") {
        Some("Db")
    } else if n.ends_with("_mw") {
        Some("MilliWatt")
    } else if n.contains("power") {
        Some("Dbm (or MilliWatt for linear sums)")
    } else if n.contains("loss") || n.contains("gain") {
        Some("Db")
    } else if n == "tilt_deg" || n.ends_with("tilt_deg") || n.starts_with("dist") {
        Some("a dedicated quantity type (or a documented raw-f64 unit)")
    } else {
        None
    }
}

/// Flags public `fn` parameters typed as bare `f64` whose names match
/// the unit patterns above. Signature text may span multiple lines.
pub fn unit_safety(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if BINARY_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let mut i = 0;
        while i < file.lines.len() {
            let line = &file.lines[i];
            if line.in_test || !is_pub_fn_line(&line.code) {
                i += 1;
                continue;
            }
            let (sig, consumed) = collect_signature(file, i);
            for (pname, ptype) in split_params(&sig) {
                if ptype == "f64" {
                    if let Some(suggest) = unit_suspicious(&pname) {
                        out.push(finding(
                            PASS_UNIT_SAFETY,
                            file,
                            i,
                            format!(
                                "public fn takes bare `f64` parameter `{pname}`; \
                                 use {suggest} from magus_geo::units"
                            ),
                        ));
                    }
                }
            }
            i += consumed.max(1);
        }
    }
    out
}

/// Whether a sanitized line opens a `pub … fn` item.
fn is_pub_fn_line(code: &str) -> bool {
    let t = code.trim_start();
    if !t.starts_with("pub ") && !t.starts_with("pub(") {
        return false;
    }
    // `pub fn`, `pub(crate) fn`, `pub const fn`, `pub unsafe fn`, …
    match t.find("fn ") {
        Some(pos) => t[..pos]
            .split_whitespace()
            .all(|w| w.starts_with("pub") || matches!(w, "const" | "unsafe" | "extern" | "async")),
        None => false,
    }
}

/// Joins lines from `start` until the parameter list's parentheses
/// balance. Returns the text between the outermost parens and the line
/// count consumed.
fn collect_signature(file: &SourceFile, start: usize) -> (String, usize) {
    let mut buf = String::new();
    let mut consumed = 0;
    for line in file.lines.iter().skip(start).take(24) {
        buf.push_str(&line.code);
        buf.push(' ');
        consumed += 1;
        if paren_balanced(&buf) {
            break;
        }
    }
    let open = match buf.find('(') {
        Some(p) => p,
        None => return (String::new(), consumed),
    };
    let mut depth = 0i32;
    for (off, ch) in buf[open..].char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return (buf[open + 1..open + off].to_string(), consumed);
                }
            }
            _ => {}
        }
    }
    (String::new(), consumed)
}

/// Whether the text after the first `(` has balanced parentheses.
fn paren_balanced(buf: &str) -> bool {
    let Some(open) = buf.find('(') else {
        return false;
    };
    let mut depth = 0i32;
    for ch in buf[open..].chars() {
        match ch {
            '(' => depth += 1,
            ')' => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Splits a parameter list at top-level commas into `(name, type)`
/// pairs, skipping `self` receivers and patterns without a simple name.
fn split_params(sig: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for part in split_top_level(sig) {
        let part = part.trim();
        let Some(colon) = find_top_level_colon(part) else {
            continue; // `self`, `&mut self`, …
        };
        let name = part[..colon]
            .trim()
            .trim_start_matches("mut ")
            .trim()
            .to_string();
        let ty = part[colon + 1..].trim().to_string();
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
            out.push((name, ty));
        }
    }
    out
}

/// Splits on commas not nested in `<>`, `()`, or `[]`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// First `:` at angle/paren depth 0 (skips `::` paths inside types).
fn find_top_level_colon(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

// -------------------------------------------------------------- panic-freedom

/// Tokens the panic-freedom pass hunts for in non-test library code.
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!("];

/// Flags `.unwrap()` / `.expect(` / `panic!(` outside test modules in
/// library crates. `debug_assert!`/`assert!` are deliberately allowed:
/// stated invariants are the point, silent `unwrap` panics are not.
pub fn panic_freedom(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (no, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for tok in PANIC_TOKENS {
                if line.code.contains(tok) {
                    out.push(finding(
                        PASS_PANIC_FREEDOM,
                        file,
                        no,
                        format!(
                            "`{tok}` in non-test library code; return a Result, \
                             use a total operation, or allowlist with a reason"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------------- cast-audit

/// Narrowing integer targets the cast pass watches.
const NARROW_TARGETS: &[&str] = &["usize", "u32", "i32"];

/// Flags `…) as usize` / `…] as u32` style casts — a computed value
/// narrowed without a range check — in the numeric crates.
pub fn cast_audit(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !CAST_AUDIT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (no, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for target in NARROW_TARGETS {
                let needle = format!(" as {target}");
                let mut search = 0;
                while let Some(pos) = line.code[search..].find(&needle) {
                    let abs = search + pos;
                    let end = abs + needle.len();
                    search = end;
                    // Must be a whole-token match (`as usize` not `as usized`).
                    if line.code[end..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        continue;
                    }
                    let before = line.code[..abs].trim_end();
                    if before.ends_with(')') || before.ends_with(']') {
                        out.push(finding(
                            PASS_CAST_AUDIT,
                            file,
                            no,
                            format!(
                                "computed expression narrowed with `as {target}`; \
                                 use a checked helper from magus_geo::cast"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

// -------------------------------------------------------------- no-bare-print

/// Macros that write straight to stdout/stderr.
const PRINT_TOKENS: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!("];

/// Flags direct stdout/stderr printing in non-test library code.
/// `main.rs` crate roots and `src/bin/` binaries are exempt: their
/// printed text is the program's interface. Everything else reports
/// through `magus-obs` (counters, trace events) or returns data for the
/// binary layer to render; the few legitimate library-side print sites
/// are allowlisted with a reason.
pub fn no_bare_print(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if file.rel.ends_with("/main.rs") || file.rel.contains("/src/bin/") {
            continue;
        }
        for (no, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for tok in PRINT_TOKENS {
                let mut search = 0;
                while let Some(pos) = line.code[search..].find(tok) {
                    let abs = search + pos;
                    search = abs + tok.len();
                    // Token boundary: `eprintln!(` embeds `println!(`,
                    // and `eprint!(` embeds `print!(` — only the
                    // longest match at each site may report.
                    if line.code[..abs]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        continue;
                    }
                    out.push(finding(
                        PASS_NO_BARE_PRINT,
                        file,
                        no,
                        format!(
                            "`{tok}…)` in non-main library code; emit a magus-obs \
                             metric/trace event or return the text to the binary layer"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ------------------------------------------------------------------ lint-gate

/// Verifies the workspace lint plumbing: `[workspace.lints]` at the
/// root, `lints.workspace = true` in every member, and
/// `#![forbid(unsafe_code)]` at every crate root.
pub fn lint_gate(root: &Path) -> Result<Vec<Finding>, AuditError> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let root_text = toml_without_comments(
        &std::fs::read_to_string(&root_manifest)
            .map_err(|e| AuditError::Io(root_manifest.clone(), e))?,
    );
    if !root_text.contains("[workspace.lints") {
        out.push(Finding {
            pass: PASS_LINT_GATE.to_string(),
            file: "Cargo.toml".to_string(),
            line: 1,
            snippet: "[workspace]".to_string(),
            message: "workspace root does not declare [workspace.lints]".to_string(),
        });
    }

    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| AuditError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = dir.join("Cargo.toml");
        let rel_manifest = format!("crates/{name}/Cargo.toml");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let text = toml_without_comments(&text);
                let inherits = text.contains("lints.workspace = true")
                    || (text.contains("[lints]") && text.contains("workspace = true"));
                if !inherits {
                    out.push(Finding {
                        pass: PASS_LINT_GATE.to_string(),
                        file: rel_manifest.clone(),
                        line: 1,
                        snippet: format!("[package] name = \"{name}\""),
                        message: "member does not inherit workspace lints \
                                  (`lints.workspace = true`)"
                            .to_string(),
                    });
                }
            }
            Err(e) => return Err(AuditError::Io(manifest, e)),
        }
        // Crate root: lib.rs for libraries, main.rs for pure binaries.
        let crate_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| dir.join(p))
            .find(|p| p.is_file());
        if let Some(root_file) = crate_root {
            let text = crate::scan::sanitize(
                &std::fs::read_to_string(&root_file)
                    .map_err(|e| AuditError::Io(root_file.clone(), e))?,
            );
            if !text.contains("#![forbid(unsafe_code)]") {
                let rel = format!(
                    "crates/{name}/src/{}",
                    root_file
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                );
                out.push(Finding {
                    pass: PASS_LINT_GATE.to_string(),
                    file: rel,
                    line: 1,
                    snippet: String::new(),
                    message: "crate root does not declare #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
    }
    Ok(out)
}

/// TOML text with `#` comments removed (quote-unaware on purpose: no
/// manifest in this workspace puts `#` inside a string we care about).
fn toml_without_comments(text: &str) -> String {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::scan(
            PathBuf::from("mem.rs"),
            format!("crates/{crate_name}/src/mem.rs"),
            crate_name.to_string(),
            src,
        )
    }

    #[test]
    fn unit_safety_flags_bare_f64_units() {
        let f = file(
            "geo",
            "pub fn rx(power_dbm: f64, name: &str) -> f64 { power_dbm }\n",
        );
        let found = unit_safety(&[f]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("power_dbm"));
    }

    #[test]
    fn unit_safety_handles_multiline_signatures() {
        let f = file(
            "geo",
            "pub fn blend(\n    a: f64,\n    path_loss_db: f64,\n) -> f64 {\n    a\n}\n",
        );
        let found = unit_safety(&[f]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("path_loss_db"));
    }

    #[test]
    fn unit_safety_ignores_newtyped_params_and_tests() {
        let f = file(
            "geo",
            "pub fn rx(power: Dbm) -> Dbm { power }\n#[cfg(test)]\nmod t {\n    pub fn bad(loss_db: f64) {}\n}\n",
        );
        assert!(unit_safety(&[f]).is_empty());
    }

    #[test]
    fn panic_freedom_skips_tests_comments_and_exempt_crates() {
        let lib = file(
            "geo",
            "pub fn f(x: Option<u8>) -> u8 {\n    // .unwrap() in prose is fine\n    x.unwrap()\n}\n#[cfg(test)]\nmod t {\n    fn g() { None::<u8>.unwrap(); }\n}\n",
        );
        let found = panic_freedom(&[lib]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        let cli = file("cli", "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(panic_freedom(&[cli]).is_empty());
    }

    #[test]
    fn cast_audit_flags_computed_narrowing_only() {
        let f = file(
            "propagation",
            "fn f(a: f64, i: u32, v: &[u8]) {\n    let x = (a * 2.0) as usize;\n    let y = i as usize;\n    let z = v[0] as usize;\n    let w = v.len() as u32;\n}\n",
        );
        let found = cast_audit(&[f]);
        // `(a * 2.0) as usize` and `v.len() as u32` are computed;
        // `i as usize` is a plain widening rebind; `v[0] as usize`
        // follows `]` and is flagged too.
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn cast_audit_limited_to_numeric_crates() {
        let f = file("viz", "fn f(a: f64) { let x = (a * 2.0) as usize; }\n");
        assert!(cast_audit(&[f]).is_empty());
    }

    #[test]
    fn no_bare_print_flags_library_prints_once_each() {
        let f = file(
            "model",
            "pub fn f(x: u8) {\n    println!(\"{x}\");\n    eprintln!(\"{x}\");\n}\n",
        );
        let found = no_bare_print(&[f]);
        // `eprintln!(` must not double-report via its embedded `println!(`.
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].line, 3);
    }

    #[test]
    fn no_bare_print_skips_tests_comments_and_binaries() {
        let lib = file(
            "model",
            "pub fn f() {}\n// println!(\"in prose\") is fine\n#[cfg(test)]\nmod t {\n    fn g() { println!(\"dbg\"); }\n}\n",
        );
        assert!(no_bare_print(&[lib]).is_empty());
        let main = SourceFile::scan(
            PathBuf::from("main.rs"),
            "crates/cli/src/main.rs".to_string(),
            "cli".to_string(),
            "fn main() { println!(\"out\"); }\n",
        );
        assert!(no_bare_print(&[main]).is_empty());
        let bin = SourceFile::scan(
            PathBuf::from("t1.rs"),
            "crates/bench/src/bin/t1.rs".to_string(),
            "bench".to_string(),
            "fn main() { println!(\"out\"); }\n",
        );
        assert!(no_bare_print(&[bin]).is_empty());
    }
}
