//! Token-level lexing of Rust source.
//!
//! [`lex`] turns source text into a flat token stream with 1-based
//! line/column positions. Comments (line, doc, nested block) are
//! dropped entirely, and string/char literal *contents* are dropped
//! from the token text, so a pass that searches for identifiers can
//! never match prose or literal data — the false-positive class the
//! old line scanner had to blank around. The output feeds the
//! token-tree layer in [`crate::tree`], which adds delimiter matching
//! and item context (`#[cfg(test)]`, fn boundaries, …).
//!
//! This is a lexer, not a parser: it is exact about literal and
//! comment boundaries (raw strings with arbitrary hash counts, byte
//! strings, char-vs-lifetime, nested block comments, numeric literals
//! vs `..` ranges) and deliberately knows nothing about grammar.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix
    /// in the text so `r#fn` never matches the `fn` keyword.
    Ident,
    /// A lifetime or loop label; text includes the quote (`'a`).
    Lifetime,
    /// A literal. String/char literals keep only their delimiters
    /// (`""`, `''`, `r""`, `b""`, `b''`); numeric literals keep their
    /// full text.
    Literal,
    /// A single punctuation character (delimiters included).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for literal conventions).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    /// Passes use adjacency (`col` arithmetic) to tell `->` from a
    /// stray `>`, so columns must be exact.
    pub col: u32,
}

/// Whether `c` can start an identifier.
pub fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Whether `c` can continue an identifier.
pub fn is_ident_char(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) {
        if let Some(&c) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    /// If position `at` (relative to `self.i`) starts a raw-string
    /// opener (`"` possibly preceded by hashes), returns the hash
    /// count. `None` means raw identifier or not a raw string.
    fn raw_str_hashes(&self, at: usize) -> Option<u32> {
        let mut k = at;
        let mut hashes = 0u32;
        while self.peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
        (self.peek(k) == Some('"')).then_some(hashes)
    }

    /// Consumes `// …` to end of line (newline left for whitespace).
    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a (possibly nested) `/* … */` block comment.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    self.bump_n(2);
                    depth -= 1;
                }
                (Some('/'), Some('*')) => {
                    self.bump_n(2);
                    depth += 1;
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` string body starting at the opening quote.
    fn string(&mut self, line: u32, col: u32, text: &str) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.bump_n(2),
                '"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Literal, text.to_string(), line, col);
    }

    /// Consumes `r"…"` / `r#"…"#` starting at the `r` (or at the first
    /// `#`/`"` when called for `br` strings with the `b` consumed).
    fn raw_string(&mut self, hashes: u32, line: u32, col: u32, text: &str) {
        self.bump(); // `r`
        self.bump_n(hashes as usize + 1); // hashes + opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes as usize).all(|k| self.peek(k) == Some('#')) {
                self.bump_n(1 + hashes as usize);
                break;
            }
            self.bump();
        }
        self.push(TokKind::Literal, text.to_string(), line, col);
    }

    /// Consumes a char literal starting at the opening quote.
    fn char_literal(&mut self, line: u32, col: u32, text: &str) {
        self.bump(); // opening quote
        if self.peek(0) == Some('\\') {
            // Escape: `\n`, `\'`, `\u{7fff}` — skip the backslash and
            // the escaped char, then scan (bounded) to the close.
            self.bump_n(2);
            let mut guard = 0;
            while self.peek(0).is_some_and(|c| c != '\'') && guard < 12 {
                self.bump();
                guard += 1;
            }
            self.bump(); // closing quote
        } else {
            self.bump_n(2); // the char and the closing quote
        }
        self.push(TokKind::Literal, text.to_string(), line, col);
    }

    /// Consumes an identifier (or keyword) starting at `prefix`.
    fn ident(&mut self, prefix: String, line: u32, col: u32) {
        let mut text = prefix;
        while let Some(c) = self.peek(0) {
            if !is_ident_char(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line, col);
    }

    /// Consumes a numeric literal starting at a digit. `1..2` stays a
    /// number and two dots; `1.5e-3`, `0x1F`, `2.5_f64` are single
    /// tokens.
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            let prev = text.chars().next_back();
            let is_hex = text.starts_with("0x") || text.starts_with("0X");
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-') && !is_hex && matches!(prev, Some('e') | Some('E')) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line, col);
    }
}

/// Lexes `text` into tokens. Never fails: malformed input degrades to
/// punct tokens rather than aborting the audit.
pub fn lex(text: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    };
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        match c {
            c if c.is_whitespace() => lx.bump(),
            '/' if lx.peek(1) == Some('/') => lx.line_comment(),
            '/' if lx.peek(1) == Some('*') => lx.block_comment(),
            '"' => lx.string(line, col, "\"\""),
            'r' if lx.raw_str_hashes(1).is_some() => {
                let hashes = lx.raw_str_hashes(1).unwrap_or(0);
                lx.raw_string(hashes, line, col, "r\"\"");
            }
            'r' if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) => {
                lx.bump_n(2);
                lx.ident("r#".to_string(), line, col);
            }
            'b' if lx.peek(1) == Some('"') => {
                lx.bump();
                lx.string(line, col, "b\"\"");
            }
            'b' if lx.peek(1) == Some('\'') => {
                lx.bump();
                lx.char_literal(line, col, "b''");
            }
            'b' if lx.peek(1) == Some('r') && lx.raw_str_hashes(2).is_some() => {
                let hashes = lx.raw_str_hashes(2).unwrap_or(0);
                lx.bump();
                lx.raw_string(hashes, line, col, "b\"\"");
            }
            '\'' => {
                // Char literal vs lifetime: escapes (`'\n'`) and
                // quote-at-distance-2 (`'x'`) are literals; an
                // ident-start char with no closing quote is a lifetime.
                if lx.peek(1) == Some('\\') {
                    lx.char_literal(line, col, "''");
                } else if lx.peek(2) == Some('\'') && lx.peek(1) != Some('\'') {
                    lx.char_literal(line, col, "''");
                } else if lx.peek(1).is_some_and(is_ident_start) {
                    lx.bump();
                    let mut text = String::from("'");
                    while let Some(c) = lx.peek(0) {
                        if !is_ident_char(c) {
                            break;
                        }
                        text.push(c);
                        lx.bump();
                    }
                    lx.push(TokKind::Lifetime, text, line, col);
                } else {
                    lx.bump();
                    lx.push(TokKind::Punct, "'".to_string(), line, col);
                }
            }
            c if is_ident_start(c) => {
                lx.ident(String::new(), line, col);
            }
            c if c.is_ascii_digit() => lx.number(line, col),
            c => {
                lx.bump();
                lx.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
    }
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        let src = r####"let s = r##"has .unwrap() and "quotes" inside"##; x.unwrap();"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "x", "unwrap"]);
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "r\"\""));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            toks.iter().filter(|t| t.text == "''").count(),
            1,
            "{toks:?}"
        );
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["let c = '\\n';", "let c = '\\'';", "let c = '\\u{7fff}';"] {
            let toks = lex(src);
            assert!(
                toks.iter()
                    .any(|t| t.kind == TokKind::Literal && t.text == "''"),
                "{src}: {toks:?}"
            );
            assert_eq!(*toks.last().map(|t| &t.text).expect("tokens"), ";");
        }
    }

    #[test]
    fn doc_comments_containing_code_are_dropped() {
        let src = "/// let y = x.unwrap();\n//! panic!(\"no\");\n/** .expect(0) */\nfn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn numbers_vs_ranges() {
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
        assert_eq!(texts("1.5e-3"), vec!["1.5e-3"]);
        assert_eq!(texts("0x1F_u32"), vec!["0x1F_u32"]);
        assert_eq!(texts("2.5_f64"), vec!["2.5_f64"]);
        // Hex digits must not eat a real minus: `0x1E-3` is a subtraction.
        assert_eq!(texts("0x1E-3"), vec!["0x1E", "-", "3"]);
        // Tuple field access keeps the dot as punct.
        assert_eq!(texts("x.0"), vec!["x", ".", "0"]);
    }

    #[test]
    fn raw_identifiers_do_not_match_keywords() {
        let toks = lex("let r#fn = 1; fn g() {}");
        let ids: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["let", "r#fn", "fn", "g"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!(\"; let b = b'x'; let c = br#\".unwrap()\"#;";
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn lines_and_columns_are_exact() {
        let toks = lex("ab\n  -> x");
        let arrow_minus = toks.iter().find(|t| t.text == "-").expect("minus");
        let arrow_gt = toks.iter().find(|t| t.text == ">").expect("gt");
        assert_eq!((arrow_minus.line, arrow_minus.col), (2, 3));
        assert_eq!((arrow_gt.line, arrow_gt.col), (2, 4));
        let x = toks.iter().find(|t| t.text == "x").expect("x");
        assert_eq!((x.line, x.col), (2, 6));
    }

    #[test]
    fn strings_with_escapes_terminate_correctly() {
        let src = r#"let s = "a\"b.unwrap()\\"; t.expect(1);"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "t", "expect"]);
    }

    #[test]
    fn shift_right_is_two_puncts() {
        // `Vec<Vec<u8>>` must lex `>>` as two `>` so the tree layer
        // can close nested generics without special cases.
        assert_eq!(
            texts("Vec<Vec<u8>>"),
            vec!["Vec", "<", "Vec", "<", "u8", ">", ">"]
        );
    }
}
