//! The explicit allowlist.
//!
//! Format: one rule per line, four `|`-separated fields:
//!
//! ```text
//! <pass> | <file suffix> | <needle> | <reason>
//! ```
//!
//! A finding is suppressed when a rule's pass matches exactly, the
//! rule's file is a suffix of the finding's path, and the needle occurs
//! in the finding's source line (`*` matches any line). The reason is
//! mandatory — an allowlist entry without a justification is itself an
//! audit failure. `#` starts a comment.

use crate::report::Finding;
use crate::AuditError;
use std::cell::Cell;
use std::path::Path;

/// One parsed allowlist rule.
#[derive(Debug, Clone)]
pub struct AllowRule {
    /// Pass id the rule applies to.
    pub pass: String,
    /// Path suffix the rule applies to (forward slashes).
    pub file: String,
    /// Substring that must occur in the offending line (`*` = any).
    pub needle: String,
    /// Human justification; mandatory.
    pub reason: String,
    /// Source line in the allowlist file (for diagnostics).
    pub source_line: usize,
    hits: Cell<usize>,
}

impl AllowRule {
    /// Whether this rule suppresses `f`.
    fn matches(&self, f: &Finding) -> bool {
        self.pass == f.pass
            && f.file.ends_with(&self.file)
            && (self.needle == "*" || f.snippet.contains(&self.needle))
    }
}

/// A parsed allowlist file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// The rules, in file order.
    pub rules: Vec<AllowRule>,
}

impl Allowlist {
    /// An empty allowlist (suppresses nothing).
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parses the allowlist text. Malformed lines are hard errors: a
    /// silently ignored rule would un-suppress findings on a typo.
    pub fn parse(text: &str) -> Result<Allowlist, AuditError> {
        let mut rules = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(AuditError::BadAllowRule(
                    no + 1,
                    "expected `pass | file | needle | reason`".to_string(),
                ));
            }
            if parts[3].is_empty() {
                return Err(AuditError::BadAllowRule(
                    no + 1,
                    "reason string is mandatory".to_string(),
                ));
            }
            rules.push(AllowRule {
                pass: parts[0].to_string(),
                file: parts[1].to_string(),
                needle: parts[2].to_string(),
                reason: parts[3].to_string(),
                source_line: no + 1,
                hits: Cell::new(0),
            });
        }
        Ok(Allowlist { rules })
    }

    /// Loads `path`; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, AuditError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::empty()),
            Err(e) => Err(AuditError::Io(path.to_path_buf(), e)),
        }
    }

    /// Returns the matching rule's reason, and counts the hit.
    pub fn suppression(&self, f: &Finding) -> Option<&AllowRule> {
        let rule = self.rules.iter().find(|r| r.matches(f))?;
        rule.hits.set(rule.hits.get() + 1);
        Some(rule)
    }

    /// Rules that suppressed nothing — stale entries worth pruning.
    pub fn unused(&self) -> Vec<&AllowRule> {
        self.rules.iter().filter(|r| r.hits.get() == 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            pass: "panic-freedom".into(),
            file: "crates/core/src/gradual.rs".into(),
            line: 226,
            snippet: "let (ch, u) = best.expect(\"non-empty remaining set\");".into(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\npanic-freedom | core/src/gradual.rs | best.expect | loop ran at least once\n",
        )
        .expect("parses");
        assert_eq!(a.rules.len(), 1);
        assert!(a.suppression(&finding()).is_some());
        assert!(a.unused().is_empty());
    }

    #[test]
    fn wrong_pass_or_file_does_not_match() {
        let a =
            Allowlist::parse("cast-audit | gradual.rs | * | x\npanic-freedom | other.rs | * | x\n")
                .expect("parses");
        assert!(a.suppression(&finding()).is_none());
        assert_eq!(a.unused().len(), 2);
    }

    #[test]
    fn missing_reason_is_an_error() {
        assert!(Allowlist::parse("panic-freedom | a.rs | * |\n").is_err());
        assert!(Allowlist::parse("panic-freedom | a.rs | *\n").is_err());
    }
}
