//! Self-serve pass documentation for `magus-audit check --explain`.
//!
//! Builders adding code on top of the deterministic core (ROADMAP
//! items 2–4) hit these passes first; the explanations state each
//! pass's rule, why it exists, and the allowlist syntax so a
//! justified suppression is written instead of a blind one.

use crate::passes::ALL_PASSES;

/// Returns the explanation text for `pass`, or `None` if unknown.
/// `"all"` returns every pass's text.
pub fn explain(pass: &str) -> Option<String> {
    if pass == "all" {
        let mut s = String::new();
        for (i, p) in ALL_PASSES.iter().enumerate() {
            if i > 0 {
                s.push('\n');
            }
            s.push_str(&explain_one(p)?);
        }
        return Some(s);
    }
    explain_one(pass)
}

fn explain_one(pass: &str) -> Option<String> {
    let (rule, rationale, allow) = match pass {
        "unit-safety" => (
            "Public library fns must not take bare `f64` parameters whose \
             names claim a radio unit (*_db, *_dbm, *_mw, power, loss, gain, \
             tilt_deg, dist*).",
            "A bare f64 lets dB and mW (log and linear) mix silently; the \
             magus_geo::units newtypes (Db, Dbm, MilliWatt) make the unit \
             part of the type.",
            "unit-safety | <file suffix> | <param text> | <why no newtype applies yet>",
        ),
        "panic-freedom" => (
            "No `.unwrap()` / `.expect(` / `panic!(` in non-test library \
             code. `#[cfg(test)]`, `#[test]`, and `#[cfg(debug_assertions)]` \
             code is exempt, as are the bench/cli/audit binaries.",
            "Library code returns Results; a panic in the planner or \
             evaluator aborts a whole migration run. Debug-only invariant \
             traps are fine — release builds use the Result-returning \
             validators.",
            "panic-freedom | <file suffix> | <snippet text> | <why the value provably exists>",
        ),
        "cast-audit" => (
            "In the numeric crates (geo, propagation, model, lte), computed \
             expressions must not be narrowed with bare `as usize/u32/i32`; \
             use the checked helpers in magus_geo::cast. Casts visibly \
             range-guarded by `.clamp(…)`/`.min(…)` are exempt.",
            "A silent wrap corrupts grid indices or path-loss math without \
             an error; the checked helpers debug_assert the range and clamp.",
            "cast-audit | <file suffix> | <snippet text> | <why the range is externally guaranteed>",
        ),
        "lint-gate" => (
            "The workspace root declares [workspace.lints], every member \
             inherits it (lints.workspace = true), and every crate root \
             carries #![forbid(unsafe_code)].",
            "One crate opting out of the lint wall silently weakens the \
             whole workspace's unsafe/unwrap policy.",
            "lint-gate | <manifest or crate-root path> | * | <why the crate is exempt>",
        ),
        "no-bare-print" => (
            "No println!/eprintln!/print!/eprint! in non-test library code \
             outside main.rs and src/bin/.",
            "Library prints interleave nondeterministically with real \
             output and bypass magus-obs; binaries own the terminal.",
            "no-bare-print | <file suffix> | <snippet or *> | <why the print is the interface>",
        ),
        "nondet-iter" => (
            "No HashMap/HashSet (or RandomState/DefaultHasher) in the \
             deterministic crates (core, exec, fault, lte, model, \
             propagation, testbed) or the byte-identity-gated cli; use \
             BTreeMap/BTreeSet or sorted iteration.",
            "Hash iteration order is seed-dependent per process. One \
             iterated HashMap in a result path breaks the bit-identity \
             contract (thread-count invariance, zero-rate fault identity, \
             checkpoint resume) that chaos_matrix and the CLI cmp gate \
             enforce dynamically.",
            "nondet-iter | <file suffix> | <snippet text> | <order-insensitivity argument: keyed access only, aggregates only, …>",
        ),
        "wall-clock" => (
            "No Instant::now() or SystemTime in the deterministic crates; \
             timing for reports lives in obs/bench/CLI code, simulation \
             time is explicit ticks.",
            "Wall-clock values differ per run; one flowing into a result, \
             a retry budget, or an ordering decision silently breaks \
             replayability.",
            "wall-clock | <file suffix> | <snippet text> | <proof the reading only feeds obs metrics>",
        ),
        "float-order" => (
            "No `.partial_cmp(` call sites in the deterministic crates or \
             bench (use f64::total_cmp for sort/max keys), and no unordered \
             `.sum(`/`.fold(` inside magus-exec parallel entry points \
             (map_indexed, with_team, map_markets_parallel) — use an \
             index-ordered reduction or argmax_det.",
            "partial_cmp returns None on NaN (panicking unwraps, unstable \
             orders); float addition is non-associative, so accumulation \
             order across workers must be fixed to keep results \
             bit-identical at any thread count. `fn partial_cmp` \
             *definitions* that delegate to cmp are fine and not flagged.",
            "float-order | <file suffix> | <snippet text> | <why the order is provably fixed>",
        ),
        "lock-discipline" => (
            "At most one lexical `.lock(` acquisition per fn body in the \
             deterministic crates, and no calls of a closure-typed \
             parameter after a `.lock(` in the same body.",
            "The path-loss store's sharded cache is deadlock-free only if \
             multi-shard holds take shards in ascending shard_index order, \
             which one fn body cannot prove lexically; and a guard held \
             across user code invites re-entrancy deadlocks and \
             lock-order inversion. Both rules are deliberate \
             over-approximations — the allowlist carries the ordering/\
             no-guard-held argument, and the nightly `cargo miri test` CI \
             job is the dynamic complement.",
            "lock-discipline | <file suffix> | <snippet text> | <ordering or guard-dropped argument>",
        ),
        "env-nondet" => (
            "No std::env reads, thread::current, available_parallelism, or \
             process::id in the deterministic crates.",
            "Environment, thread identity, and machine shape vary per run \
             and per host; results must not. Config enters at the CLI \
             boundary as explicit values; thread count may only size \
             order-fixed work splitting (argued in the allowlist).",
            "env-nondet | <file suffix> | <snippet text> | <proof the value cannot affect results>",
        ),
        _ => return None,
    };
    Some(format!(
        "pass: {pass}\n  rule: {rule}\n  rationale: {rationale}\n  allowlist: {allow}\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pass_has_an_explanation() {
        for pass in ALL_PASSES {
            let text = explain(pass).unwrap_or_else(|| panic!("{pass} unexplained"));
            assert!(text.contains(pass));
            assert!(text.contains("allowlist:"));
        }
    }

    #[test]
    fn all_concatenates_and_unknown_is_none() {
        let all = explain("all").expect("all");
        for pass in ALL_PASSES {
            assert!(all.contains(&format!("pass: {pass}")));
        }
        assert!(explain("no-such-pass").is_none());
    }
}
