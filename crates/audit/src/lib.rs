//! Static-analysis gate for the Magus workspace.
//!
//! `cargo run -p magus-audit -- check` parses every
//! `crates/*/src/**.rs` with a std-only token-tree engine
//! ([`lex`] + [`tree`]: raw-string/char/comment-correct lexing,
//! balanced-delimiter matching, `#[cfg(test)]`/`#[test]`/
//! `#[cfg(debug_assertions)]`/`use` context, fn-boundary detection)
//! and enforces ten passes.
//!
//! Code-hygiene passes:
//!
//! * **unit-safety** — public `fn` signatures in library crates must not
//!   take bare `f64` parameters whose names claim a radio unit
//!   (`*_db`, `*_dbm`, `power`, `loss`, `gain`, `tilt_deg`, `dist*`);
//!   the `magus_geo::units` newtypes exist for exactly that.
//! * **panic-freedom** — no `.unwrap()` / `.expect(` / `panic!(` in
//!   non-test, non-debug-only library code (the `bench`, `cli`, and
//!   `audit` binaries are exempt).
//! * **cast-audit** — narrowing `as usize` / `as u32` / `as i32` casts
//!   on *computed* expressions in the numeric crates (`geo`,
//!   `propagation`, `model`, `lte`) must go through the checked
//!   helpers in `magus_geo::cast` (visible `.clamp(…)`/`.min(…)`
//!   guards are recognized).
//! * **lint-gate** — the workspace root must declare
//!   `[workspace.lints]`, every member must inherit it with
//!   `lints.workspace = true`, and every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! * **no-bare-print** — no `println!`/`eprintln!` (or `print!`/
//!   `eprint!`) in non-test library code outside `main.rs` and
//!   `src/bin/`.
//!
//! Determinism & concurrency passes — the static half of the
//! reproduction contract (bit-identical results at any thread count,
//! under zero-rate fault plans, and across checkpoint resume; the
//! chaos_matrix and CLI byte-identity gates are the dynamic half):
//!
//! * **nondet-iter** — no `HashMap`/`HashSet` in deterministic crates
//!   unless provably order-insensitive (allowlisted with the argument).
//! * **wall-clock** — no `Instant::now()`/`SystemTime` outside
//!   obs/bench/CLI timing code.
//! * **float-order** — no `.partial_cmp(` call sites (use
//!   `total_cmp`), no unordered float `.sum(`/`.fold(` inside
//!   `magus-exec` parallel entry points.
//! * **lock-discipline** — no multi-lock fn bodies without an argued
//!   shard ordering, no user-closure calls after a lock acquisition.
//! * **env-nondet** — no `std::env`/thread-identity/machine-shape
//!   reads in deterministic computation.
//!
//! Findings are suppressed only through the explicit allowlist file
//! (`audit.allowlist` at the audited root) where every rule carries a
//! human reason string. The run emits a machine-readable JSON report
//! and exits non-zero when any finding is left unsuppressed.
//! `check --explain <pass>` prints each pass's rule, rationale, and
//! allowlist syntax.
//!
//! The crate is deliberately std-only so the gate keeps working while
//! the rest of the workspace is mid-refactor.

#![forbid(unsafe_code)]

pub mod allow;
pub mod explain;
pub mod lex;
pub mod passes;
pub mod report;
pub mod scan;
pub mod tree;

use std::path::{Path, PathBuf};

pub use allow::Allowlist;
pub use report::{AuditReport, Finding, PassStats};
pub use tree::SourceFile;

/// Everything that can go wrong while auditing (I/O, bad allowlist).
#[derive(Debug)]
pub enum AuditError {
    /// Reading a file or walking a directory failed.
    Io(PathBuf, std::io::Error),
    /// The allowlist file is malformed (line number, explanation).
    BadAllowRule(usize, String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            AuditError::BadAllowRule(n, why) => {
                write!(f, "allowlist line {n}: {why}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Crates whose code is allowed to panic: binaries and harnesses where
/// aborting with a message *is* the error-reporting strategy.
pub const PANIC_EXEMPT_CRATES: &[&str] = &["bench", "cli", "audit"];

/// Crates audited for narrowing casts: the numeric core where a silent
/// wrap corrupts grid indices or path-loss math.
pub const CAST_AUDIT_CRATES: &[&str] = &["geo", "propagation", "model", "lte"];

/// Binary-only crates: `unit-safety` skips them (no public library API).
pub const BINARY_CRATES: &[&str] = &["cli", "audit"];

/// Crates whose results must be bit-identical across thread counts,
/// fault plans, and checkpoint resume. The `wall-clock`,
/// `lock-discipline`, and `env-nondet` passes audit exactly these;
/// `obs`/`bench`/`cli`/`net`/`geo` sit at the boundary (timing,
/// harnesses, I/O) and are exempt.
pub const WALL_CLOCK_CRATES: &[&str] = &[
    "core",
    "exec",
    "fault",
    "lte",
    "model",
    "propagation",
    "testbed",
];

/// `nondet-iter` additionally audits `cli`: its stdout is
/// byte-identity gated in ci.sh, so hash-ordered iteration there
/// breaks the gate just as surely.
pub const NONDET_ITER_CRATES: &[&str] = &[
    "cli",
    "core",
    "exec",
    "fault",
    "lte",
    "model",
    "propagation",
    "testbed",
];

/// `float-order` additionally audits `bench`: its artifact JSON feeds
/// the perf gates and paper-shape comparisons, so float sort/reduce
/// order matters there too.
pub const FLOAT_ORDER_CRATES: &[&str] = &[
    "bench",
    "core",
    "exec",
    "fault",
    "lte",
    "model",
    "propagation",
    "testbed",
];

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries = std::fs::read_dir(dir).map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Loads and scans every `crates/*/src/**.rs` under `root`.
pub fn load_workspace_sources(root: &Path) -> Result<Vec<SourceFile>, AuditError> {
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| AuditError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(crates_dir.clone(), e))?;
        let p = entry.path();
        if p.is_dir() {
            crate_dirs.push(p);
        }
    }
    crate_dirs.sort();

    let mut sources = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let text =
                std::fs::read_to_string(&path).map_err(|e| AuditError::Io(path.clone(), e))?;
            let rel = relative_display(root, &path);
            sources.push(SourceFile::parse(path, rel, crate_name.clone(), &text));
        }
    }
    Ok(sources)
}

/// `path` relative to `root`, with forward slashes, for stable reports.
fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every pass over `root` and folds the allowlist in.
pub fn run_audit(root: &Path, allow: &Allowlist) -> Result<AuditReport, AuditError> {
    let sources = load_workspace_sources(root)?;
    let mut findings = Vec::new();
    findings.extend(passes::unit_safety(&sources));
    findings.extend(passes::panic_freedom(&sources));
    findings.extend(passes::cast_audit(&sources));
    findings.extend(passes::lint_gate(root)?);
    findings.extend(passes::no_bare_print(&sources));
    findings.extend(passes::nondet_iter(&sources));
    findings.extend(passes::wall_clock(&sources));
    findings.extend(passes::float_order(&sources));
    findings.extend(passes::lock_discipline(&sources));
    findings.extend(passes::env_nondet(&sources));
    Ok(report::build_report(root, findings, allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_display_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/geo/src/lib.rs");
        assert_eq!(relative_display(root, p), "crates/geo/src/lib.rs");
    }
}
