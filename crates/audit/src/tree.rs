//! Balanced token trees and source context on top of [`crate::lex`].
//!
//! Three layers, all std-only:
//!
//! 1. **Delimiter matching** — `()`/`[]`/`{}` are paired into groups
//!    (proc-macro style: `<`/`>` stay plain puncts, so `>>` closing
//!    nested generics needs no disambiguation).
//! 2. **Context flags** — every token knows whether it lives inside
//!    `#[cfg(test)]`/`#[test]` code, `#[cfg(debug_assertions)]` code,
//!    or a `use …;` item. Attributes scope to the next brace group or
//!    `;` at the same nesting level, which handles modules, fns, and
//!    statement-level attributes alike. `cfg(not(test))` and
//!    `cfg_attr` deliberately do *not* mark.
//! 3. **Fn boundaries** — [`FnInfo`] records each `fn`'s name,
//!    visibility, parameter and body token ranges, and which
//!    parameters are closures (`impl Fn*`, `dyn Fn*`, or generics
//!    bound by `Fn*` in the generic list or a `where` clause) — the
//!    raw material for the lock-discipline and unit-safety passes.

use crate::lex::{lex, TokKind};
use std::path::PathBuf;

/// Delimiter kinds that form token-tree groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Shape of a context token: lexical kind plus delimiter role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Identifier or keyword.
    Ident,
    /// Lifetime / loop label.
    Lifetime,
    /// Literal (see [`crate::lex::TokKind::Literal`] conventions).
    Literal,
    /// Non-delimiter punctuation.
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// Sentinel for "no matching delimiter" (unbalanced source).
pub const NO_MATE: usize = usize::MAX;

/// One token with tree and context information attached.
#[derive(Debug, Clone)]
pub struct CtxTok {
    /// Lexical/structural shape.
    pub shape: Shape,
    /// Token text (idents/puncts verbatim; literal conventions as in
    /// [`crate::lex`]).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Index of the matching delimiter token ([`NO_MATE`] otherwise).
    pub mate: usize,
    /// Inside `#[cfg(test)]` / `#[test]`-marked code.
    pub in_test: bool,
    /// Inside `#[cfg(debug_assertions)]`-marked code.
    pub debug_only: bool,
    /// Inside a `use …;` item (import syntax, not code).
    pub in_use: bool,
}

/// Context inherited while walking a token range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    test: bool,
    debug: bool,
    in_use: bool,
}

impl Flags {
    fn or(self, other: Flags) -> Flags {
        Flags {
            test: self.test || other.test,
            debug: self.debug || other.debug,
            in_use: self.in_use || other.in_use,
        }
    }
}

/// Lexes `text` and builds the matched, context-flagged token stream.
pub fn build(text: &str) -> Vec<CtxTok> {
    let mut toks: Vec<CtxTok> = lex(text)
        .into_iter()
        .map(|t| {
            let shape = match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(") => Shape::Open(Delim::Paren),
                (TokKind::Punct, ")") => Shape::Close(Delim::Paren),
                (TokKind::Punct, "[") => Shape::Open(Delim::Bracket),
                (TokKind::Punct, "]") => Shape::Close(Delim::Bracket),
                (TokKind::Punct, "{") => Shape::Open(Delim::Brace),
                (TokKind::Punct, "}") => Shape::Close(Delim::Brace),
                (TokKind::Punct, _) => Shape::Punct,
                (TokKind::Ident, _) => Shape::Ident,
                (TokKind::Lifetime, _) => Shape::Lifetime,
                (TokKind::Literal, _) => Shape::Literal,
            };
            CtxTok {
                shape,
                text: t.text,
                line: t.line,
                col: t.col,
                mate: NO_MATE,
                in_test: false,
                debug_only: false,
                in_use: false,
            }
        })
        .collect();

    let mut stack: Vec<usize> = Vec::new();
    for i in 0..toks.len() {
        match toks[i].shape {
            Shape::Open(_) => stack.push(i),
            Shape::Close(_) => {
                if let Some(j) = stack.pop() {
                    toks[i].mate = j;
                    toks[j].mate = i;
                }
            }
            _ => {}
        }
    }

    let len = toks.len();
    mark(&mut toks, 0, len, Flags::default());
    toks
}

/// Applies `flags` to token `i` (flags only accumulate, never clear).
fn apply(toks: &mut [CtxTok], i: usize, flags: Flags) {
    toks[i].in_test |= flags.test;
    toks[i].debug_only |= flags.debug;
    toks[i].in_use |= flags.in_use;
}

/// Walks `[start, end)` at one nesting level, propagating inherited
/// context, interpreting attributes, and recursing into groups.
fn mark(toks: &mut Vec<CtxTok>, start: usize, end: usize, mut ctx: Flags) {
    // Flags from outer attributes (`#[cfg(test)]`) waiting for the item
    // they decorate; consumed by the item's brace group or its `;`.
    let mut pending = Flags::default();
    let mut i = start;
    while i < end {
        let eff = ctx.or(pending);
        apply(toks, i, eff);
        match toks[i].shape {
            Shape::Punct if toks[i].text == "#" => {
                let inner = toks.get(i + 1).is_some_and(|t| t.text == "!");
                let open = if inner { i + 2 } else { i + 1 };
                let is_attr = open < end
                    && matches!(toks[open].shape, Shape::Open(Delim::Bracket))
                    && toks[open].mate != NO_MATE
                    && toks[open].mate < end;
                if is_attr {
                    let close = toks[open].mate;
                    let marks = attr_flags(toks, open + 1, close);
                    for k in i..=close {
                        apply(toks, k, eff);
                    }
                    if inner {
                        // `#![cfg(test)]` scopes to the whole enclosing
                        // range, not the next item.
                        ctx = ctx.or(marks);
                    } else {
                        pending = pending.or(marks);
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            Shape::Ident if toks[i].text == "use" && !eff.in_use => {
                pending.in_use = true;
                i += 1;
            }
            Shape::Open(d) => {
                let close = toks[i].mate;
                if close == NO_MATE || close >= end {
                    // Unbalanced source: degrade to a linear walk.
                    i += 1;
                    continue;
                }
                apply(toks, close, eff);
                mark(toks, i + 1, close, eff);
                if d == Delim::Brace {
                    // The brace group is the attributed item's body:
                    // `#[cfg(test)] mod t { … }` ends the attr's scope.
                    pending.test = false;
                    pending.debug = false;
                }
                i = close + 1;
            }
            Shape::Punct if toks[i].text == ";" => {
                // `;` terminates the attributed item / `use` item.
                pending = Flags::default();
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Interprets an attribute body (`cfg(test)`, `test`, `tokio::test`,
/// `cfg(debug_assertions)`, …) into context flags.
fn attr_flags(toks: &[CtxTok], start: usize, end: usize) -> Flags {
    // Leading path: idents joined by `::`.
    let mut segs: Vec<&str> = Vec::new();
    let mut i = start;
    while i < end && toks[i].shape == Shape::Ident {
        segs.push(toks[i].text.as_str());
        if i + 2 < end && toks[i + 1].text == ":" && toks[i + 2].text == ":" {
            i += 3;
        } else {
            i += 1;
            break;
        }
    }
    let mut out = Flags::default();
    match segs.last().copied() {
        // `#[test]`, `#[tokio::test]`, … — a test fn.
        Some("test") => out.test = true,
        Some("cfg") if segs.len() == 1 => {
            // `#[cfg(…)]`: scan the predicate. `not(…)` anywhere makes
            // the conservative call: the code is NOT known test/debug
            // only (`cfg(not(test))` is production code).
            let mut has_test = false;
            let mut has_debug = false;
            let mut has_not = false;
            for t in &toks[i..end] {
                if t.shape == Shape::Ident {
                    match t.text.as_str() {
                        "test" => has_test = true,
                        "debug_assertions" => has_debug = true,
                        "not" => has_not = true,
                        _ => {}
                    }
                }
            }
            if !has_not {
                out.test = has_test;
                out.debug = has_debug;
            }
        }
        // `cfg_attr(test, …)` gates an *attribute*, not the code.
        _ => {}
    }
    out
}

/// One `fn` item's boundaries and parameter facts.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The fn's name.
    pub name: String,
    /// Declared `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the parameter list's `(` and `)`.
    pub params: (usize, usize),
    /// Token indices of the body's `{` and `}` (`None` for trait
    /// method declarations).
    pub body: Option<(usize, usize)>,
    /// Names of parameters whose type is a closure (`impl Fn*`,
    /// `dyn Fn*`, or a generic bound by `Fn*`).
    pub closure_params: Vec<String>,
    /// The `fn` keyword's test flag.
    pub in_test: bool,
    /// The `fn` keyword's debug-only flag.
    pub debug_only: bool,
}

/// Finds every `fn` item in the token stream.
pub fn functions(toks: &[CtxTok]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].shape == Shape::Ident && toks[i].text == "fn" && !toks[i].in_use {
            if let Some(info) = parse_fn(toks, i) {
                out.push(info);
            }
        }
        i += 1;
    }
    out
}

/// Names bound by `Fn`/`FnMut`/`FnOnce` in a bounds region (a generic
/// list or `where` clause): linear scan for `Name :` then any `Fn*`
/// ident before the next `Name :`.
fn fn_bound_names(toks: &[CtxTok], start: usize, end: usize, out: &mut Vec<String>) {
    let mut current: Option<&str> = None;
    let mut k = start;
    while k < end {
        if toks[k].shape == Shape::Ident {
            let is_bound_name = k + 1 < end
                && toks[k + 1].text == ":"
                && toks.get(k + 2).map(|t| t.text.as_str()) != Some(":");
            if is_bound_name {
                current = Some(toks[k].text.as_str());
                k += 2;
                continue;
            }
            if matches!(toks[k].text.as_str(), "Fn" | "FnMut" | "FnOnce") {
                if let Some(name) = current {
                    if !out.iter().any(|n| n == name) {
                        out.push(name.to_string());
                    }
                }
            }
        }
        k += 1;
    }
}

/// Skips a generic parameter list starting at `<`; returns the index
/// just past the matching `>`. Tolerates `->` arrows inside `Fn(…) ->
/// T` bounds (adjacent `-` `>` puncts do not close the list).
fn skip_generics(toks: &[CtxTok], at: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = at;
    while k < toks.len() && k - at < 1024 {
        match toks[k].shape {
            Shape::Punct if toks[k].text == "<" => {
                depth += 1;
                k += 1;
            }
            Shape::Punct if toks[k].text == ">" => {
                let arrow = k > 0
                    && toks[k - 1].text == "-"
                    && toks[k - 1].line == toks[k].line
                    && toks[k - 1].col + 1 == toks[k].col;
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k + 1);
                    }
                }
                k += 1;
            }
            Shape::Open(_) => {
                let close = toks[k].mate;
                if close == NO_MATE {
                    return None;
                }
                k = close + 1;
            }
            _ => k += 1,
        }
    }
    None
}

/// Parses the `fn` item starting at token `at` (the `fn` keyword).
fn parse_fn(toks: &[CtxTok], at: usize) -> Option<FnInfo> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.shape != Shape::Ident {
        return None; // `fn(usize) -> T` fn-pointer type, not an item
    }
    let name = name_tok.text.clone();
    let mut fn_bounds: Vec<String> = Vec::new();
    let mut j = at + 2;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let after = skip_generics(toks, j)?;
        fn_bound_names(toks, j + 1, after - 1, &mut fn_bounds);
        j = after;
    }
    let open = j;
    if !matches!(
        toks.get(open).map(|t| t.shape),
        Some(Shape::Open(Delim::Paren))
    ) {
        return None;
    }
    let close = toks[open].mate;
    if close == NO_MATE {
        return None;
    }

    // Return type / where clause region, up to the body or `;`.
    let mut body = None;
    let mut k = close + 1;
    let mut where_start = None;
    while k < toks.len() && k - close < 1024 {
        match toks[k].shape {
            Shape::Open(Delim::Brace) => {
                if toks[k].mate != NO_MATE {
                    body = Some((k, toks[k].mate));
                }
                break;
            }
            Shape::Punct if toks[k].text == ";" => break,
            Shape::Open(_) => {
                let m = toks[k].mate;
                if m == NO_MATE {
                    break;
                }
                k = m + 1;
            }
            Shape::Ident if toks[k].text == "where" => {
                where_start = Some(k + 1);
                k += 1;
            }
            _ => k += 1,
        }
    }
    if let Some(ws) = where_start {
        fn_bound_names(toks, ws, k.min(toks.len()), &mut fn_bounds);
    }

    let closure_params = closure_param_names(toks, open + 1, close, &fn_bounds);

    // Visibility: walk back over qualifiers (`pub(crate) const unsafe
    // extern "C" fn`).
    let mut is_pub = false;
    let mut b = at;
    while b > 0 {
        b -= 1;
        match toks[b].shape {
            Shape::Ident if toks[b].text == "pub" => {
                is_pub = true;
                break;
            }
            Shape::Ident
                if matches!(
                    toks[b].text.as_str(),
                    "const" | "unsafe" | "async" | "extern"
                ) => {}
            Shape::Literal => {} // extern "C" ABI string
            Shape::Close(Delim::Paren) if toks[b].mate != NO_MATE => {
                b = toks[b].mate; // pub(crate) — jump to its `(`
            }
            _ => break,
        }
    }

    Some(FnInfo {
        name,
        is_pub,
        line: toks[at].line,
        params: (open, close),
        body,
        closure_params,
        in_test: toks[at].in_test,
        debug_only: toks[at].debug_only,
    })
}

/// Parameter names in `(start, end)` whose declared type is a closure.
fn closure_param_names(
    toks: &[CtxTok],
    start: usize,
    end: usize,
    fn_bounds: &[String],
) -> Vec<String> {
    let mut out = Vec::new();
    for (seg_start, seg_end) in param_segments(toks, start, end) {
        let Some((name, ty_start)) = param_name(toks, seg_start, seg_end) else {
            continue;
        };
        let ty = &toks[ty_start..seg_end];
        let direct = ty.iter().any(|t| {
            t.shape == Shape::Ident && matches!(t.text.as_str(), "Fn" | "FnMut" | "FnOnce")
        });
        let via_generic = ty.len() == 1
            && ty[0].shape == Shape::Ident
            && fn_bounds.iter().any(|b| *b == ty[0].text);
        if direct || via_generic {
            out.push(name);
        }
    }
    out
}

/// Splits a parameter list into per-parameter token ranges at
/// top-level commas (angle-bracket depth aware, group-skipping).
pub(crate) fn param_segments(toks: &[CtxTok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut angle = 0i32;
    let mut seg = start;
    let mut k = start;
    while k < end {
        match toks[k].shape {
            Shape::Open(_) => {
                let m = toks[k].mate;
                if m == NO_MATE || m >= end {
                    break;
                }
                k = m + 1;
            }
            Shape::Punct if toks[k].text == "<" => {
                angle += 1;
                k += 1;
            }
            Shape::Punct if toks[k].text == ">" => {
                let arrow = k > 0
                    && toks[k - 1].text == "-"
                    && toks[k - 1].line == toks[k].line
                    && toks[k - 1].col + 1 == toks[k].col;
                if !arrow {
                    angle -= 1;
                }
                k += 1;
            }
            Shape::Punct if toks[k].text == "," && angle == 0 => {
                if k > seg {
                    out.push((seg, k));
                }
                seg = k + 1;
                k += 1;
            }
            _ => k += 1,
        }
    }
    if end > seg {
        out.push((seg, end));
    }
    out
}

/// `name` and type-start index for a simple `[mut] name: Type`
/// parameter; `None` for receivers and destructuring patterns.
pub(crate) fn param_name(toks: &[CtxTok], start: usize, end: usize) -> Option<(String, usize)> {
    let mut k = start;
    if toks.get(k).is_some_and(|t| t.text == "mut") {
        k += 1;
    }
    let name_tok = toks.get(k)?;
    if name_tok.shape != Shape::Ident || k >= end {
        return None;
    }
    let colon = toks.get(k + 1)?;
    if colon.text != ":" || toks.get(k + 2).is_some_and(|t| t.text == ":") {
        return None;
    }
    Some((name_tok.text.clone(), k + 2))
}

/// A parsed source file: raw lines for snippets plus the token stream
/// and fn table every pass works from.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the audited root, forward slashes.
    pub rel: String,
    /// The `crates/<name>` directory the file belongs to.
    pub crate_name: String,
    /// Original source lines (for snippets and allowlist needles).
    pub raw_lines: Vec<String>,
    /// Matched, context-flagged tokens.
    pub toks: Vec<CtxTok>,
    /// Every `fn` item found.
    pub fns: Vec<FnInfo>,
}

impl SourceFile {
    /// Lexes and analyzes `text`.
    pub fn parse(path: PathBuf, rel: String, crate_name: String, text: &str) -> SourceFile {
        let toks = build(text);
        let fns = functions(&toks);
        SourceFile {
            path,
            rel,
            crate_name,
            raw_lines: text.lines().map(str::to_string).collect(),
            toks,
            fns,
        }
    }

    /// The trimmed raw source line (1-based), for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.raw_lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Whether token `i` is an identifier with text `t`.
pub fn is_ident(toks: &[CtxTok], i: usize, t: &str) -> bool {
    toks.get(i)
        .is_some_and(|x| x.shape == Shape::Ident && x.text == t)
}

/// Whether tokens at `i` spell the path segment pair `a::b`.
pub fn is_path2(toks: &[CtxTok], i: usize, a: &str, b: &str) -> bool {
    is_ident(toks, i, a)
        && toks.get(i + 1).is_some_and(|t| t.text == ":")
        && toks.get(i + 2).is_some_and(|t| t.text == ":")
        && is_ident(toks, i + 3, b)
}

/// Whether the token before `i` is a `.` (method-call receiver).
pub fn after_dot(toks: &[CtxTok], i: usize) -> bool {
    i > 0 && toks[i - 1].shape == Shape::Punct && toks[i - 1].text == "."
}

/// Whether the token after `i` opens a parenthesized group (a call).
pub fn call_follows(toks: &[CtxTok], i: usize) -> bool {
    matches!(
        toks.get(i + 1).map(|t| t.shape),
        Some(Shape::Open(Delim::Paren))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("mem.rs"), "mem.rs".into(), "geo".into(), src)
    }

    #[test]
    fn delimiters_match_through_nested_generics() {
        let toks = build("fn f(v: Vec<Vec<u8>>) -> Option<Box<[u8; 4]>> { g(v[0]) }");
        for t in &toks {
            if matches!(t.shape, Shape::Open(_) | Shape::Close(_)) {
                assert_ne!(t.mate, NO_MATE, "{t:?}");
            }
        }
        let open = toks
            .iter()
            .position(|t| t.shape == Shape::Open(Delim::Brace))
            .expect("body");
        assert_eq!(toks[toks[open].mate].mate, open);
    }

    #[test]
    fn cfg_test_module_marks_contents() {
        let f =
            parse("pub fn a() { b(); }\n#[cfg(test)]\nmod t {\n    fn x() { y(); }\n}\nfn c() {}");
        let y = f.toks.iter().find(|t| t.text == "y").expect("y");
        assert!(y.in_test);
        let b = f.toks.iter().find(|t| t.text == "b").expect("b");
        assert!(!b.in_test);
        let c = f.toks.iter().find(|t| t.text == "c").expect("c");
        assert!(!c.in_test);
    }

    #[test]
    fn test_attribute_marks_one_fn_only() {
        let f = parse(
            "#[test]\nfn t() { a(); }\nfn u() { b(); }\n#[tokio::test]\nasync fn v() { c(); }",
        );
        let flag = |name: &str| f.toks.iter().find(|t| t.text == name).map(|t| t.in_test);
        assert_eq!(flag("a"), Some(true));
        assert_eq!(flag("b"), Some(false));
        assert_eq!(flag("c"), Some(true));
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_do_not_mark() {
        let f = parse(
            "#[cfg(not(test))]\nfn p() { q(); }\n#[cfg_attr(test, allow(dead_code))]\nfn r() { s(); }",
        );
        for name in ["q", "s"] {
            let t = f.toks.iter().find(|t| t.text == name).expect(name);
            assert!(!t.in_test, "{name}");
        }
    }

    #[test]
    fn statement_level_debug_attr_marks_its_block() {
        let f = parse(
            "fn f() {\n    a();\n    #[cfg(debug_assertions)]\n    if bad() {\n        panic!(\"x\");\n    }\n    b();\n}",
        );
        let panic_tok = f.toks.iter().find(|t| t.text == "panic").expect("panic");
        assert!(panic_tok.debug_only);
        for name in ["a", "b"] {
            let t = f.toks.iter().find(|t| t.text == name).expect(name);
            assert!(!t.debug_only, "{name}");
        }
    }

    #[test]
    fn use_items_are_flagged() {
        let f =
            parse("use std::collections::{HashMap, HashSet};\nfn f() { let m = HashMap::new(); }");
        let uses: Vec<bool> = f
            .toks
            .iter()
            .filter(|t| t.text == "HashMap")
            .map(|t| t.in_use)
            .collect();
        assert_eq!(uses, vec![true, false]);
    }

    #[test]
    fn fn_info_finds_name_visibility_and_body() {
        let f = parse("pub(crate) const fn area(w: f64, h: f64) -> f64 { w * h }\nfn helper();");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "area");
        assert!(f.fns[0].is_pub);
        assert!(f.fns[0].body.is_some());
        assert_eq!(f.fns[1].name, "helper");
        assert!(!f.fns[1].is_pub);
        assert!(f.fns[1].body.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = parse("fn takes(cb: fn(usize) -> u8) -> u8 { cb(1) }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "takes");
    }

    #[test]
    fn closure_params_from_impl_dyn_and_bounds() {
        let f = parse(
            "fn a(f: impl Fn(usize) -> u8, n: usize) {}\n\
             fn b<F: FnMut(u8)>(cb: F, x: u8) {}\n\
             fn c<G>(g: G, y: u8) where G: FnOnce() -> u8 {}\n\
             fn d(h: Box<dyn Fn() -> u8>) {}\n\
             fn e(v: Vec<u8>) {}",
        );
        let by_name = |n: &str| {
            f.fns
                .iter()
                .find(|i| i.name == n)
                .map(|i| i.closure_params.clone())
                .expect(n)
        };
        assert_eq!(by_name("a"), vec!["f"]);
        assert_eq!(by_name("b"), vec!["cb"]);
        assert_eq!(by_name("c"), vec!["g"]);
        assert_eq!(by_name("d"), vec!["h"]);
        assert!(by_name("e").is_empty());
    }

    #[test]
    fn generics_with_fn_bounds_and_arrows_parse() {
        let f =
            parse("pub fn m<T, F: Fn(usize) -> Vec<T>>(make: F, n: usize) -> Vec<T> { make(n) }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "m");
        assert!(f.fns[0].is_pub);
        assert_eq!(f.fns[0].closure_params, vec!["make"]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file_region() {
        let f = parse("#![cfg(test)]\nfn t() { a(); }");
        let a = f.toks.iter().find(|t| t.text == "a").expect("a");
        assert!(a.in_test);
    }

    #[test]
    fn doc_comments_with_code_produce_no_tokens() {
        let f = parse("/// ```\n/// let m = HashMap::new();\n/// ```\npub fn documented() {}");
        assert!(!f.toks.iter().any(|t| t.text == "HashMap"));
        assert_eq!(f.fns[0].name, "documented");
    }
}
