//! The audit engine against a known-bad fixture workspace: exact
//! finding counts, allowlist suppression, and binary exit codes.

use magus_audit::{run_audit, Allowlist};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad")
}

fn count(report: &magus_audit::AuditReport, pass: &str) -> (usize, usize) {
    let p = report
        .passes
        .iter()
        .find(|p| p.pass == pass)
        .unwrap_or_else(|| panic!("pass {pass} missing from report"));
    (p.unsuppressed, p.suppressed)
}

#[test]
fn bad_fixture_yields_exact_finding_counts() {
    let report = run_audit(&fixture_root(), &Allowlist::empty()).expect("audit runs");
    assert_eq!(count(&report, "unit-safety"), (4, 0), "{report:#?}");
    assert_eq!(count(&report, "panic-freedom"), (6, 0), "{report:#?}");
    assert_eq!(count(&report, "cast-audit"), (3, 0), "{report:#?}");
    assert_eq!(count(&report, "lint-gate"), (7, 0), "{report:#?}");
    assert_eq!(count(&report, "no-bare-print"), (3, 0), "{report:#?}");
    // The determinism passes audit this fixture's fault/cli crates too,
    // but `bad` exercises only the hygiene passes (det-bad covers the
    // other five).
    for pass in [
        "nondet-iter",
        "wall-clock",
        "float-order",
        "lock-discipline",
        "env-nondet",
    ] {
        assert_eq!(count(&report, pass), (0, 0), "{pass}: {report:#?}");
    }
    assert!(!report.ok());
    assert_eq!(report.findings.len(), 23);
}

#[test]
fn fixture_findings_point_at_the_right_lines() {
    let report = run_audit(&fixture_root(), &Allowlist::empty()).expect("audit runs");
    let at = |pass: &str, line: usize| {
        report
            .findings
            .iter()
            .filter(|f| f.pass == pass && f.line == line && f.file.ends_with("geo/src/lib.rs"))
            .count()
    };
    // Both bare-f64 unit params of `rx_power` sit on the signature line.
    assert_eq!(at("unit-safety", 6), 2);
    // The multi-line `blend` signature anchors at the flagged
    // parameter's own line, not the `fn` line.
    assert_eq!(at("unit-safety", 13), 1);
    // `panic!`, then `unwrap` + `expect` on one line.
    assert_eq!(at("panic-freedom", 23), 1);
    assert_eq!(at("panic-freedom", 25), 2);
    // The two computed narrowings.
    assert_eq!(at("cast-audit", 30), 1);
    assert_eq!(at("cast-audit", 31), 1);
    // The two library print sites, one finding each (the embedded
    // `println!(` inside `eprintln!(` must not double-report).
    assert_eq!(at("no-bare-print", 38), 1);
    assert_eq!(at("no-bare-print", 39), 1);
    // The faulty fault-injection snippet: one bare-dB unit param, the
    // unwrap/panic retry loop and the expecting rollback, and the
    // rollback's stderr logging.
    let fault = |pass: &str, line: usize| {
        report
            .findings
            .iter()
            .filter(|f| f.pass == pass && f.line == line && f.file.ends_with("fault/src/lib.rs"))
            .count()
    };
    assert_eq!(fault("unit-safety", 5), 1);
    assert_eq!(fault("panic-freedom", 19), 1);
    assert_eq!(fault("panic-freedom", 21), 1);
    assert_eq!(fault("panic-freedom", 29), 1);
    assert_eq!(fault("no-bare-print", 30), 1);
    // tricky.rs collects the old line scanner's false-positive classes
    // (raw strings, doc examples, debug-only panics, clamp-guarded
    // casts): its only finding is the multi-line computed cast the
    // line scanner could not see.
    let tricky: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("geo/src/tricky.rs"))
        .collect();
    assert_eq!(tricky.len(), 1, "{tricky:#?}");
    assert_eq!(tricky[0].pass, "cast-audit");
    assert_eq!(tricky[0].line, 34);
    // Nothing from the cfg(test) module (lines 42+), from the
    // panic-exempt cli crate's code, or from the cli `main.rs` prints
    // (crate roots are exempt from no-bare-print).
    assert!(report.findings.iter().all(|f| {
        !(f.file.ends_with("geo/src/lib.rs") && f.line >= 42)
            && !(f.pass == "panic-freedom" && f.file.contains("cli"))
            && !(f.pass == "cast-audit" && f.file.contains("cli"))
            && !(f.pass == "no-bare-print" && f.file.contains("cli"))
    }));
}

#[test]
fn allowlist_suppresses_and_reports_stale_rules() {
    let allow = Allowlist::parse(
        "panic-freedom | geo/src/lib.rs | * | fixture: panics accepted for this test\n\
         cast-audit | geo/src/lib.rs | (a * b) as u32 | fixture: checked upstream\n\
         unit-safety | no/such/file.rs | * | fixture: stale rule\n",
    )
    .expect("allowlist parses");
    let report = run_audit(&fixture_root(), &allow).expect("audit runs");
    // The geo-scoped rule leaves the fault crate's three panics open.
    assert_eq!(count(&report, "panic-freedom"), (3, 3));
    assert_eq!(count(&report, "cast-audit"), (2, 1));
    assert_eq!(count(&report, "unit-safety"), (4, 0));
    assert_eq!(report.unused_allow_rules.len(), 1, "{report:#?}");
    assert!(report.unused_allow_rules[0].contains("no/such/file.rs"));
    assert!(!report.ok(), "unit-safety and lint-gate findings remain");
    // Reasons ride along into the report and its JSON form.
    assert!(report
        .suppressed
        .iter()
        .any(|s| s.reason.contains("checked upstream")));
    assert!(report
        .to_json()
        .contains("\"reason\": \"fixture: checked upstream\""));
}

#[test]
fn binary_exits_nonzero_on_fixture_and_writes_json() {
    let out_dir = std::env::temp_dir().join("magus-audit-fixture-test");
    std::fs::create_dir_all(&out_dir).expect("temp dir");
    let json = out_dir.join("report.json");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_magus-audit"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--json")
        .arg(&json)
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(1), "{status:?}");
    let text = std::fs::read_to_string(&json).expect("report written");
    assert!(text.contains("\"ok\": false"));
    assert!(text.contains("\"unsuppressed_total\": 23"));
}

#[test]
fn binary_rejects_bad_usage() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_magus-audit"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(2));
}
