//! det-bad fixture crate: every determinism pass fires here with the
//! exact counts pinned by `tests/determinism_fixtures.rs`; the legacy
//! hygiene passes all stay at zero.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// nondet-iter: a hash-ordered field type.
pub struct Cache {
    map: HashMap<u64, f64>,
}

impl Cache {
    /// nondet-iter: the constructor mention.
    pub fn new() -> Cache {
        Cache { map: HashMap::new() }
    }
}

/// nondet-iter: an explicitly seeded-per-process hasher.
pub fn digest(x: u64) -> u64 {
    let h = std::collections::hash_map::DefaultHasher::new();
    let _ = h;
    x
}

/// wall-clock: both forbidden time sources.
pub fn stamp() -> u64 {
    let t0 = std::time::Instant::now();
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    t0.elapsed().as_millis() as u64
}

/// float-order: a NaN-tolerant sort key (unstable order) and an
/// unordered reduction inside a parallel entry's argument list.
pub fn spread_stats(xs: &[f64]) -> Vec<f64> {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    map_indexed(xs, |_, c: &[f64]| {
        let t: f64 = c.iter().sum();
        t
    })
}

/// lock-discipline: a second shard lock with no ordering argument.
pub fn drain(a: &Shard, b: &Shard) -> f64 {
    let ga = a.inner.lock();
    let gb = b.inner.lock();
    *ga + *gb
}

/// lock-discipline: a guard held across a call into user code.
pub fn visit(m: &Shard, cb: impl Fn(f64)) {
    let g = m.inner.lock();
    cb(*g);
}

/// env-nondet: all four forbidden read families.
pub fn pool_size() -> usize {
    let raw = std::env::var("DET_BAD_THREADS");
    let tid = std::thread::current();
    let n = std::thread::available_parallelism();
    let pid = std::process::id();
    let _ = (raw, tid, pid);
    n.map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_context_is_exempt_from_every_determinism_pass() {
        let m = std::collections::HashMap::<u32, u32>::new();
        let t = std::time::Instant::now();
        let v = std::env::var("X");
        let _ = (m, t, v);
    }
}
