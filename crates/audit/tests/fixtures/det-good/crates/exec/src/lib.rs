//! det-good fixture crate: the same shapes as det-bad written to the
//! determinism contract — the audit must report zero findings.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Ordered map: iteration order is the key order, always.
pub struct Cache {
    map: BTreeMap<u64, f64>,
}

impl Cache {
    /// Deterministic constructor.
    pub fn new() -> Cache {
        Cache { map: BTreeMap::new() }
    }
}

/// Simulation time is explicit ticks, not the wall clock.
pub fn stamp(now_ticks: u64) -> u64 {
    now_ticks + 1
}

/// Total order for float sort keys; a serial reduction outside any
/// parallel entry point is order-fixed by the iterator itself.
pub fn spread_stats(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let serial: f64 = s.iter().sum();
    serial
}

/// One shard, one guard.
pub struct Shard {
    inner: Mutex<f64>,
}

/// A single acquisition per body is within the discipline.
pub fn read(m: &Shard) -> f64 {
    *m.inner.lock()
}

/// Calls into user code with no lock acquired in this body.
pub fn visit(m: &Shard, cb: impl Fn(f64)) {
    cb(read(m));
}

/// Thread count arrives as explicit config from the CLI boundary.
pub fn pool_size(threads: Option<usize>) -> usize {
    threads.unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_context_may_use_hash_types_and_the_clock() {
        let m = std::collections::HashMap::<u32, u32>::new();
        let t = std::time::Instant::now();
        let _ = (m, t);
    }
}
