// Fixture binary crate. `cli` is panic-exempt and not a cast-audit
// crate, so none of the lines below may produce findings; only the
// missing #![forbid(unsafe_code)] and lints inheritance are flagged.

fn main() {
    let v: Option<u32> = Some(1);
    println!("{}", v.unwrap());
    let x = (1.5f64 * 2.0) as u32;
    println!("{x}");
}
