// Fixture fault-injection layer. Deliberately unsound recovery code —
// the integration test pins the exact finding set for this snippet.

/// unit-safety: degraded-read fallback taking a bare-f64 dB loss.
pub fn degraded_read(path_loss_db: f64, stale: bool) -> f64 {
    if stale {
        path_loss_db + 3.0
    } else {
        path_loss_db
    }
}

/// panic-freedom: a retry loop that panics instead of recovering.
pub fn retry<T>(mut attempts: u32, mut op: impl FnMut() -> Option<T>) -> T {
    loop {
        if let Some(v) = op() {
            return v;
        }
        attempts = attempts.checked_sub(1).unwrap();
        if attempts == 0 {
            panic!("retries exhausted");
        }
    }
}

/// panic-freedom + no-bare-print: a rollback that expects its
/// checkpoint and logs straight to stderr.
pub fn rollback(checkpoint: Option<u64>) -> u64 {
    let c = checkpoint.expect("checkpoint saved");
    eprintln!("rolled back to {c}");
    c
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        assert_eq!(super::rollback(Some(3)), 3);
    }
}
