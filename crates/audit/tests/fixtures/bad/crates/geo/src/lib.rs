// Fixture library crate. Deliberately violates every pass; the
// integration test asserts the exact finding set. Missing
// #![forbid(unsafe_code)] is itself one of the violations.

/// unit-safety: two bare-f64 unit parameters (one per line pattern).
pub fn rx_power(power_dbm: f64, margin_db: f64) -> f64 {
    power_dbm - margin_db
}

/// unit-safety: multi-line signature with one flagged parameter.
pub fn blend(
    weight: f64,
    path_loss_db: f64,
) -> f64 {
    weight * path_loss_db
}

/// panic-freedom: one unwrap, one expect, one panic.
pub fn risky(v: Option<u32>) -> u32 {
    // A comment mentioning .unwrap() must not be flagged.
    let s = "a string mentioning .expect( must not be flagged";
    if s.is_empty() {
        panic!("empty");
    }
    v.unwrap() + v.expect("present")
}

/// cast-audit: two computed narrowings; the widening rebind is fine.
pub fn narrow(a: f64, b: f64, i: u16) -> usize {
    let x = (a * b) as u32;
    let y = [1u8, 2][x as usize % 2] as i32;
    let ok = i as usize; // plain identifier widening: not flagged
    x as usize + y as usize + ok
}

/// no-bare-print: library code writing straight to stdout/stderr.
pub fn noisy(x: u32) {
    println!("x = {x}");
    eprintln!("x = {x}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let loss_db: f64 = 3.0;
        assert!((loss_db * 2.0) as u32 == 6);
    }
}
