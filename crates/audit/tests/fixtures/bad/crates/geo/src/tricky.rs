// Fixture: patterns the old line scanner either flagged falsely
// (each needed an allowlist entry) or missed entirely. The token
// engine produces exactly ONE finding in this file: the multi-line
// computed cast at the bottom.

/// Doc-comment examples are prose to the auditor:
///
/// ```ignore
/// value.unwrap(); // not a finding
/// ```
pub fn raw_mentions() -> &'static str {
    r##"call .unwrap() or .expect("x") or panic!("boom")"##
}

/// Debug-only invariant traps are exempt without an allowlist entry.
pub fn checked_invariant(ok: bool) {
    #[cfg(debug_assertions)]
    if !ok {
        panic!("structurally unsound");
    }
}

/// Visibly range-guarded narrowings are the checked-helper pattern.
pub fn guarded(v: f64, w: i64) -> (u32, u32) {
    let a = v.max(0.0).min(u32::MAX as f64) as u32;
    let b = w.clamp(0, 4096) as u32;
    (a, b)
}

/// The old scanner matched `) as usize` line-locally; a cast split
/// across lines slipped through. The token engine pairs delimiters.
pub fn spread(a: f64, b: f64) -> usize {
    (a * 64.0
        + b) as usize
}
