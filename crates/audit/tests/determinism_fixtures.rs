//! The five determinism passes against the det-bad/det-good fixture
//! workspaces: exact counts and lines on det-bad, a clean bill on
//! det-good, and allowlist suppression with an argued reason.

use magus_audit::{run_audit, Allowlist};
use std::path::{Path, PathBuf};

fn root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn count(report: &magus_audit::AuditReport, pass: &str) -> (usize, usize) {
    let p = report
        .passes
        .iter()
        .find(|p| p.pass == pass)
        .unwrap_or_else(|| panic!("pass {pass} missing from report"));
    (p.unsuppressed, p.suppressed)
}

#[test]
fn det_bad_yields_exact_counts() {
    let report = run_audit(&root("det-bad"), &Allowlist::empty()).expect("audit runs");
    assert_eq!(count(&report, "nondet-iter"), (3, 0), "{report:#?}");
    assert_eq!(count(&report, "wall-clock"), (2, 0), "{report:#?}");
    assert_eq!(count(&report, "float-order"), (2, 0), "{report:#?}");
    assert_eq!(count(&report, "lock-discipline"), (2, 0), "{report:#?}");
    assert_eq!(count(&report, "env-nondet"), (4, 0), "{report:#?}");
    // det-bad is determinism-bad only: the hygiene passes stay silent.
    for pass in [
        "unit-safety",
        "panic-freedom",
        "cast-audit",
        "lint-gate",
        "no-bare-print",
    ] {
        assert_eq!(count(&report, pass), (0, 0), "{pass}: {report:#?}");
    }
    assert_eq!(report.findings.len(), 13);
    assert!(!report.ok());
}

#[test]
fn det_bad_findings_point_at_the_right_lines() {
    let report = run_audit(&root("det-bad"), &Allowlist::empty()).expect("audit runs");
    let lines = |pass: &str| -> Vec<usize> {
        report
            .findings
            .iter()
            .filter(|f| f.pass == pass)
            .map(|f| f.line)
            .collect()
    };
    // HashMap field, HashMap::new constructor, DefaultHasher.
    assert_eq!(lines("nondet-iter"), vec![11, 17, 23]);
    // Instant::now, then SystemTime.
    assert_eq!(lines("wall-clock"), vec![30, 31]);
    // The partial_cmp sort key, then the .sum() inside map_indexed.
    assert_eq!(lines("float-order"), vec![40, 42]);
    // The second shard lock in `drain`, the cb(*g) call in `visit`.
    assert_eq!(lines("lock-discipline"), vec![50, 57]);
    // env::var, thread::current, available_parallelism, process::id.
    assert_eq!(lines("env-nondet"), vec![62, 63, 64, 65]);
    let msg = |pass: &str, line: usize| {
        report
            .findings
            .iter()
            .find(|f| f.pass == pass && f.line == line)
            .unwrap_or_else(|| panic!("no {pass} finding at {line}"))
            .message
            .clone()
    };
    assert!(msg("nondet-iter", 11).contains("BTreeMap"));
    assert!(msg("float-order", 42).contains("parallel context"));
    assert!(msg("lock-discipline", 50).contains("drain"));
    assert!(msg("lock-discipline", 57).contains("visit"));
    assert!(msg("env-nondet", 64).contains("available_parallelism"));
}

#[test]
fn det_good_is_clean() {
    let report = run_audit(&root("det-good"), &Allowlist::empty()).expect("audit runs");
    assert!(report.ok(), "{report:#?}");
    assert!(report.findings.is_empty());
    assert!(report.suppressed.is_empty());
    assert!(report.unused_allow_rules.is_empty());
}

#[test]
fn determinism_findings_are_allowlistable_with_an_argument() {
    let allow = Allowlist::parse(
        "nondet-iter | exec/src/lib.rs | HashMap | fixture: keyed access only, never iterated\n\
         env-nondet | exec/src/lib.rs | * | fixture: thread-count contract, results invariant\n",
    )
    .expect("allowlist parses");
    let report = run_audit(&root("det-bad"), &allow).expect("audit runs");
    // The HashMap needle covers the field and the constructor but not
    // the DefaultHasher; the wildcard covers all four env reads.
    assert_eq!(count(&report, "nondet-iter"), (1, 2), "{report:#?}");
    assert_eq!(count(&report, "env-nondet"), (0, 4), "{report:#?}");
    assert!(report.unused_allow_rules.is_empty(), "{report:#?}");
    assert!(!report.ok(), "wall-clock/float-order/lock findings remain");
    assert!(report
        .suppressed
        .iter()
        .any(|s| s.reason.contains("thread-count contract")));
}

#[test]
fn binary_exits_zero_on_det_good() {
    let json = std::env::temp_dir().join("magus-audit-det-good.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_magus-audit"))
        .args(["check", "--root"])
        .arg(root("det-good"))
        .arg("--json")
        .arg(&json)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&json).expect("report written");
    assert!(text.contains("\"ok\": true"));
}
