//! Terminal heat maps.

use magus_geo::{GridCoord, GridMap};

/// Intensity ramp from empty to full.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a scalar raster as an ASCII heat map, downsampled to at most
/// `max_width` columns. Non-finite cells render as spaces. Row 0 of the
/// raster (south) is printed last so north is up.
pub fn ascii_heatmap(map: &GridMap<f64>, max_width: usize) -> String {
    let spec = *map.spec();
    let step = (spec.width as usize).div_ceil(max_width).max(1);
    let (lo, hi) = map.finite_range().unwrap_or((0.0, 1.0));
    let span = (hi - lo).max(1e-12);
    let mut out = String::new();
    let mut y = spec.height as i64 - step as i64;
    while y >= 0 {
        for x in (0..spec.width as usize).step_by(step) {
            // Average the block.
            let mut sum = 0.0;
            let mut n = 0.0;
            for dy in 0..step.min(spec.height as usize - y as usize) {
                for dx in 0..step.min(spec.width as usize - x) {
                    let v = *map.get(GridCoord::new((x + dx) as u32, y as u32 + dy as u32));
                    if v.is_finite() {
                        sum += v;
                        n += 1.0;
                    }
                }
            }
            if n == 0.0 {
                out.push(' ');
            } else {
                let t = ((sum / n - lo) / span).clamp(0.0, 1.0);
                let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
        }
        out.push('\n');
        y -= step as i64;
    }
    out
}

/// Renders a serving map: each sector gets a stable letter/digit, unserved
/// cells are `.` — the console cousin of the paper's Figure 4.
pub fn ascii_serving_map(
    serving: &[Option<u32>],
    width: u32,
    height: u32,
    max_width: usize,
) -> String {
    assert_eq!(serving.len(), (width as usize) * (height as usize));
    const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let step = (width as usize).div_ceil(max_width).max(1);
    let mut out = String::new();
    let mut y = height as i64 - step as i64;
    while y >= 0 {
        for x in (0..width as usize).step_by(step) {
            let i = y as usize * width as usize + x;
            match serving[i] {
                Some(s) => out.push(GLYPHS[s as usize % GLYPHS.len()] as char),
                None => out.push('.'),
            }
        }
        out.push('\n');
        y -= step as i64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::{GridSpec, PointM};

    fn spec(w: u32, h: u32) -> GridSpec {
        GridSpec::new(PointM::new(0.0, 0.0), 100.0, w, h)
    }

    #[test]
    fn heatmap_has_expected_dimensions() {
        let map = GridMap::from_fn(spec(20, 10), |c| c.x as f64);
        let art = ascii_heatmap(&map, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 20));
    }

    #[test]
    fn heatmap_downsamples() {
        let map = GridMap::from_fn(spec(100, 100), |c| (c.x + c.y) as f64);
        let art = ascii_heatmap(&map, 25);
        assert!(art.lines().next().unwrap().len() <= 25);
    }

    #[test]
    fn gradient_renders_light_to_dark() {
        let map = GridMap::from_fn(spec(10, 1), |c| c.x as f64);
        let art = ascii_heatmap(&map, 10);
        let row = art.lines().next().unwrap().as_bytes();
        assert_eq!(row[0], b' ');
        assert_eq!(row[9], b'@');
    }

    #[test]
    fn non_finite_cells_are_blank() {
        let map = GridMap::from_fn(
            spec(3, 1),
            |c| {
                if c.x == 1 {
                    f64::NEG_INFINITY
                } else {
                    1.0
                }
            },
        );
        let art = ascii_heatmap(&map, 3);
        assert_eq!(art.lines().next().unwrap().as_bytes()[1], b' ');
    }

    #[test]
    fn serving_map_glyphs() {
        let serving = vec![Some(0), Some(1), None, Some(0)];
        let art = ascii_serving_map(&serving, 2, 2, 2);
        // North (row 1) first: [None, Some(0)] then [Some(0), Some(1)].
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], ".A");
        assert_eq!(lines[1], "AB");
    }
}
