//! Rendering of model rasters — the reproduction of the paper's map
//! figures (3, 4, 5, 7, 8, 10).
//!
//! Two output forms:
//!
//! * [`ascii`] — terminal heat maps (downsampled), used by the figure
//!   binaries so every map figure is inspectable without leaving the
//!   console.
//! * [`image`] — PGM (grayscale) / PPM (color) writers for full-resolution
//!   rasters: path-loss maps (Fig. 3/7), serving-sector coverage maps
//!   with out-of-service cells in black (Fig. 4/8/10).

#![forbid(unsafe_code)]

pub mod ascii;
pub mod image;

pub use ascii::{ascii_heatmap, ascii_serving_map};
pub use image::{heatmap_pgm, serving_map_ppm};
