//! PGM/PPM raster export (binary NetPBM — viewable everywhere, zero
//! dependencies).

use magus_geo::{GridCoord, GridMap};

/// Encodes a scalar raster as a binary PGM (P5) grayscale image, north
/// up. Non-finite values map to black.
pub fn heatmap_pgm(map: &GridMap<f64>) -> Vec<u8> {
    let spec = *map.spec();
    let (lo, hi) = map.finite_range().unwrap_or((0.0, 1.0));
    let span = (hi - lo).max(1e-12);
    let mut out = format!("P5\n{} {}\n255\n", spec.width, spec.height).into_bytes();
    for y in (0..spec.height).rev() {
        for x in 0..spec.width {
            let v = *map.get(GridCoord::new(x, y));
            let px = if v.is_finite() {
                (((v - lo) / span).clamp(0.0, 1.0) * 255.0) as u8
            } else {
                0
            };
            out.push(px);
        }
    }
    out
}

/// Stable pseudo-random color for a sector id (never near-black, so
/// unserved cells stay distinguishable).
fn sector_color(s: u32) -> [u8; 3] {
    let mut z = (s as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xC0FFEE;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    let r = 64 + (z & 0xBF) as u8;
    let g = 64 + ((z >> 8) & 0xBF) as u8;
    let b = 64 + ((z >> 16) & 0xBF) as u8;
    [r, g, b]
}

/// Encodes a serving map as a binary PPM (P6) image: one stable color per
/// sector, black where out of service — the paper's Figure 4 rendering.
pub fn serving_map_ppm(serving: &[Option<u32>], width: u32, height: u32) -> Vec<u8> {
    assert_eq!(serving.len(), (width as usize) * (height as usize));
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for y in (0..height).rev() {
        for x in 0..width {
            let i = y as usize * width as usize + x as usize;
            let rgb = match serving[i] {
                Some(s) => sector_color(s),
                None => [0, 0, 0],
            };
            out.extend_from_slice(&rgb);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::{GridSpec, PointM};

    #[test]
    fn pgm_header_and_size() {
        let spec = GridSpec::new(PointM::new(0.0, 0.0), 1.0, 8, 4);
        let map = GridMap::from_fn(spec, |c| c.x as f64);
        let img = heatmap_pgm(&map);
        assert!(img.starts_with(b"P5\n8 4\n255\n"));
        assert_eq!(img.len(), b"P5\n8 4\n255\n".len() + 32);
    }

    #[test]
    fn ppm_header_and_size() {
        let serving = vec![Some(0u32); 12];
        let img = serving_map_ppm(&serving, 4, 3);
        assert!(img.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(img.len(), b"P6\n4 3\n255\n".len() + 36);
    }

    #[test]
    fn unserved_is_black_served_is_not() {
        let serving = vec![None, Some(3u32)];
        let img = serving_map_ppm(&serving, 2, 1);
        let body = &img[b"P6\n2 1\n255\n".len()..];
        assert_eq!(&body[0..3], &[0, 0, 0]);
        assert!(body[3] >= 64 && body[4] >= 64 && body[5] >= 64);
    }

    #[test]
    fn sector_colors_are_stable_and_distinct_enough() {
        assert_eq!(sector_color(7), sector_color(7));
        assert_ne!(sector_color(1), sector_color(2));
    }
}
