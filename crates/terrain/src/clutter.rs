//! Land-use (clutter) synthesis.
//!
//! Clutter drives two things in the reproduction, mirroring how Atoll data
//! is built (paper §4.2): a per-class excess propagation loss, and an
//! optional UE-density weight (the paper's "finer-grain UE distribution"
//! future-work extension).
//!
//! The generator arranges classes by distance from one or more urban
//! cores, perturbed by value noise so boundaries are organic: dense urban
//! at the core, urban, then suburban ring, then open/forest countryside,
//! with noise-carved water bodies.

use crate::noise::value_noise;
use magus_geo::{GridMap, GridSpec, PointM};
use serde::{Deserialize, Serialize};

/// Land-use class of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClutterClass {
    /// Open water — lowest propagation loss, no users.
    Water,
    /// Open fields / farmland.
    Open,
    /// Forest / heavy foliage.
    Forest,
    /// Low-density residential.
    Suburban,
    /// Mid-rise urban.
    Urban,
    /// High-rise urban core.
    DenseUrban,
}

impl ClutterClass {
    /// All classes, ordered from least to most built-up.
    pub const ALL: [ClutterClass; 6] = [
        ClutterClass::Water,
        ClutterClass::Open,
        ClutterClass::Forest,
        ClutterClass::Suburban,
        ClutterClass::Urban,
        ClutterClass::DenseUrban,
    ];

    /// Typical excess propagation loss for the class in dB, added on top
    /// of the distance-based Standard Propagation Model term. Values are
    /// in line with published COST-231 clutter corrections.
    pub fn excess_loss_db(self) -> f64 {
        match self {
            ClutterClass::Water => -2.0,
            ClutterClass::Open => 0.0,
            ClutterClass::Forest => 8.0,
            ClutterClass::Suburban => 6.0,
            ClutterClass::Urban => 12.0,
            ClutterClass::DenseUrban => 18.0,
        }
    }

    /// Relative user-density weight of the class (dimensionless), used by
    /// the clutter-weighted UE distribution extension.
    pub fn ue_density_weight(self) -> f64 {
        match self {
            ClutterClass::Water => 0.0,
            ClutterClass::Open => 0.2,
            ClutterClass::Forest => 0.05,
            ClutterClass::Suburban => 1.0,
            ClutterClass::Urban => 3.0,
            ClutterClass::DenseUrban => 6.0,
        }
    }
}

/// Parameters for clutter synthesis.
#[derive(Debug, Clone)]
pub struct ClutterParams {
    /// Urban core centers (meters). Empty = fully rural area.
    pub cores: Vec<PointM>,
    /// Radius of the dense-urban zone around each core, meters.
    pub dense_urban_radius_m: f64,
    /// Radius of the urban zone, meters.
    pub urban_radius_m: f64,
    /// Radius of the suburban ring, meters.
    pub suburban_radius_m: f64,
    /// Fraction (0–1) of countryside carved into forest by noise.
    pub forest_fraction: f64,
    /// Fraction (0–1) of the lowest-noise cells carved into water.
    pub water_fraction: f64,
    /// Amplitude (meters) of the noise perturbation of ring boundaries.
    pub boundary_jitter_m: f64,
}

impl Default for ClutterParams {
    fn default() -> Self {
        ClutterParams {
            cores: vec![PointM::new(0.0, 0.0)],
            dense_urban_radius_m: 1_500.0,
            urban_radius_m: 4_000.0,
            suburban_radius_m: 12_000.0,
            forest_fraction: 0.25,
            water_fraction: 0.05,
            boundary_jitter_m: 1_200.0,
        }
    }
}

impl ClutterParams {
    /// No cores at all — open countryside with forest and water.
    pub fn rural() -> Self {
        ClutterParams {
            cores: vec![],
            forest_fraction: 0.35,
            ..ClutterParams::default()
        }
    }

    /// A single large metropolitan core (most of the area urban).
    pub fn metropolitan(core: PointM) -> Self {
        ClutterParams {
            cores: vec![core],
            dense_urban_radius_m: 3_000.0,
            urban_radius_m: 8_000.0,
            suburban_radius_m: 20_000.0,
            water_fraction: 0.03,
            ..ClutterParams::default()
        }
    }
}

/// A clutter raster with nearest-cell sampling.
#[derive(Debug, Clone)]
pub struct ClutterMap {
    map: GridMap<ClutterClass>,
}

impl ClutterMap {
    /// Generates clutter over `spec` from `seed`.
    pub fn generate(spec: GridSpec, seed: u64, params: &ClutterParams) -> ClutterMap {
        let jitter_seed = seed ^ 0x0C1A_55E5;
        let carve_seed = seed ^ 0xF0_0D5;
        let map = GridMap::from_fn(spec, |c| {
            let p = spec.center_of(c);
            // Distance to nearest core, perturbed so rings are organic.
            let core_dist = params
                .cores
                .iter()
                .map(|core| core.distance(p))
                .fold(f64::INFINITY, f64::min);
            let jitter = (value_noise(jitter_seed, c.x as f64, c.y as f64, 0.05, 4) - 0.5)
                * 2.0
                * params.boundary_jitter_m;
            let d = core_dist + jitter;
            if d < params.dense_urban_radius_m {
                return ClutterClass::DenseUrban;
            }
            if d < params.urban_radius_m {
                return ClutterClass::Urban;
            }
            if d < params.suburban_radius_m {
                return ClutterClass::Suburban;
            }
            // Countryside: carve water in the lowest noise band, forest in
            // the highest. Multi-octave value noise concentrates around
            // 0.5, so stretch the contrast to restore usable tails before
            // thresholding.
            let raw = value_noise(carve_seed, c.x as f64, c.y as f64, 0.04, 4);
            let n = (0.5 + (raw - 0.5) * 2.5).clamp(0.0, 1.0);
            if n < params.water_fraction {
                ClutterClass::Water
            } else if n > 1.0 - params.forest_fraction {
                ClutterClass::Forest
            } else {
                ClutterClass::Open
            }
        });
        ClutterMap { map }
    }

    /// A raster with one class everywhere.
    pub fn uniform(spec: GridSpec, class: ClutterClass) -> ClutterMap {
        ClutterMap {
            map: GridMap::filled(spec, class),
        }
    }

    /// Class at a geographic point (nearest cell, clamped to the raster).
    pub fn sample(&self, p: PointM) -> ClutterClass {
        let spec = self.map.spec();
        let x = (((p.x - spec.origin.x) / spec.cell_size).floor() as i64)
            .clamp(0, spec.width as i64 - 1) as u32;
        let y = (((p.y - spec.origin.y) / spec.cell_size).floor() as i64)
            .clamp(0, spec.height as i64 - 1) as u32;
        *self.map.get(magus_geo::GridCoord::new(x, y))
    }

    /// The underlying raster.
    pub fn raster(&self) -> &GridMap<ClutterClass> {
        &self.map
    }

    /// Fraction of cells with the given class.
    pub fn fraction(&self, class: ClutterClass) -> f64 {
        let n = self.map.as_slice().iter().filter(|&&c| c == class).count();
        n as f64 / self.map.spec().len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::centered(PointM::new(0.0, 0.0), 100.0, 30_000.0)
    }

    #[test]
    fn core_is_dense_urban() {
        let cm = ClutterMap::generate(spec(), 3, &ClutterParams::default());
        assert_eq!(cm.sample(PointM::new(0.0, 0.0)), ClutterClass::DenseUrban);
    }

    #[test]
    fn rural_params_have_no_urban() {
        let cm = ClutterMap::generate(spec(), 3, &ClutterParams::rural());
        assert_eq!(cm.fraction(ClutterClass::DenseUrban), 0.0);
        assert_eq!(cm.fraction(ClutterClass::Urban), 0.0);
        assert!(cm.fraction(ClutterClass::Open) > 0.3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let cm = ClutterMap::generate(spec(), 8, &ClutterParams::default());
        let total: f64 = ClutterClass::ALL.iter().map(|&c| cm.fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn water_fraction_is_respected_roughly() {
        let params = ClutterParams::rural();
        let cm = ClutterMap::generate(spec(), 5, &params);
        let w = cm.fraction(ClutterClass::Water);
        // Value noise is not perfectly uniform; just verify the knob works.
        assert!(w > 0.0 && w < params.water_fraction * 4.0, "water {w}");
    }

    #[test]
    fn metropolitan_is_more_urban_than_default() {
        let d = ClutterMap::generate(spec(), 5, &ClutterParams::default());
        let m = ClutterMap::generate(
            spec(),
            5,
            &ClutterParams::metropolitan(PointM::new(0.0, 0.0)),
        );
        let urb = |cm: &ClutterMap| {
            cm.fraction(ClutterClass::Urban) + cm.fraction(ClutterClass::DenseUrban)
        };
        assert!(urb(&m) > urb(&d));
    }

    #[test]
    fn excess_loss_ordering() {
        assert!(
            ClutterClass::DenseUrban.excess_loss_db() > ClutterClass::Suburban.excess_loss_db()
        );
        assert!(ClutterClass::Suburban.excess_loss_db() > ClutterClass::Open.excess_loss_db());
        assert!(ClutterClass::Water.excess_loss_db() <= ClutterClass::Open.excess_loss_db());
    }

    #[test]
    fn density_weights_nonnegative() {
        for c in ClutterClass::ALL {
            assert!(c.ue_density_weight() >= 0.0);
        }
        assert_eq!(ClutterClass::Water.ue_density_weight(), 0.0);
    }
}
