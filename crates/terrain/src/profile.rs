//! Elevation profiles along radio paths.
//!
//! Knife-edge diffraction needs the terrain heights between transmitter
//! and receiver. [`sample_profile`] returns evenly spaced elevation
//! samples along the straight line between two points (endpoints
//! excluded — the radio endpoints have their own antenna heights).

use crate::elevation::ElevationMap;
use magus_geo::PointM;

/// Samples `n` interior elevations along the segment `a → b`.
///
/// Sample `i` (0-based) sits at fraction `(i + 1) / (n + 1)` of the way
/// from `a` to `b`, so the endpoints themselves are never included.
/// Returns an empty vector when `n == 0` or the points coincide.
pub fn sample_profile(elevation: &ElevationMap, a: PointM, b: PointM, n: usize) -> Vec<f64> {
    if n == 0 || (a.x == b.x && a.y == b.y) {
        return Vec::new();
    }
    (1..=n)
        .map(|i| {
            let t = i as f64 / (n + 1) as f64;
            elevation.sample(PointM::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elevation::{ElevationMap, TerrainParams};
    use magus_geo::GridSpec;

    fn flat(height: f64) -> ElevationMap {
        ElevationMap::flat(GridSpec::new(PointM::new(0.0, 0.0), 100.0, 50, 50), height)
    }

    #[test]
    fn flat_profile_is_constant() {
        let e = flat(37.0);
        let prof = sample_profile(
            &e,
            PointM::new(100.0, 100.0),
            PointM::new(4000.0, 3000.0),
            10,
        );
        assert_eq!(prof.len(), 10);
        assert!(prof.iter().all(|&h| (h - 37.0).abs() < 1e-9));
    }

    #[test]
    fn zero_samples_or_degenerate_segment() {
        let e = flat(0.0);
        assert!(sample_profile(&e, PointM::new(0.0, 0.0), PointM::new(1.0, 1.0), 0).is_empty());
        let p = PointM::new(5.0, 5.0);
        assert!(sample_profile(&e, p, p, 8).is_empty());
    }

    #[test]
    fn profile_excludes_endpoints() {
        // With real terrain, the first sample should be strictly between
        // the endpoints: verify via symmetry of sample positions.
        let spec = GridSpec::new(PointM::new(0.0, 0.0), 100.0, 64, 64);
        let e = ElevationMap::generate(spec, 7, &TerrainParams::default());
        let a = PointM::new(200.0, 200.0);
        let b = PointM::new(6000.0, 5000.0);
        let fwd = sample_profile(&e, a, b, 9);
        let mut rev = sample_profile(&e, b, a, 9);
        rev.reverse();
        for (f, r) in fwd.iter().zip(rev.iter()) {
            assert!((f - r).abs() < 1e-9);
        }
    }
}
