//! Fractal terrain elevation.
//!
//! A diamond-square heightfield is generated on an internal power-of-two
//! lattice and resampled (bilinearly) onto the caller's [`GridSpec`]. The
//! diamond-square midpoint-displacement algorithm gives the 1/f-style
//! roughness spectrum typical of real topography, which is what produces
//! the irregular path-loss contours of the paper's Figure 3 once
//! diffraction is applied.

use crate::noise::value_noise;
use magus_geo::{GridCoord, GridMap, GridSpec, PointM};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters controlling terrain generation.
#[derive(Debug, Clone)]
pub struct TerrainParams {
    /// Peak-to-peak elevation range in meters of the base fractal.
    pub relief_m: f64,
    /// Roughness in `(0, 1]`: the factor by which displacement amplitude
    /// decays per diamond-square level. Higher = craggier.
    pub roughness: f64,
    /// Internal lattice size exponent: the fractal is generated on a
    /// `(2^n + 1)²` lattice. 7 (129×129) is plenty for 10–60 km areas.
    pub lattice_exp: u32,
    /// Amplitude (meters) of fine value-noise detail added on top of the
    /// fractal so that resampling onto fine grids does not look faceted.
    pub detail_m: f64,
}

impl Default for TerrainParams {
    fn default() -> Self {
        TerrainParams {
            relief_m: 120.0,
            roughness: 0.55,
            lattice_exp: 7,
            detail_m: 8.0,
        }
    }
}

impl TerrainParams {
    /// Gentle rolling terrain (suburban-plains flavor).
    pub fn rolling() -> Self {
        TerrainParams {
            relief_m: 60.0,
            roughness: 0.5,
            ..TerrainParams::default()
        }
    }

    /// Pronounced hills (rural-highlands flavor) — strong diffraction.
    pub fn hilly() -> Self {
        TerrainParams {
            relief_m: 350.0,
            roughness: 0.65,
            ..TerrainParams::default()
        }
    }
}

/// An elevation raster with bilinear sampling.
#[derive(Debug, Clone)]
pub struct ElevationMap {
    map: GridMap<f64>,
}

impl ElevationMap {
    /// Generates an elevation map over `spec` from `seed`.
    pub fn generate(spec: GridSpec, seed: u64, params: &TerrainParams) -> ElevationMap {
        let lattice = diamond_square(seed, params);
        let n = lattice.len() - 1; // lattice is (n+1) x (n+1)
        let w = spec.width as f64;
        let h = spec.height as f64;
        let detail_seed = seed ^ 0xD17A_1125;
        let map = GridMap::from_fn(spec, |c| {
            // Map grid coords to lattice space [0, n].
            let lx = c.x as f64 / w * n as f64;
            let ly = c.y as f64 / h * n as f64;
            let base = bilinear(&lattice, lx, ly);
            let detail = (value_noise(detail_seed, c.x as f64, c.y as f64, 0.11, 3) - 0.5)
                * 2.0
                * params.detail_m;
            (base * params.relief_m + detail).max(0.0)
        });
        ElevationMap { map }
    }

    /// A constant-elevation map.
    pub fn flat(spec: GridSpec, elevation_m: f64) -> ElevationMap {
        ElevationMap {
            map: GridMap::filled(spec, elevation_m),
        }
    }

    /// Elevation at a geographic point, clamped to the raster edge.
    pub fn sample(&self, p: PointM) -> f64 {
        let spec = self.map.spec();
        let fx = ((p.x - spec.origin.x) / spec.cell_size - 0.5).clamp(0.0, (spec.width - 1) as f64);
        let fy =
            ((p.y - spec.origin.y) / spec.cell_size - 0.5).clamp(0.0, (spec.height - 1) as f64);
        let x0 = fx.floor() as u32;
        let y0 = fy.floor() as u32;
        let x1 = (x0 + 1).min(spec.width - 1);
        let y1 = (y0 + 1).min(spec.height - 1);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let v00 = *self.map.get(GridCoord::new(x0, y0));
        let v10 = *self.map.get(GridCoord::new(x1, y0));
        let v01 = *self.map.get(GridCoord::new(x0, y1));
        let v11 = *self.map.get(GridCoord::new(x1, y1));
        let a = v00 + (v10 - v00) * tx;
        let b = v01 + (v11 - v01) * tx;
        a + (b - a) * ty
    }

    /// The underlying raster.
    pub fn raster(&self) -> &GridMap<f64> {
        &self.map
    }
}

/// Bilinear interpolation on a square lattice stored as rows of equal
/// length; coordinates are clamped to the lattice.
fn bilinear(lattice: &[Vec<f64>], x: f64, y: f64) -> f64 {
    let n = lattice.len() - 1;
    let x = x.clamp(0.0, n as f64);
    let y = y.clamp(0.0, n as f64);
    let x0 = x.floor() as usize;
    let y0 = y.floor() as usize;
    let x1 = (x0 + 1).min(n);
    let y1 = (y0 + 1).min(n);
    let tx = x - x0 as f64;
    let ty = y - y0 as f64;
    let a = lattice[y0][x0] + (lattice[y0][x1] - lattice[y0][x0]) * tx;
    let b = lattice[y1][x0] + (lattice[y1][x1] - lattice[y1][x0]) * tx;
    a + (b - a) * ty
}

/// Classic diamond-square on a `(2^exp + 1)²` lattice, normalized to
/// `[0, 1]`.
fn diamond_square(seed: u64, params: &TerrainParams) -> Vec<Vec<f64>> {
    let n = 1usize << params.lattice_exp;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut grid = vec![vec![0.0f64; n + 1]; n + 1];
    // Seed the corners.
    for &(y, x) in &[(0, 0), (0, n), (n, 0), (n, n)] {
        grid[y][x] = rng.random_range(0.0..1.0);
    }
    let mut step = n;
    let mut amp = 0.5f64;
    while step > 1 {
        let half = step / 2;
        // Diamond step: centers of squares.
        for y in (half..n).step_by(step) {
            for x in (half..n).step_by(step) {
                let avg = (grid[y - half][x - half]
                    + grid[y - half][x + half]
                    + grid[y + half][x - half]
                    + grid[y + half][x + half])
                    / 4.0;
                grid[y][x] = avg + rng.random_range(-amp..amp);
            }
        }
        // Square step: edge midpoints.
        for y in (0..=n).step_by(half) {
            let x_start = if (y / half) % 2 == 0 { half } else { 0 };
            for x in (x_start..=n).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if y >= half {
                    sum += grid[y - half][x];
                    cnt += 1.0;
                }
                if y + half <= n {
                    sum += grid[y + half][x];
                    cnt += 1.0;
                }
                if x >= half {
                    sum += grid[y][x - half];
                    cnt += 1.0;
                }
                if x + half <= n {
                    sum += grid[y][x + half];
                    cnt += 1.0;
                }
                grid[y][x] = sum / cnt + rng.random_range(-amp..amp);
            }
        }
        step = half;
        amp *= params.roughness;
    }
    // Normalize to [0, 1].
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for row in &grid {
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-12);
    for row in &mut grid {
        for v in row.iter_mut() {
            *v = (*v - lo) / span;
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::new(PointM::new(0.0, 0.0), 100.0, 100, 100)
    }

    #[test]
    fn elevation_in_expected_range() {
        let p = TerrainParams::default();
        let e = ElevationMap::generate(spec(), 9, &p);
        let (lo, hi) = e.raster().finite_range().unwrap();
        assert!(lo >= 0.0);
        assert!(hi <= p.relief_m + p.detail_m + 1e-9, "hi={hi}");
        // A fractal should actually use a good part of its range.
        assert!(hi - lo > p.relief_m * 0.3, "range {lo}..{hi} too flat");
    }

    #[test]
    fn sample_matches_cell_centers() {
        let e = ElevationMap::generate(spec(), 4, &TerrainParams::default());
        for c in [
            GridCoord::new(0, 0),
            GridCoord::new(50, 7),
            GridCoord::new(99, 99),
        ] {
            let p = spec().center_of(c);
            let direct = *e.raster().get(c);
            assert!((e.sample(p) - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_clamps_outside_raster() {
        let e = ElevationMap::generate(spec(), 4, &TerrainParams::default());
        let inside = e.sample(spec().center_of(GridCoord::new(0, 0)));
        let outside = e.sample(PointM::new(-10_000.0, -10_000.0));
        assert_eq!(inside, outside);
    }

    #[test]
    fn terrain_is_spatially_correlated() {
        // Neighbor cells should be far more similar than random pairs.
        let e = ElevationMap::generate(spec(), 21, &TerrainParams::default());
        let mut neighbor_diff = 0.0;
        let mut cnt = 0.0;
        for y in 0..99 {
            for x in 0..99 {
                let a = *e.raster().get(GridCoord::new(x, y));
                let b = *e.raster().get(GridCoord::new(x + 1, y));
                neighbor_diff += (a - b).abs();
                cnt += 1.0;
            }
        }
        neighbor_diff /= cnt;
        let (lo, hi) = e.raster().finite_range().unwrap();
        assert!(
            neighbor_diff < (hi - lo) * 0.12,
            "neighbor diff {neighbor_diff} vs range {}",
            hi - lo
        );
    }

    #[test]
    fn presets_have_expected_relief_ordering() {
        assert!(TerrainParams::hilly().relief_m > TerrainParams::default().relief_m);
        assert!(TerrainParams::rolling().relief_m < TerrainParams::default().relief_m);
    }
}
