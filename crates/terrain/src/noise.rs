//! Seed-stable procedural noise.
//!
//! Two primitives:
//!
//! * [`hash01`] — a per-cell hash mapped to `[0, 1)`. Pure function of
//!   `(seed, x, y)`, so the same cell always gets the same draw; this is
//!   what makes lognormal shadowing *spatially consistent* (re-evaluating
//!   the model never re-rolls the environment).
//! * [`value_noise`] — smooth multi-octave value noise built on the hash,
//!   used for clutter texture and elevation detail.
//!
//! The hash is SplitMix64-style: fast, well distributed, and identical on
//! every platform (no floating-point trigonometry involved).

/// Mixes a 64-bit value through the SplitMix64 finalizer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic hash of an integer lattice cell to `[0, 1)`.
#[inline]
pub fn hash01(seed: u64, x: i64, y: i64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(x as u64) ^ splitmix64((y as u64).rotate_left(32)));
    // Use the top 53 bits for a uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic hash of a lattice cell to a standard-normal-ish value.
///
/// Uses the sum of four uniforms (Irwin–Hall), rescaled to unit variance —
/// plenty for shadowing, which is itself only log-normally *approximate*
/// in reality, and avoids platform-dependent `ln`/`cos` corner cases of
/// Box–Muller at the 0 boundary.
#[inline]
pub fn hash_normal(seed: u64, x: i64, y: i64) -> f64 {
    let s = hash01(seed, x, y)
        + hash01(seed ^ 0xA5A5_A5A5, x, y)
        + hash01(seed ^ 0x5A5A_5A5A, x, y)
        + hash01(seed ^ 0x0F0F_F0F0, x, y);
    // Sum of 4 U(0,1): mean 2, variance 4/12 = 1/3.
    (s - 2.0) * (3.0f64).sqrt()
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Single-octave value noise at continuous coordinates (lattice spacing 1).
fn value_noise_octave(seed: u64, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = smoothstep(x - x0);
    let ty = smoothstep(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = hash01(seed, xi, yi);
    let v10 = hash01(seed, xi + 1, yi);
    let v01 = hash01(seed, xi, yi + 1);
    let v11 = hash01(seed, xi + 1, yi + 1);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Multi-octave value noise in `[0, 1]` (approximately).
///
/// * `base_freq` — lattice frequency of the first octave (cycles per unit
///   of `x`/`y`).
/// * `octaves` — number of octaves; each successive octave doubles the
///   frequency and halves the amplitude.
pub fn value_noise(seed: u64, x: f64, y: f64, base_freq: f64, octaves: u32) -> f64 {
    let mut total = 0.0;
    let mut amp = 1.0;
    let mut freq = base_freq;
    let mut norm = 0.0;
    for o in 0..octaves {
        total += amp
            * value_noise_octave(
                seed.wrapping_add(o as u64 * 0x1234_5678_9ABC),
                x * freq,
                y * freq,
            );
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    total / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash01_in_unit_interval() {
        for i in 0..10_000i64 {
            let v = hash01(7, i, i * 31 + 5);
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn hash01_deterministic_and_seed_sensitive() {
        assert_eq!(hash01(1, 10, 20), hash01(1, 10, 20));
        assert_ne!(hash01(1, 10, 20), hash01(2, 10, 20));
        assert_ne!(hash01(1, 10, 20), hash01(1, 11, 20));
        assert_ne!(hash01(1, 10, 20), hash01(1, 10, 21));
    }

    #[test]
    fn hash01_mean_is_roughly_half() {
        let n = 50_000;
        let mean: f64 = (0..n).map(|i| hash01(99, i, -i * 7)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn hash_normal_moments() {
        let n = 50_000;
        let vals: Vec<f64> = (0..n).map(|i| hash_normal(3, i, i / 3)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn value_noise_is_smooth() {
        // Adjacent samples at a fine step should differ far less than the
        // full range — this catches accidental per-sample hashing.
        let mut max_step = 0.0f64;
        for i in 0..1000 {
            let x = i as f64 * 0.01;
            let a = value_noise(5, x, 0.3, 0.5, 4);
            let b = value_noise(5, x + 0.01, 0.3, 0.5, 4);
            max_step = max_step.max((a - b).abs());
        }
        assert!(max_step < 0.1, "max adjacent step {max_step}");
    }

    #[test]
    fn value_noise_range() {
        for i in 0..2000 {
            let v = value_noise(11, i as f64 * 0.37, i as f64 * 0.11, 0.25, 5);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}
