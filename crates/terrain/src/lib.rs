//! Deterministic synthetic geography for the Magus reproduction.
//!
//! The paper drives its model with Atoll path-loss matrices that bake in
//! "terrain, buildings, foliage, etc." (§4.2). We do not have that
//! proprietary data, so this crate synthesizes the geography those
//! matrices were derived from:
//!
//! * [`elevation`] — fractal terrain elevation (diamond-square), so path
//!   loss picks up knife-edge diffraction over ridgelines and the
//!   irregular contours visible in the paper's Figure 3.
//! * [`clutter`] — land-use classes (water / open / forest / suburban /
//!   urban / dense-urban) arranged around one or more urban cores, feeding
//!   per-class clutter losses and optionally UE density weighting.
//! * [`noise`] — seed-stable hash noise used for spatially-consistent
//!   lognormal shadowing and clutter texture. The same (seed, cell) always
//!   produces the same value on every platform, which is what makes whole
//!   experiments reproducible from a single `u64`.
//!
//! Everything is generated from an explicit seed; there is no global RNG.

#![forbid(unsafe_code)]

pub mod clutter;
pub mod elevation;
pub mod noise;
pub mod profile;

pub use clutter::{ClutterClass, ClutterMap, ClutterParams};
pub use elevation::{ElevationMap, TerrainParams};
pub use noise::{hash01, value_noise};
pub use profile::sample_profile;

use magus_geo::{GridSpec, PointM};

/// A complete synthetic geography: elevation plus clutter over a common
/// raster.
#[derive(Debug, Clone)]
pub struct Terrain {
    elevation: ElevationMap,
    clutter: ClutterMap,
}

impl Terrain {
    /// Generates terrain for `spec` from an explicit seed and parameters.
    pub fn generate(
        spec: GridSpec,
        seed: u64,
        terrain: &TerrainParams,
        clutter: &ClutterParams,
    ) -> Terrain {
        let elevation = ElevationMap::generate(spec, seed, terrain);
        let clutter = ClutterMap::generate(spec, seed.wrapping_add(0x9E3779B97F4A7C15), clutter);
        Terrain { elevation, clutter }
    }

    /// Perfectly flat, open terrain — useful for tests and for isolating
    /// the pure propagation model from geography effects.
    pub fn flat(spec: GridSpec) -> Terrain {
        Terrain {
            elevation: ElevationMap::flat(spec, 0.0),
            clutter: ClutterMap::uniform(spec, ClutterClass::Open),
        }
    }

    /// Elevation in meters at a geographic point (bilinear, clamped at the
    /// raster edge).
    pub fn elevation_at(&self, p: PointM) -> f64 {
        self.elevation.sample(p)
    }

    /// Clutter class at a geographic point (nearest cell, clamped).
    pub fn clutter_at(&self, p: PointM) -> ClutterClass {
        self.clutter.sample(p)
    }

    /// The elevation raster.
    pub fn elevation(&self) -> &ElevationMap {
        &self.elevation
    }

    /// The clutter raster.
    pub fn clutter(&self) -> &ClutterMap {
        &self.clutter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::GridSpec;

    fn spec() -> GridSpec {
        GridSpec::new(PointM::new(0.0, 0.0), 100.0, 64, 64)
    }

    #[test]
    fn generation_is_deterministic() {
        let tp = TerrainParams::default();
        let cp = ClutterParams::default();
        let a = Terrain::generate(spec(), 42, &tp, &cp);
        let b = Terrain::generate(spec(), 42, &tp, &cp);
        for c in spec().coords() {
            let p = spec().center_of(c);
            assert_eq!(a.elevation_at(p), b.elevation_at(p));
            assert_eq!(a.clutter_at(p), b.clutter_at(p));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let tp = TerrainParams::default();
        let cp = ClutterParams::default();
        let a = Terrain::generate(spec(), 1, &tp, &cp);
        let b = Terrain::generate(spec(), 2, &tp, &cp);
        let differing = spec()
            .coords()
            .filter(|&c| {
                let p = spec().center_of(c);
                a.elevation_at(p) != b.elevation_at(p)
            })
            .count();
        assert!(
            differing > spec().len() / 2,
            "only {differing} cells differ"
        );
    }

    #[test]
    fn flat_terrain_is_flat_and_open() {
        let t = Terrain::flat(spec());
        let p = PointM::new(3210.0, 987.0);
        assert_eq!(t.elevation_at(p), 0.0);
        assert_eq!(t.clutter_at(p), ClutterClass::Open);
    }
}
