//! Shared harness for the table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). They share:
//!
//! * **Scale control** — `MAGUS_SCALE=tiny|eval|full` selects market
//!   size. `tiny` smoke-runs in seconds, `eval` (the default) reproduces
//!   the paper's *shapes* in minutes, `full` uses the paper's raster
//!   resolution (100 m cells, 24 km analysis regions).
//! * **Market construction** — the per-area-type presets with per-seed
//!   replicas (the paper evaluates 3 areas of each type; we mirror that
//!   with seeds 1..=3).
//! * **Artifact output** — results are printed as aligned text *and*
//!   written as JSON under `target/magus-results/` so EXPERIMENTS.md can
//!   cite exact numbers.

#![forbid(unsafe_code)]

use magus_net::{AreaType, Market, MarketParams};
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale, from `MAGUS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test size (coarse cells, small region).
    Tiny,
    /// Default: paper-shaped results in minutes.
    Eval,
    /// Paper-resolution rasters.
    Full,
}

impl Scale {
    /// Reads `MAGUS_SCALE` (default [`Scale::Eval`]).
    pub fn from_env() -> Scale {
        match std::env::var("MAGUS_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("full") => Scale::Full,
            _ => Scale::Eval,
        }
    }
}

/// Market parameters for an area type at a scale.
pub fn market_params(area: AreaType, seed: u64, scale: Scale) -> MarketParams {
    match scale {
        Scale::Tiny => MarketParams::tiny(area, seed),
        Scale::Full => MarketParams::preset(area, seed),
        Scale::Eval => {
            let mut p = MarketParams::preset(area, seed);
            p.cell_size_m = 150.0;
            p.analysis_span_m = 18_000.0;
            p.tuning_span_m = 8_000.0;
            p.footprint_span_m = p.footprint_span_m.min(9_000.0);
            p.spm.diffraction_samples = 8;
            p
        }
    }
}

/// Generates (and logs) a market.
pub fn build_market(area: AreaType, seed: u64, scale: Scale) -> Market {
    let t0 = std::time::Instant::now();
    let market = Market::generate(market_params(area, seed, scale));
    eprintln!(
        "[setup] {area} market seed {seed}: {} sectors, {} grids ({:.1}s)",
        market.network().num_sectors(),
        market.spec().len(),
        t0.elapsed().as_secs_f64()
    );
    market
}

/// Seeds used for the per-type market replicas (the paper's "3 different
/// rural areas, suburban areas and urban areas").
pub const AREA_SEEDS: [u64; 3] = [1, 2, 3];

/// Directory for JSON artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/magus-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON artifact and reports the path.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    eprintln!("[artifact] {}", path.display());
}

/// Wires the observability layer from the environment: `MAGUS_OBS`
/// picks the level (`off|counters|full`); `MAGUS_TRACE_OUT` streams
/// JSONL trace records to the given path and implies the full level
/// unless `MAGUS_OBS` overrides it. The table/figure binaries call this
/// first so a run can be re-examined record by record.
pub fn init_obs_from_env() {
    let trace = std::env::var_os("MAGUS_TRACE_OUT");
    match std::env::var("MAGUS_OBS").ok().map(|s| s.parse()) {
        Some(Ok(level)) => magus_obs::set_level(level),
        Some(Err(_)) => eprintln!("[obs] MAGUS_OBS not off|counters|full; leaving level as-is"),
        None if trace.is_some() => magus_obs::set_level(magus_obs::ObsLevel::Full),
        None => {}
    }
    if let Some(path) = trace {
        if let Err(e) = magus_obs::set_trace_path(std::path::Path::new(&path)) {
            eprintln!("[obs] cannot open MAGUS_TRACE_OUT: {e}");
        }
    }
}

/// Emits a `paper.expectation` trace record comparing a value the paper
/// reports with the value this run produced. The record is the triage
/// trail for shape-test drift: no tolerance is hidden here, the reader
/// sees both numbers.
pub fn emit_expectation(experiment: &str, metric: &str, expected: f64, actual: f64) {
    magus_obs::trace_event!("paper.expectation",
        "experiment" => experiment,
        "metric" => metric,
        "expected" => expected,
        "actual" => actual,
        "abs_delta" => (actual - expected).abs(),
    );
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Empirical CDF points `(value, fraction ≤ value)` of a sample.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let c = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.last().unwrap().1, 1.0);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn scale_default_is_eval() {
        // Note: other tests may set the var; just exercise the parse.
        assert_eq!(Scale::from_env(), Scale::from_env());
    }

    #[test]
    fn eval_params_are_smaller_than_full() {
        let eval = market_params(AreaType::Suburban, 1, Scale::Eval);
        let full = market_params(AreaType::Suburban, 1, Scale::Full);
        assert!(eval.analysis_span_m < full.analysis_span_m);
        assert!(eval.cell_size_m > full.cell_size_m);
    }
}

/// Iterates the evaluation grid — every (area type, seed) market — with
/// the standard model built once per market. The closure receives each
/// market exactly once; scenario iteration is the caller's business.
pub fn for_each_market(
    scale: Scale,
    mut f: impl FnMut(AreaType, u64, &Market, &magus_model::StandardModel),
) {
    for area in AreaType::ALL {
        for &seed in &AREA_SEEDS {
            let market = build_market(area, seed, scale);
            let model = magus_model::standard_setup(&market, magus_lte::Bandwidth::Mhz10);
            f(area, seed, &market, &model);
        }
    }
}

/// Parallel variant of [`for_each_market`]: builds the 9 (area, seed)
/// markets on [`magus_exec::map_indexed`] workers (thread count from
/// [`magus_exec::threads`], i.e. `--threads` / `MAGUS_THREADS`) and maps
/// each through `f`. Results come back in the same deterministic
/// (area, seed) order as the sequential version — only the wall-clock
/// differs. The simulation itself is single-threaded per market;
/// parallelism is across markets, which is where Table 1's wall-clock
/// goes.
pub fn map_markets_parallel<T: Send>(
    scale: Scale,
    f: impl Fn(AreaType, u64, &Market, &magus_model::StandardModel) -> T + Sync,
) -> Vec<(AreaType, u64, T)> {
    let jobs: Vec<(AreaType, u64)> = AreaType::ALL
        .iter()
        .flat_map(|&a| AREA_SEEDS.iter().map(move |&s| (a, s)))
        .collect();
    magus_exec::map_indexed(jobs.len(), magus_exec::threads(), |i| {
        let (area, seed) = jobs[i];
        let market = build_market(area, seed, scale);
        let model = magus_model::standard_setup(&market, magus_lte::Bandwidth::Mhz10);
        (area, seed, f(area, seed, &market, &model))
    })
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_and_coverage() {
        std::env::set_var("MAGUS_SCALE", "tiny");
        let out = map_markets_parallel(Scale::Tiny, |area, seed, market, _model| {
            (area.to_string(), seed, market.network().num_sectors())
        });
        assert_eq!(out.len(), 9);
        // Deterministic (area, seed) order.
        let expected: Vec<(String, u64)> = AreaType::ALL
            .iter()
            .flat_map(|a| AREA_SEEDS.iter().map(move |&s| (a.to_string(), s)))
            .collect();
        let got: Vec<(String, u64)> = out.iter().map(|(a, s, _)| (a.to_string(), *s)).collect();
        assert_eq!(got, expected);
        // Sector counts all positive.
        assert!(out.iter().all(|(_, _, (_, _, n))| *n > 0));
    }
}
