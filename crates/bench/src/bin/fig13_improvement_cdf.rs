//! **Figure 13**: CDF of the improvement ratio of Magus's Algorithm 1
//! over the naive per-neighbor greedy baseline, across all 27 scenarios
//! (3 area types × 3 market replicas × 3 upgrade scenarios).
//!
//! Paper: "our algorithm is no worse than the naive approach for 22 of
//! [27] scenarios (81%) … never below 0.9 … maximum 3.87 … overall 21%
//! better".

use magus_bench::{
    cdf, emit_expectation, init_obs_from_env, map_markets_parallel, mean, write_artifact, Scale,
};
use magus_core::{prepare_scenario, ExperimentConfig, TuningKind};
use magus_model::UtilityKind;
use magus_net::UpgradeScenario;
use serde::Serialize;

#[derive(Serialize)]
struct Sample {
    area: String,
    seed: u64,
    scenario: String,
    magus_recovery: f64,
    naive_recovery: f64,
    improvement_ratio: f64,
}

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let cfg = ExperimentConfig::default();
    let per_market = map_markets_parallel(scale, |area, seed, market, model| {
        let mut samples: Vec<Sample> = Vec::new();
        for scenario in UpgradeScenario::ALL {
            let prepared = prepare_scenario(model, market, scenario, &cfg);
            let magus = prepared.run(model, TuningKind::Power, &cfg);
            let naive = prepared.run_naive(model, &cfg);
            let rm = magus.recovery(UtilityKind::Performance);
            let rn = naive.recovery(UtilityKind::Performance);
            // Improvement ratio per the paper: Magus recovery over naive
            // recovery. Guard the degenerate no-recovery-anywhere case.
            let ratio = if rn.abs() < 1e-9 {
                if rm.abs() < 1e-9 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                rm / rn
            };
            eprintln!(
                "[run] {area} seed {seed} {scenario}: magus {:.1}% naive {:.1}% ratio {:.2}",
                rm * 100.0,
                rn * 100.0,
                ratio
            );
            samples.push(Sample {
                area: area.to_string(),
                seed,
                scenario: scenario.label().to_string(),
                magus_recovery: rm,
                naive_recovery: rn,
                improvement_ratio: ratio,
            });
        }
        samples
    });
    let samples: Vec<Sample> = per_market.into_iter().flat_map(|(_, _, s)| s).collect();

    let finite: Vec<f64> = samples
        .iter()
        .map(|s| s.improvement_ratio)
        .filter(|r| r.is_finite())
        .collect();
    println!(
        "\nFigure 13 — improvement ratio CDF (Magus / naive), {} scenarios\n",
        samples.len()
    );
    println!("{:>10} {:>8}", "ratio", "CDF");
    for (v, f) in cdf(&finite) {
        println!("{v:>10.3} {f:>8.2}");
    }
    let at_least_one = finite.iter().filter(|&&r| r >= 1.0 - 1e-9).count();
    println!(
        "\nMagus ≥ naive in {}/{} scenarios ({:.0}%); mean ratio {:.2}; max {:.2}; min {:.2}",
        at_least_one,
        finite.len(),
        at_least_one as f64 / finite.len().max(1) as f64 * 100.0,
        mean(&finite),
        finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        finite.iter().cloned().fold(f64::INFINITY, f64::min),
    );
    println!("Paper: ≥1 for 81% of scenarios, mean 1.21, max 3.87, min ≥ 0.9.");
    let frac_ge_1 = at_least_one as f64 / finite.len().max(1) as f64;
    emit_expectation(
        "fig13_improvement_cdf",
        "fraction with ratio >= 1",
        0.81,
        frac_ge_1,
    );
    emit_expectation(
        "fig13_improvement_cdf",
        "mean improvement ratio",
        1.21,
        mean(&finite),
    );
    emit_expectation(
        "fig13_improvement_cdf",
        "max improvement ratio",
        3.87,
        finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    write_artifact("fig13_improvement_cdf", &samples);
    let _ = magus_obs::flush_trace();
}
