//! **Figure 10**: the rural power-limit illustration — after the central
//! sector goes down, even a +10 dB boost on the closest neighbor (beyond
//! any real amplifier's headroom) cannot recover the lost coverage,
//! because rural links are noise-limited.

use magus_bench::{build_market, Scale};
use magus_geo::{Db, PointM};
use magus_lte::Bandwidth;
use magus_model::setup::setup_from_parts;
use magus_net::{AreaType, ConfigChange, UpgradeScenario};
use std::sync::Arc;

fn main() {
    let market = build_market(AreaType::Rural, 1, Scale::from_env());
    let targets = magus_net::upgrade_targets(&market, UpgradeScenario::SingleCentralSector);
    let target = targets[0];

    // Give every sector +10 dB of *hypothetical* headroom so the clamp
    // cannot mask the physics (the paper notes +10 dB "probably already
    // exceeds the maximum transmission power").
    let mut net = market.network().clone();
    let boosted: Vec<_> = net
        .sectors()
        .iter()
        .map(|s| {
            let mut s = *s;
            s.max_power = s.max_power + Db(10.0);
            s
        })
        .collect();
    net = magus_net::Network::new(boosted);
    let model = setup_from_parts(Arc::clone(market.store()), Arc::new(net), Bandwidth::Mhz10);
    let ev = &model.evaluator;

    let reference = ev.initial_state(&model.nominal);
    let mut state = ev.initial_state(&model.nominal);
    ev.apply(&mut state, ConfigChange::SetOnAir(target, false));

    // Grids the outage broke.
    let degraded = ev.degraded_grids(&reference, &state, None);
    let out_of_service: Vec<u32> = degraded
        .iter()
        .copied()
        .filter(|&g| state.rmax_bps(g as usize) <= 0.0 && reference.rmax_bps(g as usize) > 0.0)
        .collect();

    // Closest surviving neighbor.
    let tpos = ev.network().sector(target).site.position;
    let neighbor = ev
        .network()
        .sectors()
        .iter()
        .filter(|s| s.id != target && s.site.position.distance(tpos) > 1.0)
        .min_by(|a, b| {
            a.site
                .position
                .distance(tpos)
                .total_cmp(&b.site.position.distance(tpos))
        })
        .expect("neighbors exist")
        .id;

    ev.apply(&mut state, ConfigChange::PowerDelta(neighbor, Db(10.0)));

    let recovered: usize = out_of_service
        .iter()
        .filter(|&&g| state.rmax_bps(g as usize) > 0.0)
        .count();
    // Rate recovery *within the degraded set* (global utility would be
    // misleading: the boost also adds coverage outside the outage area).
    let still_degraded = degraded
        .iter()
        .filter(|&&g| state.rate_bps(g as usize) < reference.rate_bps(g as usize) - 1e-9)
        .count();

    println!("Figure 10 — rural coverage limit (scenario (a), +10 dB on nearest neighbor)");
    println!(
        "\ntarget sector {} at ({:.0}, {:.0}); nearest neighbor {} at {:.1} km",
        target.0,
        tpos.x,
        tpos.y,
        neighbor.0,
        ev.network().sector(neighbor).site.position.distance(tpos) / 1000.0
    );
    println!(
        "grids degraded by the outage: {}; knocked fully out of service: {}",
        degraded.len(),
        out_of_service.len()
    );
    println!(
        "out-of-service grids recovered by the +10 dB boost: {} ({:.1}%)",
        recovered,
        recovered as f64 / out_of_service.len().max(1) as f64 * 100.0
    );
    println!(
        "grids still degraded after the boost: {} of {} ({:.1}%)",
        still_degraded,
        degraded.len(),
        still_degraded as f64 / degraded.len().max(1) as f64 * 100.0
    );
    println!(
        "\nExpected shape: the overwhelming majority of the lost grids stay dark —\n\
         rural neighbors are noise-limited, power cannot buy back the coverage\n\
         (the motivation for the paper's Figure 10)."
    );
    if PointM::new(0.0, 0.0).distance(tpos) > market.params().analysis_span_m {
        eprintln!("warning: target unexpectedly far from region center");
    }
}
