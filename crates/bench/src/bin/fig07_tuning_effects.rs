//! **Figure 7**: how the two tuning knobs reshape coverage — (a) the
//! baseline path loss, (b) after a transmit-power increase, (c) after an
//! antenna uptilt.
//!
//! Paper: "tilt-tuning reshapes the angular distribution of radio energy
//! without increasing total power; it reaches further at the cost of
//! sacrificing nearby areas". Power-tuning lifts everything uniformly.

use magus_bench::{build_market, Scale};
use magus_geo::PointM;
use magus_net::AreaType;
use magus_propagation::NOMINAL_TILT_INDEX;

fn main() {
    let market = build_market(AreaType::Suburban, 1, Scale::from_env());
    let id = market
        .network()
        .nearest_sector(PointM::new(0.0, 0.0))
        .expect("market has sectors");
    let store = market.store();
    let site = market.network().sector(id).site;
    let spec = *market.spec();

    let nominal = store.matrix(id.0, NOMINAL_TILT_INDEX);
    let uptilt = store.matrix(id.0, NOMINAL_TILT_INDEX - 4); // −2° electrical tilt
    let power_boost_db = 6.0;

    // Ring statistics: mean received-signal change by distance band.
    let mut bands: Vec<(f64, f64, Vec<f64>, Vec<f64>)> = vec![
        (0.0, 600.0, vec![], vec![]),
        (600.0, 1_500.0, vec![], vec![]),
        (1_500.0, 3_000.0, vec![], vec![]),
        (3_000.0, 6_000.0, vec![], vec![]),
    ];
    for (c, l_nom) in nominal.iter() {
        let d = spec.center_of(c).distance(site.position);
        let Some(l_up) = uptilt.get(c) else { continue };
        for (lo, hi, ref mut pow_delta, ref mut tilt_delta) in bands.iter_mut() {
            if d >= *lo && d < *hi {
                pow_delta.push(power_boost_db); // power shifts RP uniformly
                tilt_delta.push(l_up.0 - l_nom.0);
            }
        }
    }

    println!(
        "Figure 7 — signal change vs baseline, sector {} (suburban)",
        id.0
    );
    println!(
        "\n{:>14} {:>22} {:>22}",
        "distance band", "(b) +6 dB power", "(c) 2° uptilt"
    );
    for (lo, hi, pow_delta, tilt_delta) in &bands {
        let mean = |v: &Vec<f64>| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:>6.1}–{:<5.1}km {:>20.2}dB {:>20.2}dB",
            lo / 1000.0,
            hi / 1000.0,
            mean(pow_delta),
            mean(tilt_delta)
        );
    }
    println!(
        "\nExpected shape: the power column is flat (+6 dB everywhere); the uptilt\n\
         column is negative near the mast and positive at range — energy is\n\
         redistributed outward, not created."
    );
}
