//! **Probe-throughput benchmark and regression gate** — the perf
//! trajectory for the search hot path (`ci.sh` stage "probe bench").
//!
//! `hill_climb` (paper Algorithm 1) spends its life in the probe cycle:
//! apply a candidate change, read the objective, undo. Probes/sec is
//! therefore the number that bounds how large a market the planner can
//! polish, so this binary measures it — on the bundled suburban
//! scenario, with the hill-climber's own candidate mix (power ±step,
//! tilt ±1 over every on-air sector) — at 1, 4, and 8 worker threads,
//! and writes the trajectory to `target/magus-results/probe_bench.json`.
//!
//! **Determinism.** Probes at every thread count must produce
//! bit-identical scores to the 1-thread run, and every worker replica
//! must come back with its state fingerprint untouched (probe = exact
//! apply/undo). Both are asserted, every run.
//!
//! **Gate.** The repo root commits a baseline `BENCH_probe.json`.
//! Because absolute probes/sec varies with the host, both the baseline
//! and the current run also measure a fixed pure-CPU calibration loop
//! (splitmix64 mixing, `calib_mops`) and the gate compares the
//! *normalized* single-thread throughput `probes_per_sec / calib_mops`.
//! A drop of more than `MAGUS_PROBE_REGRESSION_MAX_PCT` (default 10%)
//! against the committed baseline fails the run. Like
//! `parallel_speedup`, the gate self-skips on runners with < 4 cores
//! (the measurement still prints and the artifact is still written);
//! it also skips when the baseline is missing or was recorded at a
//! different `MAGUS_SCALE`.
//!
//! Re-baselining: `MAGUS_PROBE_WRITE_BASELINE=1` rewrites the repo-root
//! `BENCH_probe.json` from the current run.

use magus_bench::{build_market, init_obs_from_env, write_artifact, Scale};
use magus_geo::Db;
use magus_model::{Evaluator, ModelState, UtilityKind};
use magus_net::{AreaType, ConfigChange, SectorId};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

/// Thread counts the trajectory records.
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

#[derive(Serialize, Clone, Copy)]
struct ThreadPoint {
    threads: usize,
    probes_per_sec: f64,
    wall_s: f64,
}

/// Where the probe cycle spends its time, from the evaluator's sampled
/// `evaluator.probe_{apply,read,undo}_ns` histograms: when the gate
/// fails, these shares name the phase that regressed instead of leaving
/// a bare throughput number.
#[derive(Serialize, Clone, Copy)]
struct PhaseShares {
    apply_pct: f64,
    read_pct: f64,
    undo_pct: f64,
    /// Sampled probes behind the shares (1-in-64 sampling).
    samples: u64,
}

impl PhaseShares {
    fn render(&self) -> String {
        format!(
            "apply {:.1}% / read {:.1}% / undo {:.1}% ({} samples)",
            self.apply_pct, self.read_pct, self.undo_pct, self.samples
        )
    }
}

#[derive(Serialize)]
struct Report {
    scale: String,
    cores: usize,
    sectors: usize,
    grids: usize,
    candidates: usize,
    rounds: usize,
    calib_mops: f64,
    threads: Vec<ThreadPoint>,
    /// Single-thread probes/sec divided by `calib_mops` — the
    /// machine-speed-normalized figure the regression gate compares.
    normalized_1t: f64,
    gate_enforced: bool,
    max_regression_pct: f64,
    /// `None` when the sampled histograms came back empty (sampling
    /// period longer than the run).
    phases: Option<PhaseShares>,
}

/// The fields of a committed `BENCH_probe.json` the gate actually
/// compares, extracted field-by-field so baselines written before a
/// `Report` field was added keep gating (the vendored deserializer
/// rejects any missing struct field).
struct Baseline {
    scale: String,
    normalized_1t: f64,
    phases: Option<PhaseShares>,
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v: Value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("baseline is not a JSON object")?;
    let scale = obj
        .get("scale")
        .and_then(Value::as_str)
        .ok_or("missing `scale`")?
        .to_string();
    let normalized_1t = obj
        .get("normalized_1t")
        .and_then(Value::as_number)
        .ok_or("missing `normalized_1t`")?
        .as_f64();
    let phases = obj.get("phases").and_then(Value::as_object).and_then(|p| {
        let pct = |k: &str| p.get(k).and_then(Value::as_number).map(|n| n.as_f64());
        Some(PhaseShares {
            apply_pct: pct("apply_pct")?,
            read_pct: pct("read_pct")?,
            undo_pct: pct("undo_pct")?,
            samples: p
                .get("samples")
                .and_then(Value::as_number)
                .and_then(|n| n.as_u64())?,
        })
    });
    Ok(Baseline {
        scale,
        normalized_1t,
        phases,
    })
}

/// The hill-climber's candidate mix over every on-air sector: power
/// ±1 dB (floor permitting) and tilt ±1, filtered to moves that would
/// change the configuration — the same shape `candidate_moves` feeds
/// the real search.
fn candidates(ev: &Evaluator, state: &ModelState) -> Vec<ConfigChange> {
    let mut out = Vec::new();
    for s in 0..state.num_sectors() as u32 {
        let id = SectorId(s);
        let sc = state.config().sector(id);
        if !sc.on_air {
            continue;
        }
        let mut c = vec![
            ConfigChange::PowerDelta(id, Db(1.0)),
            ConfigChange::PowerDelta(id, Db(-1.0)),
        ];
        if sc.tilt > 0 {
            c.push(ConfigChange::SetTilt(id, sc.tilt - 1));
        }
        if sc.tilt + 1 < magus_propagation::NUM_TILT_SETTINGS {
            c.push(ConfigChange::SetTilt(id, sc.tilt + 1));
        }
        out.extend(
            c.into_iter()
                .filter(|&ch| state.config().would_change(ev.network(), ch)),
        );
    }
    out
}

/// Probes every candidate `rounds` times across `threads` worker
/// replicas (candidate list strided per worker, hill-climb style).
/// Returns the wall-clock, the index-ordered scores of the last round,
/// and each replica's final state fingerprint.
fn run_probes(
    ev: &Evaluator,
    state: &ModelState,
    cands: &[ConfigChange],
    rounds: usize,
    threads: usize,
) -> (f64, Vec<(usize, f64)>, Vec<u64>) {
    let t0 = Instant::now();
    let per_worker: Vec<(Vec<(usize, f64)>, u64)> =
        magus_exec::map_indexed(threads, threads, |w| {
            let mut replica = state.clone();
            let mut scores = Vec::new();
            for _ in 0..rounds {
                scores.clear();
                for (i, &ch) in cands.iter().enumerate().skip(w).step_by(threads) {
                    scores.push((
                        i,
                        ev.probe_objective(&mut replica, ch, UtilityKind::Performance),
                    ));
                }
            }
            (scores, replica.bit_fingerprint())
        });
    let wall = t0.elapsed().as_secs_f64();
    let mut scores: Vec<(usize, f64)> = per_worker
        .iter()
        .flat_map(|(s, _)| s.iter().copied())
        .collect();
    scores.sort_unstable_by_key(|&(i, _)| i);
    let prints = per_worker.into_iter().map(|(_, f)| f).collect();
    (wall, scores, prints)
}

/// Fixed pure-CPU calibration: splitmix64 mixing, reported in
/// million-ops/sec. Normalizes probes/sec across host speeds so the
/// committed baseline gates on machines other than the one that wrote
/// it.
fn calibrate() -> f64 {
    const OPS: u64 = 20_000_000;
    let t0 = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..OPS {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= z ^ (z >> 31);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_ne!(x, 0, "calibration loop optimized away");
    OPS as f64 / secs / 1e6
}

/// Runs a single-threaded probe pass at `ObsLevel::Full` so the
/// evaluator's 1-in-64 sampled phase timing fills the
/// `evaluator.probe_{apply,read,undo}_ns` histograms, then reduces them
/// to percentage shares. Runs outside the timed trajectory (sampling
/// is cheap, but the gate compares untimed-to-untimed); restores the
/// previous obs level and clears the registry behind itself.
fn measure_phases(
    ev: &Evaluator,
    state: &ModelState,
    cands: &[ConfigChange],
) -> Option<PhaseShares> {
    let prev = magus_obs::level();
    magus_obs::set_level(magus_obs::ObsLevel::Full);
    let registry = magus_obs::registry();
    registry.reset();
    // Enough probes for ~200 sampled phase timings at 1-in-64 sampling.
    let probes_wanted: usize = 200 * 64;
    let rounds = probes_wanted.div_ceil(cands.len()).max(1);
    let mut replica = state.clone();
    for _ in 0..rounds {
        for &ch in cands {
            let _ = ev.probe_objective(&mut replica, ch, UtilityKind::Performance);
        }
    }
    let snap = |name: &str| registry.histogram(name).snapshot(name);
    let apply = snap("evaluator.probe_apply_ns");
    let read = snap("evaluator.probe_read_ns");
    let undo = snap("evaluator.probe_undo_ns");
    registry.reset();
    magus_obs::set_level(prev);
    let total = (apply.sum + read.sum + undo.sum) as f64;
    if total <= 0.0 {
        return None;
    }
    Some(PhaseShares {
        apply_pct: apply.sum as f64 / total * 100.0,
        read_pct: read.sum as f64 / total * 100.0,
        undo_pct: undo.sum as f64 / total * 100.0,
        samples: apply.count.min(read.count).min(undo.count),
    })
}

/// Names the phase whose share grew the most against the baseline (or
/// the dominant phase when the baseline predates phase attribution) —
/// the first place to look when the gate fails.
fn suspect_phase(current: &PhaseShares, baseline: Option<&PhaseShares>) -> String {
    let cur = [
        ("apply", current.apply_pct),
        ("read", current.read_pct),
        ("undo", current.undo_pct),
    ];
    match baseline {
        Some(b) => {
            let base = [b.apply_pct, b.read_pct, b.undo_pct];
            let (name, delta) = cur
                .iter()
                .zip(base.iter())
                .map(|(&(n, c), &bp)| (n, c - bp))
                .fold(("apply", f64::NEG_INFINITY), |acc, x| {
                    if x.1 > acc.1 {
                        x
                    } else {
                        acc
                    }
                });
            format!("{name} phase share grew most vs baseline ({delta:+.1} points)")
        }
        None => {
            let (name, pct) = cur
                .iter()
                .copied()
                .fold(("apply", f64::NEG_INFINITY), |acc, x| {
                    if x.1 > acc.1 {
                        x
                    } else {
                        acc
                    }
                });
            format!("{name} phase dominates the cycle ({pct:.1}%; baseline has no phase data)")
        }
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Eval => "eval",
        Scale::Full => "full",
    };
    let market = build_market(AreaType::Suburban, 1, scale);
    let model = magus_model::standard_setup(&market, magus_lte::Bandwidth::Mhz10);
    let ev = &model.evaluator;
    let state = ev.initial_state(&model.nominal);
    let cands = candidates(ev, &state);
    assert!(!cands.is_empty(), "no probe candidates in scenario");

    // Prewarm the path-loss cache the way a search would: one pass over
    // the candidates so assembly cost never lands inside a timed run.
    {
        let mut warm = state.clone();
        for &ch in &cands {
            let _ = ev.probe_objective(&mut warm, ch, UtilityKind::Performance);
        }
        assert_eq!(
            warm.bit_fingerprint(),
            state.bit_fingerprint(),
            "probe warm-up mutated the state"
        );
    }

    // Pick a round count targeting ~1s of single-thread probing.
    let t0 = Instant::now();
    let (_, reference, _) = run_probes(ev, &state, &cands, 1, 1);
    let round_s = t0.elapsed().as_secs_f64();
    let target_s = env_f64("MAGUS_PROBE_TARGET_S", 1.0);
    let rounds = ((target_s / round_s.max(1e-6)).ceil() as usize).clamp(1, 10_000);

    let calib_mops = calibrate();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (wall, scores, prints) = run_probes(ev, &state, &cands, rounds, threads);
        // Determinism contract: same scores as the 1-worker reference,
        // bit for bit, and every replica restored exactly.
        assert_eq!(
            scores.len(),
            reference.len(),
            "probe count diverged at {threads} threads"
        );
        for (&(i, s), &(ri, rs)) in scores.iter().zip(reference.iter()) {
            assert_eq!(i, ri, "candidate order diverged at {threads} threads");
            assert_eq!(
                s.to_bits(),
                rs.to_bits(),
                "score for candidate {i} not bit-identical at {threads} threads"
            );
        }
        let expect = state.bit_fingerprint();
        assert!(
            prints.iter().all(|&f| f == expect),
            "a worker replica came back mutated at {threads} threads"
        );
        let probes = (rounds * cands.len()) as f64;
        let pps = probes / wall.max(1e-9);
        println!(
            "probe_bench: {threads} thread(s): {pps:>12.0} probes/s ({probes:.0} probes, {wall:.3}s)"
        );
        points.push(ThreadPoint {
            threads,
            probes_per_sec: pps,
            wall_s: wall,
        });
    }

    let normalized_1t = points[0].probes_per_sec / calib_mops;
    let max_regression_pct = env_f64("MAGUS_PROBE_REGRESSION_MAX_PCT", 10.0);
    let gate_possible = cores >= 4 && max_regression_pct > 0.0;
    let phases = measure_phases(ev, &state, &cands);
    let report = Report {
        scale: scale_name.to_string(),
        cores,
        sectors: market.network().num_sectors(),
        grids: market.spec().len(),
        candidates: cands.len(),
        rounds,
        calib_mops,
        threads: points,
        normalized_1t,
        gate_enforced: gate_possible,
        max_regression_pct,
        phases,
    };
    println!(
        "probe_bench: calib {calib_mops:.0} Mops/s, normalized 1t {normalized_1t:.1} probes/Mop"
    );
    match &report.phases {
        Some(p) => println!("probe_bench: phase attribution — {}", p.render()),
        None => println!("probe_bench: phase attribution — no samples (run too short)"),
    }
    write_artifact("probe_bench", &report);
    if std::env::var_os("MAGUS_PROBE_WRITE_BASELINE").is_some() {
        let json = serde_json::to_string_pretty(&report).expect("serialize baseline");
        std::fs::write("BENCH_probe.json", json).expect("write BENCH_probe.json");
        eprintln!("[artifact] BENCH_probe.json (baseline rewritten)");
    }
    let _ = magus_obs::flush_trace();

    // Regression gate against the committed baseline.
    let baseline = match std::fs::read_to_string("BENCH_probe.json") {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("probe_bench: BENCH_probe.json unreadable ({e}); gate skipped");
                None
            }
        },
        Err(_) => {
            eprintln!("probe_bench: no committed BENCH_probe.json; gate skipped");
            None
        }
    };
    let Some(baseline) = baseline else { return };
    if !gate_possible {
        println!(
            "probe_bench: gate skipped ({cores} cores < 4 or gate disabled); \
             baseline normalized {:.1}",
            baseline.normalized_1t
        );
        return;
    }
    if baseline.scale != scale_name {
        println!(
            "probe_bench: gate skipped (baseline scale `{}` != run scale `{scale_name}`)",
            baseline.scale
        );
        return;
    }
    let floor = baseline.normalized_1t * (1.0 - max_regression_pct / 100.0);
    println!(
        "probe_bench: gate — normalized {normalized_1t:.1} vs baseline {:.1} \
         (floor {floor:.1}, max regression {max_regression_pct:.0}%)",
        baseline.normalized_1t
    );
    if normalized_1t < floor {
        eprintln!(
            "probe_bench: FAIL — normalized single-thread throughput {normalized_1t:.1} \
             regressed more than {max_regression_pct:.0}% below the committed baseline {:.1}",
            baseline.normalized_1t
        );
        if let Some(p) = &report.phases {
            eprintln!(
                "probe_bench: phase attribution — {}; {}",
                p.render(),
                suspect_phase(p, baseline.phases.as_ref())
            );
        }
        std::process::exit(1);
    }
}
