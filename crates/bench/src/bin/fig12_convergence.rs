//! **Figure 12**: speed of convergence across the four solution-space
//! strategies (suburban market, scenario (a)).
//!
//! Paper shape: proactive model-based holds f(C_after) from the outage
//! instant; reactive model-based reaches it in one reconfiguration;
//! reactive feedback-based needs K steps (27 idealized / ≈310 realistic);
//! no-tuning stays at f(C_upgrade).

use magus_bench::{build_market, write_artifact, Scale};
use magus_core::{
    hybrid_model_feedback, run_recovery_with, strategy_traces, ExperimentConfig, TuningKind,
};
use magus_model::standard_setup;
use magus_net::{AreaType, UpgradeScenario};

fn main() {
    let scale = Scale::from_env();
    let market = build_market(AreaType::Suburban, 1, scale);
    let model = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
    let cfg = ExperimentConfig::default();

    // Magus's C_after from the usual pipeline.
    let out = run_recovery_with(
        &model,
        &market,
        UpgradeScenario::SingleCentralSector,
        TuningKind::Power,
        &cfg,
    );
    let traces = strategy_traces(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &out.targets,
        &out.neighbors,
        &cfg.search,
    );

    println!("\nFigure 12 — utility vs time since the outage (suburban, scenario (a))\n");
    println!(
        "f(C_before) = {:.1}   f(C_after) = {:.1}   f(C_upgrade) = {:.1}\n",
        traces.f_before, traces.f_after, traces.f_upgrade
    );
    print!("{:>6}", "t");
    for (kind, _) in &traces.series {
        print!(" {:>26}", kind.to_string());
    }
    println!();
    let horizon = traces.series[0].1.len();
    for t in 0..horizon {
        print!("{t:>6}");
        for (_, series) in &traces.series {
            print!(" {:>26.1}", series[t]);
        }
        println!();
    }
    println!(
        "\nReactive feedback convergence: {} idealized steps (paper: 27), {} realistic\n\
         measurement rounds (paper estimate: 310). At minutes per measurement round, the\n\
         idealized loop alone needs on the order of hours — Magus needs one deployment.",
        traces.feedback_steps_idealized, traces.feedback_steps_realistic
    );

    // The paper's hybrid (§2): model first, feedback polish after — 1+k
    // steps with k ≪ K.
    let hybrid = hybrid_model_feedback(
        &model.evaluator,
        &out.config_after,
        &out.neighbors,
        &cfg.search,
    );
    // The feedback loop's own converged utility (last value of its
    // trace) is the target the hybrid must match.
    let scratch_final = traces
        .series
        .iter()
        .find(|(k, _)| *k == magus_core::StrategyKind::ReactiveFeedback)
        .and_then(|(_, v)| v.last().copied())
        .unwrap_or(traces.f_after);
    let k = hybrid
        .steps_until(scratch_final)
        .map(|k| k.to_string())
        .unwrap_or_else(|| format!("{}(+)", hybrid.steps));
    println!(
        "Hybrid model+feedback: 1 model deployment + k = {k} steps to match the\n\
         from-scratch feedback optimum (K = {}); continued polish gained {:+.1}\n\
         further utility beyond it.",
        traces.feedback_steps_idealized,
        hybrid.final_utility - scratch_final
    );
    write_artifact("fig12_convergence", &traces);
}
