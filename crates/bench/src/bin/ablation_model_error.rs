//! **Ablation**: model-based search under planning-database error.
//!
//! The paper's §2 tradeoff in numbers: a model-based approach converges
//! in one step but "might reach a sub-optimal configuration" when the
//! network doesn't match the path-loss model; the hybrid polishes the
//! model's answer with a few feedback steps (`1 + k ≪ K`).
//!
//! For each market replica, the search runs against the planning store
//! while outcomes are scored on a ground-truth store with independent
//! shadowing, and the hybrid polish closes the gap.

use magus_bench::{build_market, mean, write_artifact, Scale, AREA_SEEDS};
use magus_core::{model_divergence, ExperimentConfig};
use magus_model::standard_setup;
use magus_net::{AreaType, UpgradeScenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    divergence: f64,
    seed: u64,
    predicted_recovery: f64,
    model_score: f64,
    polished_score: f64,
    polish_steps: usize,
    from_scratch_steps: usize,
}

fn main() {
    let scale = Scale::from_env();
    let mut cfg = ExperimentConfig::default();
    // Let the feedback loops run to their true optima so K is not an
    // artifact of the safety cap.
    cfg.search.max_changes = 160;
    let mut rows = Vec::new();

    println!("Ablation — model error vs hybrid polish (suburban, scenario (a))\n");
    // Scores: 0 = no mitigation, 1 = from-scratch feedback optimum on
    // the ground truth.
    println!(
        "{:>11} {:>6} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "divergence", "seed", "predicted", "model score", "polished", "k", "K scratch"
    );
    for &w in &[0.0f64, 0.3, 0.6, 1.0] {
        for &seed in &AREA_SEEDS {
            let market = build_market(AreaType::Suburban, seed, scale);
            let model = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
            let out = model_divergence(
                &model,
                &market,
                UpgradeScenario::SingleCentralSector,
                seed.wrapping_mul(0x5EED) ^ 0xD17E,
                w,
                &cfg,
            );
            println!(
                "{:>11.1} {:>6} {:>11.1}% {:>12.2} {:>12.2} {:>8} {:>10}",
                w,
                seed,
                out.predicted_recovery * 100.0,
                out.model_score,
                out.polished_score,
                out.polish_steps,
                out.from_scratch_steps
            );
            rows.push(Row {
                divergence: w,
                seed,
                predicted_recovery: out.predicted_recovery,
                model_score: out.model_score,
                polished_score: out.polished_score,
                polish_steps: out.polish_steps,
                from_scratch_steps: out.from_scratch_steps,
            });
        }
    }
    let model: Vec<f64> = rows.iter().map(|r| r.model_score).collect();
    let polished: Vec<f64> = rows.iter().map(|r| r.polished_score).collect();
    println!(
        "\nMean model score {:.2} -> polished {:.2} (1.0 = from-scratch feedback optimum).\n\
         Reading the sweep: the divergence-0 rows isolate the pure *search* gap\n\
         (Algorithm 1 only raises power toward affected grids; the feedback oracle\n\
         may also back sectors off), and growing divergence adds genuine model\n\
         error on top. The hybrid polish consistently reaches — and often beats —\n\
         the from-scratch feedback optimum, because the model's C_after is a better\n\
         basin to start from: the paper's rationale for combining the quadrants of\n\
         its Figure 1.",
        mean(&model),
        mean(&polished)
    );
    write_artifact("ablation_model_error", &rows);
}
