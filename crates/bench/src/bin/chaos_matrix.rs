//! **Chaos-matrix robustness gate** — the CI gate for the fault layer
//! (`ci.sh` stage "chaos").
//!
//! Sweeps fault rates × upgrade scenarios through the gradual-migration
//! executor, the search portfolio (greedy × anneal × beam), and the
//! testbed simulator, asserting the three contracts of the fault layer:
//!
//! 1. **No panics** — every chaos cell runs under `catch_unwind`; any
//!    panic anywhere in the recovery machinery fails the gate.
//! 2. **Invariants hold after every recovery** — the executor re-proves
//!    model-state soundness after each retried/rolled-back step and the
//!    gate requires zero recorded violations; every run must still reach
//!    `C_after`, and every simulated UE must end the run with data
//!    flowing (no stranded UEs after abandoned signaling).
//! 3. **Zero-rate plans are inert** — a `rate=0` plan must produce a
//!    migration report byte-identical to the no-plan baseline, at 1 and
//!    4 worker threads (the exec determinism contract extended to the
//!    fault layer).
//!
//! Each identity run streams the flight recorder to
//! `target/magus-results/chaos-trace-*.jsonl`; on a byte mismatch the
//! gate runs the `magus trace diff` engine over the two traces and
//! prints the first divergent record, and the trace files are kept for
//! the CI artifact upload (deleted when the scenario passes).

use magus_bench::{build_market, init_obs_from_env, results_dir, write_artifact, Scale};
use magus_core::{
    execute_gradual, plan_gradual, prepare_scenario, run_strategy_spec, with_fault_plan,
    ExperimentConfig, GradualParams, HillClimbParams, MigrateParams, MigrationReport,
    PreparedScenario, StrategySpec, TuningKind,
};
use magus_fault::{FaultPlan, FaultRates};
use magus_lte::Bandwidth;
use magus_model::{standard_setup, StandardModel};
use magus_net::{AreaType, Market, UpgradeScenario};
use magus_testbed::{AttenuationLevel, EnodebId, RadioEnvironment, Sim, SimConfig, SimTime};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const RATES: [f64; 3] = [0.05, 0.2, 0.5];
const SEEDS: [u64; 2] = [1, 2];

#[derive(Serialize)]
struct Cell {
    stage: &'static str,
    scenario: String,
    rate: f64,
    seed: u64,
    injected: u64,
    retried: u64,
    rolled_back: u64,
    degraded_reads: u64,
    completed: bool,
}

#[derive(Serialize)]
struct Report {
    cells: Vec<Cell>,
    failures: Vec<String>,
}

/// Runs `f` with the flight recorder streaming to `path` at
/// `ObsLevel::Full`, then detaches the sink and restores the previous
/// level — each identity run gets a complete, self-contained trace.
fn run_traced<T>(path: &std::path::Path, f: impl FnOnce() -> T) -> T {
    let prev = magus_obs::level();
    magus_obs::set_level(magus_obs::ObsLevel::Full);
    if let Err(e) = magus_obs::set_trace_path(path) {
        eprintln!("chaos_matrix: cannot open trace {}: {e}", path.display());
    }
    let out = f();
    magus_obs::clear_trace();
    magus_obs::set_level(prev);
    out
}

/// First-divergence diagnosis for a failed identity check: reads both
/// traces and prints where they first disagree (the same engine behind
/// `magus trace diff`).
fn explain_divergence(left: &std::path::Path, right: &std::path::Path) {
    use magus_obs::trace::read::{diff_traces, read_trace};
    match (read_trace(left), read_trace(right)) {
        (Ok(a), Ok(b)) => match diff_traces(&a, &b) {
            Some(d) => eprintln!("chaos_matrix: {d}"),
            None => eprintln!(
                "chaos_matrix: traces are identical — the divergence is in \
                 untraced report state"
            ),
        },
        (a, b) => {
            for (path, r) in [(left, a.err()), (right, b.err())] {
                if let Some(e) = r {
                    eprintln!("chaos_matrix: cannot read {}: {e}", path.display());
                }
            }
        }
    }
}

fn run_schedule(
    model: &StandardModel,
    sched: &ScenarioSchedule,
    params: &MigrateParams,
) -> MigrationReport {
    execute_gradual(
        &model.evaluator,
        &sched.before,
        &sched.after,
        &sched.plan,
        params,
    )
}

struct ScenarioSchedule {
    label: String,
    before: magus_net::Configuration,
    after: magus_net::Configuration,
    plan: magus_core::GradualOutcome,
}

fn prepare(model: &StandardModel, market: &Market, scenario: UpgradeScenario) -> ScenarioSchedule {
    let cfg = ExperimentConfig::default();
    let prepared = prepare_scenario(model, market, scenario, &cfg);
    let out = prepared.run(model, TuningKind::Joint, &cfg);
    let plan = plan_gradual(
        &model.evaluator,
        &out.config_before,
        &out.config_after,
        &out.targets,
        &GradualParams::default(),
    );
    ScenarioSchedule {
        label: scenario.label().to_string(),
        before: out.config_before,
        after: out.config_after,
        plan,
    }
}

/// Deterministic digest of one strategy run, serialized for the
/// zero-rate byte-identity check. Utility is pinned by its bit
/// pattern so a ±1 ulp drift fails the gate rather than rounding
/// away in decimal formatting.
#[derive(Serialize)]
struct StrategyOutcome {
    strategy: String,
    moves: Vec<String>,
    utility_bits: u64,
    probes: u64,
}

fn run_strategy(
    model: &StandardModel,
    prepared: &PreparedScenario,
    spec: StrategySpec,
    hill: HillClimbParams,
) -> (StrategyOutcome, magus_model::ModelState) {
    let mut state = prepared.start_state();
    let report = run_strategy_spec(
        spec,
        hill,
        &model.evaluator,
        &mut state,
        &prepared.neighbors,
    );
    let outcome = StrategyOutcome {
        strategy: report.strategy,
        moves: report.moves.iter().map(|c| format!("{c:?}")).collect(),
        utility_bits: report.utility.to_bits(),
        probes: report.probes,
    };
    (outcome, state)
}

/// Small 2-eNodeB indoor layout with a retune + off-air churn timeline:
/// exercises seamless handovers, RLF re-attaches, and every MME job
/// kind under event drops.
fn chaos_sim(rate: f64, seed: u64) -> Option<magus_testbed::SimReport> {
    let env = RadioEnvironment::new(
        vec![
            magus_geo::PointM::new(0.0, 0.0),
            magus_geo::PointM::new(40.0, 0.0),
        ],
        vec![
            magus_geo::PointM::new(5.0, 2.0),
            magus_geo::PointM::new(33.0, 1.0),
            magus_geo::PointM::new(44.0, -2.0),
        ],
        11,
    );
    use magus_testbed::sim::ChangeOp;
    let timeline = vec![
        (
            SimTime::from_secs(1),
            ChangeOp::SetAttenuation(EnodebId(0), AttenuationLevel(1)),
        ),
        (
            SimTime::from_secs(1),
            ChangeOp::SetAttenuation(EnodebId(1), AttenuationLevel(30)),
        ),
        (
            SimTime::from_secs(2),
            ChangeOp::SetOnAir(EnodebId(1), false),
        ),
    ];
    let quiet = vec![AttenuationLevel(10), AttenuationLevel(10)];
    let plan = Arc::new(
        FaultPlan::new(
            seed,
            FaultRates {
                sim: rate,
                ..FaultRates::ZERO
            },
        )
        .with_permanent(0.15),
    );
    catch_unwind(AssertUnwindSafe(|| {
        with_fault_plan(plan, || {
            Sim::new(env, quiet, SimConfig::default(), timeline).run(SimTime::from_secs(6))
        })
    }))
    .ok()
}

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let market = build_market(AreaType::Suburban, 1, scale);
    let model = standard_setup(&market, Bandwidth::Mhz10);
    let params = MigrateParams::default();
    let mut cells = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for scenario in [
        UpgradeScenario::SingleCentralSector,
        UpgradeScenario::CentralBaseStation,
        UpgradeScenario::FourCorners,
    ] {
        let sched = prepare(&model, &market, scenario);
        eprintln!(
            "chaos_matrix: scenario {} ({} steps)…",
            sched.label,
            sched.plan.steps.len()
        );

        // Contract 3: zero-rate byte-identity to the no-plan baseline,
        // at 1 and 4 worker threads. Every run is traced so a failure
        // comes with its first divergent record, not just a bit.
        let slug: String = sched
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let base_trace = results_dir().join(format!("chaos-trace-{slug}-base.jsonl"));
        let baseline_report = run_traced(&base_trace, || run_schedule(&model, &sched, &params));
        let baseline = serde_json::to_vec(&baseline_report).unwrap_or_default();
        let mut scenario_traces = vec![base_trace.clone()];
        let mut scenario_diverged = false;
        for threads in [1usize, 4] {
            magus_exec::set_threads(threads);
            let zero_trace =
                results_dir().join(format!("chaos-trace-{slug}-zero-{threads}t.jsonl"));
            let report = run_traced(&zero_trace, || {
                with_fault_plan(Arc::new(FaultPlan::zero(9)), || {
                    run_schedule(&model, &sched, &params)
                })
            });
            scenario_traces.push(zero_trace.clone());
            if serde_json::to_vec(&report).unwrap_or_default() != baseline {
                scenario_diverged = true;
                failures.push(format!(
                    "{}: zero-rate plan diverged from baseline at {threads} threads",
                    sched.label
                ));
                explain_divergence(&base_trace, &zero_trace);
            }
        }
        magus_exec::clear_threads_override();
        if scenario_diverged {
            eprintln!(
                "chaos_matrix: divergent traces kept under {}",
                results_dir().display()
            );
        } else {
            for t in &scenario_traces {
                let _ = std::fs::remove_file(t);
            }
        }

        // Contracts 1–2: the fault sweep.
        for rate in RATES {
            for seed in SEEDS {
                let plan =
                    Arc::new(FaultPlan::new(seed, FaultRates::uniform(rate)).with_permanent(0.15));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    with_fault_plan(plan.clone(), || run_schedule(&model, &sched, &params))
                }));
                let Ok(report) = outcome else {
                    failures.push(format!(
                        "{} rate {rate} seed {seed}: PANIC in executor",
                        sched.label
                    ));
                    continue;
                };
                for v in &report.invariant_violations {
                    failures.push(format!(
                        "{} rate {rate} seed {seed}: invariant violated: {v}",
                        sched.label
                    ));
                }
                if !report.completed {
                    failures.push(format!(
                        "{} rate {rate} seed {seed}: migration did not reach C_after",
                        sched.label
                    ));
                }
                let fr = plan.report();
                cells.push(Cell {
                    stage: "migrate",
                    scenario: sched.label.clone(),
                    rate,
                    seed,
                    injected: fr.injected_total,
                    retried: fr.retried,
                    rolled_back: fr.rolled_back,
                    degraded_reads: fr.degraded_reads,
                    completed: report.completed,
                });
            }
        }
    }

    // Search-portfolio axis: every strategy in the portfolio holds the
    // same three contracts as the migration executor — no panics under
    // fault plans, an invariant-clean final state (re-proved on a
    // from-scratch build of the final configuration, the executor's own
    // recovery idiom), and zero-rate byte-inertness at 1 and 4 worker
    // threads against the no-plan baseline.
    let cfg = ExperimentConfig::default();
    let prepared = prepare_scenario(&model, &market, UpgradeScenario::SingleCentralSector, &cfg);
    let hill = HillClimbParams {
        utility: cfg.search.utility,
        max_moves: cfg.search.max_changes,
        ..HillClimbParams::default()
    };
    for spec in [
        StrategySpec::Greedy,
        StrategySpec::Anneal,
        StrategySpec::Beam(2),
    ] {
        let label = spec.to_string();
        eprintln!("chaos_matrix: strategy {label}…");
        let slug = label.replace(':', "-");
        let base_trace = results_dir().join(format!("chaos-trace-search-{slug}-base.jsonl"));
        let (baseline_out, _) =
            run_traced(&base_trace, || run_strategy(&model, &prepared, spec, hill));
        let baseline = serde_json::to_vec(&baseline_out).unwrap_or_default();
        let mut strategy_traces = vec![base_trace.clone()];
        let mut strategy_diverged = false;
        for threads in [1usize, 4] {
            magus_exec::set_threads(threads);
            let zero_trace =
                results_dir().join(format!("chaos-trace-search-{slug}-zero-{threads}t.jsonl"));
            let (out, _) = run_traced(&zero_trace, || {
                with_fault_plan(Arc::new(FaultPlan::zero(9)), || {
                    run_strategy(&model, &prepared, spec, hill)
                })
            });
            strategy_traces.push(zero_trace.clone());
            if serde_json::to_vec(&out).unwrap_or_default() != baseline {
                strategy_diverged = true;
                failures.push(format!(
                    "strategy {label}: zero-rate plan diverged from baseline at {threads} threads"
                ));
                explain_divergence(&base_trace, &zero_trace);
            }
        }
        magus_exec::clear_threads_override();
        if strategy_diverged {
            eprintln!(
                "chaos_matrix: divergent traces kept under {}",
                results_dir().display()
            );
        } else {
            for t in &strategy_traces {
                let _ = std::fs::remove_file(t);
            }
        }

        for rate in RATES {
            for seed in SEEDS {
                let plan =
                    Arc::new(FaultPlan::new(seed, FaultRates::uniform(rate)).with_permanent(0.15));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    with_fault_plan(plan.clone(), || run_strategy(&model, &prepared, spec, hill))
                }));
                let Ok((_, state)) = outcome else {
                    failures.push(format!(
                        "strategy {label} rate {rate} seed {seed}: PANIC in search"
                    ));
                    continue;
                };
                // Invariant-clean completion: the final configuration
                // must rebuild into a state the runtime validator
                // accepts, faults or not.
                let rebuilt = model.evaluator.initial_state(state.config());
                let clean = match magus_model::invariant::validate_state(
                    &rebuilt,
                    model.evaluator.store().spec().len(),
                    model.evaluator.network().num_sectors(),
                ) {
                    Ok(()) => true,
                    Err(v) => {
                        failures.push(format!(
                            "strategy {label} rate {rate} seed {seed}: invariant violated: {v}"
                        ));
                        false
                    }
                };
                let fr = plan.report();
                cells.push(Cell {
                    stage: "search",
                    scenario: label.clone(),
                    rate,
                    seed,
                    injected: fr.injected_total,
                    retried: fr.retried,
                    rolled_back: fr.rolled_back,
                    degraded_reads: fr.degraded_reads,
                    completed: clean,
                });
            }
        }
    }

    // Testbed-simulator leg: event drops must never strand a UE.
    for rate in RATES {
        for seed in SEEDS {
            match chaos_sim(rate, seed) {
                None => failures.push(format!("sim rate {rate} seed {seed}: PANIC in testbed")),
                Some(report) => {
                    let stranded = report
                        .windows
                        .last()
                        .map_or(true, |w| w.rates_mbps.iter().any(|&r| r <= 0.0));
                    if stranded {
                        failures.push(format!(
                            "sim rate {rate} seed {seed}: UE stranded after drops: {:?}",
                            report.handovers
                        ));
                    }
                    cells.push(Cell {
                        stage: "sim",
                        scenario: "testbed-churn".to_string(),
                        rate,
                        seed,
                        injected: (report.handovers.dropped_reports
                            + report.handovers.dropped_signaling)
                            as u64,
                        retried: report.handovers.dropped_signaling as u64,
                        rolled_back: report.handovers.abandoned_jobs as u64,
                        degraded_reads: 0,
                        completed: !stranded,
                    });
                }
            }
        }
    }

    let ok = failures.is_empty();
    println!(
        "chaos_matrix: {} cells, {} failures — {}",
        cells.len(),
        failures.len(),
        if ok { "PASS" } else { "FAIL" }
    );
    for f in &failures {
        eprintln!("chaos_matrix: FAIL — {f}");
    }
    write_artifact("chaos_matrix", &Report { cells, failures });
    let _ = magus_obs::flush_trace();
    if !ok {
        std::process::exit(1);
    }
}
