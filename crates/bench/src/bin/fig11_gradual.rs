//! **Figure 11**: benefits of gradual tuning.
//!
//! Top panel: per-step utility with compensation marks ("∧"), never
//! dipping below f(C_after). Bottom panel: per-step handovers, gradual vs
//! one-shot. Paper headline numbers for the illustrated scenario: max
//! simultaneous handovers 2457 vs 9827 (≈3×), 99.7% seamless; across all
//! scenarios: ≥8× reduction and 96.1% seamless.
//!
//! This binary prints the detailed schedule for the suburban scenario (a)
//! and then sweeps *all* scenarios for the aggregate factors.

use magus_bench::{map_markets_parallel, mean, write_artifact, Scale};
use magus_core::{plan_gradual, run_recovery_with, ExperimentConfig, GradualParams, TuningKind};
use magus_net::UpgradeScenario;
use serde::Serialize;

#[derive(Serialize)]
struct Aggregate {
    area: String,
    seed: u64,
    scenario: String,
    reduction_factor: f64,
    seamless_fraction: f64,
    direct_handovers: f64,
    max_simultaneous: f64,
    steps: usize,
}

fn main() {
    let scale = Scale::from_env();
    let cfg = ExperimentConfig::default();
    let gparams = GradualParams::default();
    let per_market = map_markets_parallel(scale, |area, seed, market, model| {
        let mut aggregates: Vec<Aggregate> = Vec::new();
        let mut details = String::new();
        for scenario in UpgradeScenario::ALL {
            let out = run_recovery_with(model, market, scenario, TuningKind::Power, &cfg);
            let plan = plan_gradual(
                &model.evaluator,
                &out.config_before,
                &out.config_after,
                &out.targets,
                &gparams,
            );
            if area == magus_net::AreaType::Suburban
                && seed == 1
                && scenario == UpgradeScenario::SingleCentralSector
            {
                use std::fmt::Write as _;
                let d = &mut details;
                let _ = writeln!(
                    d,
                    "\nFigure 11 — gradual tuning schedule (suburban, scenario (a))\n"
                );
                let _ = writeln!(
                    d,
                    "f(C_before) = {:.1}   floor f(C_after) = {:.1}\n",
                    plan.f_before, plan.f_after
                );
                let _ = writeln!(
                    d,
                    "{:>4} {:>12} {:>12} {:>12} {:>6}",
                    "step", "utility", "handovers", "seamless", "comp"
                );
                for (k, s) in plan.steps.iter().enumerate() {
                    let _ = writeln!(
                        d,
                        "{:>4} {:>12.1} {:>12.1} {:>12.1} {:>6}",
                        k,
                        s.utility,
                        s.handovers,
                        s.seamless,
                        if s.compensations > 0 {
                            format!("∧×{}", s.compensations)
                        } else {
                            String::new()
                        }
                    );
                }
                let _ = writeln!(
                    d,
                    "\nOne-shot (Proactive): {:.1} simultaneous handovers, {:.1}% seamless",
                    plan.direct.handovers,
                    plan.direct.seamless_fraction * 100.0
                );
                let _ = writeln!(
                    d,
                    "Gradual (Proactive Gradual): worst step {:.1} ({:.1}x reduction), {:.1}% seamless",
                    plan.max_simultaneous,
                    plan.simultaneous_reduction_factor(),
                    plan.seamless_fraction * 100.0
                );
            }
            aggregates.push(Aggregate {
                area: area.to_string(),
                seed,
                scenario: scenario.label().to_string(),
                reduction_factor: plan.simultaneous_reduction_factor(),
                seamless_fraction: plan.seamless_fraction,
                direct_handovers: plan.direct.handovers,
                max_simultaneous: plan.max_simultaneous,
                steps: plan.steps.len(),
            });
        }
        (aggregates, details)
    });
    let mut aggregates: Vec<Aggregate> = Vec::new();
    for (_, _, (rows, details)) in per_market {
        if !details.is_empty() {
            print!("{details}");
        }
        aggregates.extend(rows);
    }

    let finite: Vec<f64> = aggregates
        .iter()
        .map(|a| a.reduction_factor)
        .filter(|f| f.is_finite())
        .collect();
    let seamless: Vec<f64> = aggregates.iter().map(|a| a.seamless_fraction).collect();
    println!("\nAcross all {} scenarios:", aggregates.len());
    println!(
        "  mean simultaneous-handover reduction factor: {:.1}x (paper: 8x)",
        mean(&finite)
    );
    println!(
        "  mean seamless handover fraction: {:.1}% (paper: 96.1%)",
        mean(&seamless) * 100.0
    );
    write_artifact("fig11_gradual", &aggregates);
}
