//! Observability overhead smoke gate.
//!
//! Runs the same fixed small mitigation workload with `ObsLevel::Off`
//! and `ObsLevel::Full` in interleaved repetitions and compares the
//! minimum wall-clock of each level (minimum, not mean: the minimum is
//! the least-noise estimate on a shared machine). The gate fails — exit
//! code 1, consumed by ci.sh — when full-level instrumentation costs
//! more than the allowed overhead (default 10%, override with
//! `MAGUS_OBS_OVERHEAD_MAX_PCT`). Repetitions default to 3 per level
//! (`MAGUS_OBS_OVERHEAD_REPS`).

use magus_bench::build_market;
use magus_bench::Scale;
use magus_core::{prepare_scenario, ExperimentConfig, TuningKind};
use magus_net::{AreaType, UpgradeScenario};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let max_overhead = env_or("MAGUS_OBS_OVERHEAD_MAX_PCT", 10.0);
    let reps = env_or("MAGUS_OBS_OVERHEAD_REPS", 3.0).max(1.0) as usize;

    // Fixed scenario regardless of MAGUS_SCALE: the gate must measure
    // the same work every CI run.
    let market = build_market(AreaType::Suburban, 1, Scale::Tiny);
    let model = magus_model::standard_setup(&market, magus_lte::Bandwidth::Mhz10);
    let cfg = ExperimentConfig::default();
    let workload = || {
        let prepared =
            prepare_scenario(&model, &market, UpgradeScenario::SingleCentralSector, &cfg);
        black_box(prepared.run(&model, TuningKind::Joint, &cfg));
    };

    // Warm both paths (page cache, path-loss assembly, registry setup).
    magus_obs::set_level(magus_obs::ObsLevel::Full);
    workload();
    magus_obs::set_level(magus_obs::ObsLevel::Off);
    workload();

    let mut best_off = Duration::MAX;
    let mut best_full = Duration::MAX;
    for rep in 0..reps {
        for (level, best) in [
            (magus_obs::ObsLevel::Off, &mut best_off),
            (magus_obs::ObsLevel::Full, &mut best_full),
        ] {
            magus_obs::set_level(level);
            let t0 = Instant::now();
            workload();
            let dt = t0.elapsed();
            *best = (*best).min(dt);
            eprintln!("[rep {rep}] {level}: {:.1} ms", dt.as_secs_f64() * 1e3);
        }
    }
    magus_obs::set_level(magus_obs::ObsLevel::Off);

    let off_ms = best_off.as_secs_f64() * 1e3;
    let full_ms = best_full.as_secs_f64() * 1e3;
    let overhead_pct = (full_ms - off_ms) / off_ms * 100.0;
    println!(
        "obs overhead gate: off {off_ms:.1} ms, full {full_ms:.1} ms, \
         overhead {overhead_pct:+.1}% (limit {max_overhead:.0}%)"
    );
    if overhead_pct > max_overhead {
        println!("obs overhead gate: FAIL");
        ExitCode::FAILURE
    } else {
        println!("obs overhead gate: PASS");
        ExitCode::SUCCESS
    }
}
