//! **Figures 4/5**: the predicted service map — grids colored by serving
//! sector, black where SINR falls below the (deliberately high) display
//! threshold, exposing coverage holes.

use magus_bench::{build_market, results_dir, Scale};
use magus_model::{standard_setup, ServiceMap};
use magus_net::AreaType;
use magus_viz::{ascii_serving_map, serving_map_ppm};

fn main() {
    let market = build_market(AreaType::Suburban, 1, Scale::from_env());
    let model = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
    let state = model.nominal_state();
    let map = ServiceMap::capture(&model.evaluator, &state);
    let spec = *map.spec();

    // The paper intentionally uses a high SINR threshold "to show the
    // clear difference between grids that receive good service and other
    // grids".
    let display_threshold_db = 3.0;
    let serving_thresholded: Vec<Option<u32>> = (0..spec.len())
        .map(|i| {
            if map.sinr_db()[i] >= display_threshold_db {
                map.serving()[i]
            } else {
                None
            }
        })
        .collect();

    println!(
        "Figures 4/5 — service map, suburban market ({} sectors, {}x{} grids)",
        market.network().num_sectors(),
        spec.width,
        spec.height
    );
    println!(
        "service (r_max > 0) coverage: {:.1}% of grids; display threshold {display_threshold_db} dB SINR: {:.1}%\n",
        map.coverage_fraction() * 100.0,
        serving_thresholded.iter().filter(|s| s.is_some()).count() as f64 / spec.len() as f64
            * 100.0
    );
    print!(
        "{}",
        ascii_serving_map(&serving_thresholded, spec.width, spec.height, 72)
    );
    let path = results_dir().join("fig04_coverage.ppm");
    std::fs::write(
        &path,
        serving_map_ppm(&serving_thresholded, spec.width, spec.height),
    )
    .expect("write PPM");
    println!("\nfull-resolution map: {}", path.display());
    println!(
        "Same-letter blobs = one serving sector; '.' = below display threshold (coverage hole)."
    );
}
