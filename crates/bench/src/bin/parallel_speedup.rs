//! **Parallel speedup smoke benchmark** — the CI gate for the exec
//! layer (`ci.sh` stage "speedup").
//!
//! Measures one representative parallel workload — rebuilding a
//! market's path-loss store (base-matrix fan-out) and prewarming every
//! (sector, tilt) matrix — once at 1 thread and once at N threads, and
//! reports the wall-clock ratio. Along the way it asserts the exec
//! determinism contract: both runs must produce bit-identical matrices.
//!
//! Gate: when the runner has ≥ 4 cores (and N ≥ 4), the N-thread run
//! must be at least `MAGUS_SPEEDUP_MIN`× (default 1.8×) faster than the
//! 1-thread run, else the process exits non-zero. On smaller runners
//! the measurement still prints and the gate self-skips — a 1-core
//! container can't fail a parallelism gate it can't exercise.

use magus_bench::{build_market, init_obs_from_env, write_artifact, Scale};
use magus_net::AreaType;
use magus_propagation::NUM_TILT_SETTINGS;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    cores: usize,
    threads: usize,
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    gate_min: f64,
    gate_enforced: bool,
}

/// Rebuilds the market's store (deterministic `w = 0` blend reproduces
/// the original field) and prewarms every matrix; returns a bit-level
/// checksum over all of them so runs can be compared exactly.
fn workload(market: &magus_net::Market) -> u64 {
    let store = market.store_with_shadowing_blend(0, 0.0);
    let keys: Vec<(u32, u8)> = (0..market.network().num_sectors() as u32)
        .flat_map(|id| (0..NUM_TILT_SETTINGS).map(move |t| (id, t)))
        .collect();
    store.prewarm(&keys);
    let mut sum = 0u64;
    for &(id, tilt) in &keys {
        for v in store.matrix(id, tilt).values() {
            sum = sum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(v.to_bits()));
        }
    }
    sum
}

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let market = build_market(AreaType::Suburban, 1, scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = magus_exec::threads().max(2);

    magus_exec::set_threads(1);
    let t0 = Instant::now();
    let serial_sum = workload(&market);
    let serial_s = t0.elapsed().as_secs_f64();

    magus_exec::set_threads(threads);
    let t1 = Instant::now();
    let parallel_sum = workload(&market);
    let parallel_s = t1.elapsed().as_secs_f64();
    magus_exec::clear_threads_override();

    assert!(
        serial_sum == parallel_sum,
        "determinism violated: 1-thread and {threads}-thread builds differ"
    );

    let speedup = serial_s / parallel_s.max(1e-9);
    let gate_min: f64 = std::env::var("MAGUS_SPEEDUP_MIN")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1.8);
    let gate_enforced = cores >= 4 && threads >= 4 && gate_min > 0.0;
    println!(
        "parallel_speedup: cores {cores}, threads {threads}, serial {serial_s:.3}s, \
         parallel {parallel_s:.3}s, speedup {speedup:.2}x (gate {}{gate_min:.2}x)",
        if gate_enforced {
            ">= "
        } else {
            "skipped, min "
        },
    );
    write_artifact(
        "parallel_speedup",
        &Report {
            cores,
            threads,
            serial_s,
            parallel_s,
            speedup,
            gate_min,
            gate_enforced,
        },
    );
    let _ = magus_obs::flush_trace();
    if gate_enforced && speedup < gate_min {
        eprintln!(
            "parallel_speedup: FAIL — {speedup:.2}x < required {gate_min:.2}x on a \
             {cores}-core runner"
        );
        std::process::exit(1);
    }
}
