//! **Figure 8**: coverage maps of the three area types, plus the
//! interfering-sector counts the paper quotes (≈26 rural, ≈55 suburban,
//! ≈178 urban).

use magus_bench::{build_market, results_dir, write_artifact, Scale, AREA_SEEDS};
use magus_geo::units::thermal_noise;
use magus_geo::Db;
use magus_lte::Bandwidth;
use magus_model::{standard_setup, ServiceMap};
use magus_net::AreaType;
use magus_viz::{ascii_serving_map, serving_map_ppm};
use serde::Serialize;

#[derive(Serialize)]
struct MarketStats {
    area: String,
    seed: u64,
    sectors: usize,
    interferers: usize,
    coverage_fraction: f64,
}

fn main() {
    let scale = Scale::from_env();
    let noise = thermal_noise(Bandwidth::Mhz10.hz(), Db(7.0));
    let mut stats = Vec::new();

    for area in AreaType::ALL {
        for (k, &seed) in AREA_SEEDS.iter().enumerate() {
            let market = build_market(area, seed, scale);
            let interferers = market.interfering_sector_count(noise, Db(-6.0));
            let mut coverage = f64::NAN;
            // Render the first replica of each type.
            if k == 0 {
                let model = standard_setup(&market, Bandwidth::Mhz10);
                let state = model.nominal_state();
                let map = ServiceMap::capture(&model.evaluator, &state);
                coverage = map.coverage_fraction();
                let spec = *map.spec();
                println!(
                    "\n=== {area} market (seed {seed}) — {} sectors, {} interferers, {:.0}% covered ===\n",
                    market.network().num_sectors(),
                    interferers,
                    coverage * 100.0
                );
                print!(
                    "{}",
                    ascii_serving_map(map.serving(), spec.width, spec.height, 64)
                );
                let path = results_dir().join(format!("fig08_{area}.ppm"));
                std::fs::write(
                    &path,
                    serving_map_ppm(map.serving(), spec.width, spec.height),
                )
                .expect("write PPM");
                println!("\nfull map: {}", path.display());
            }
            stats.push(MarketStats {
                area: area.to_string(),
                seed,
                sectors: market.network().num_sectors(),
                interferers,
                coverage_fraction: coverage,
            });
        }
    }

    println!("\nInterfering-sector counts (paper: rural ≈26, suburban ≈55, urban ≈178):");
    for area in AreaType::ALL {
        let mean: f64 = stats
            .iter()
            .filter(|s| s.area == area.to_string())
            .map(|s| s.interferers as f64)
            .sum::<f64>()
            / AREA_SEEDS.len() as f64;
        println!("  {area:<9} {mean:>7.0}");
    }
    write_artifact("fig08_markets", &stats);
}
