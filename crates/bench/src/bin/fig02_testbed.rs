//! **Figure 2**: the LTE testbed experiments (§3) — utility before and
//! after a planned eNodeB shutdown under proactive / reactive /
//! no-tuning, for the 2-eNodeB and 3-eNodeB scenarios.
//!
//! Paper anchors: Scenario 1 — f(C_before)=3.31, f(C_after)=3.09,
//! f(C_upgrade)=2.68, with the post-outage optimum at maximum power
//! (no interference left). Scenario 2 — f(C_after)=4.85 vs
//! f(C_upgrade)=3.46, with the optimum *not* at maximum power
//! (interference-limited). Absolute values differ on our synthetic
//! floor; the ordering and the interference insight must hold.

use magus_bench::write_artifact;
use magus_testbed::sim::SimConfig;
use magus_testbed::{
    figure2_timeline, optimize_attenuations, scenario1, scenario2, Scenario, SimTime, TimelineKind,
};

fn run_scenario(s: &Scenario) {
    let cfg = SimConfig::default();
    println!("\n=== {} ===", s.label);

    let n = s.env.num_enodebs();
    let all_on = vec![true; n];
    let mut without = all_on.clone();
    without[s.target.0] = false;

    let (before, f_before) = optimize_attenuations(&s.env, &all_on, &cfg);
    let (after, f_after) = optimize_attenuations(&s.env, &without, &cfg);
    println!(
        "C_before attenuations: {:?}  (f = {f_before:.2})",
        before.iter().map(|l| l.0).collect::<Vec<_>>()
    );
    println!(
        "C_after  attenuations: {:?}  (f = {f_after:.2})",
        after.iter().map(|l| l.0).collect::<Vec<_>>()
    );

    let traces = figure2_timeline(s, &cfg, SimTime::from_secs(3), SimTime::from_secs(9));
    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "t (s)", "proactive", "reactive", "no-tuning"
    );
    let find = |k: TimelineKind| traces.iter().find(|t| t.kind == k).expect("trace present");
    let (p, r, nt) = (
        find(TimelineKind::Proactive),
        find(TimelineKind::Reactive),
        find(TimelineKind::NoTuning),
    );
    for i in 0..p.windows.len() {
        println!(
            "{:>8.1} {:>12.2} {:>12.2} {:>12.2}",
            p.windows[i].t_secs, p.windows[i].utility, r.windows[i].utility, nt.windows[i].utility
        );
    }
    println!(
        "\nReference: f(C_before) {:.2} > f(C_after) {:.2} ≥ f(C_upgrade) {:.2}",
        p.f_before, p.f_after, p.f_upgrade
    );
    write_artifact(
        &format!(
            "fig02_{}",
            s.label.split_whitespace().next().unwrap_or("scen")
        ),
        &traces,
    );
}

fn main() {
    println!("Figure 2 — testbed demonstration (upgrade fires at t = 3 s)");
    run_scenario(&scenario1());
    run_scenario(&scenario2());
    println!(
        "\nScenario-2 insight: the optimizer's C_after keeps at least one survivor\n\
         backed off from maximum power — interference management, not brute force."
    );
}
