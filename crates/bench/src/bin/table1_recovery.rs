//! **Table 1**: recovery ratio for {rural, suburban, urban} × scenarios
//! {(a), (b), (c)} × tuning {power, tilt, joint}, averaged over the
//! per-type market replicas.
//!
//! Paper reference values (averaged, %):
//!
//! ```text
//!            Rural           Suburban        Urban
//!            (a)  (b)  (c)   (a)  (b)  (c)   (a)  (b)  (c)
//! Power     18.3 17.5 11.0  56.5 32.2 24.5  17.1 22.7 14.1
//! Tilt       8.4 23.0  9.3  37.7 27.9 22.8   8.8 29.7  3.8
//! Joint     37.0 28.9 17.0  76.4 37.4 38.8  20.1 32.0 19.2
//! ```
//!
//! The expected *shape* (asserted by the integration tests): suburban
//! beats rural and urban for power tuning, joint ≥ the better of
//! power/tilt on average, and every cell recovers a positive fraction.
//! This binary also prints the scenario target sectors — the content of
//! the paper's Figure 9.

use magus_bench::{
    emit_expectation, init_obs_from_env, map_markets_parallel, mean, write_artifact, Scale,
};
use magus_core::{prepare_scenario, ExperimentConfig, TuningKind};
use magus_model::UtilityKind;
use magus_net::{AreaType, UpgradeScenario};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Cell {
    area: String,
    scenario: String,
    tuning: String,
    recoveries: Vec<f64>,
    mean_recovery: f64,
}

/// Paper Table 1 reference values (%), row-major in the loop order
/// below: tuning {power, tilt, joint} × area {rural, suburban, urban}
/// × scenario {(a), (b), (c)}.
const PAPER_TABLE1_PCT: [[f64; 9]; 3] = [
    [18.3, 17.5, 11.0, 56.5, 32.2, 24.5, 17.1, 22.7, 14.1],
    [8.4, 23.0, 9.3, 37.7, 27.9, 22.8, 8.8, 29.7, 3.8],
    [37.0, 28.9, 17.0, 76.4, 37.4, 38.8, 20.1, 32.0, 19.2],
];

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let cfg = ExperimentConfig::default();
    // (area, scenario, tuning) -> recovery samples over seeds.
    let mut cells: BTreeMap<(String, String, String), Vec<f64>> = BTreeMap::new();

    let per_market = map_markets_parallel(scale, |area, seed, market, model| {
        let mut rows = Vec::new();
        for scenario in UpgradeScenario::ALL {
            let prepared = prepare_scenario(model, market, scenario, &cfg);
            eprintln!(
                "[fig9] {area} seed {seed} scenario {scenario}: targets {:?}",
                prepared.targets.iter().map(|t| t.0).collect::<Vec<_>>()
            );
            for tuning in TuningKind::ALL {
                let out = prepared.run(model, tuning, &cfg);
                let r = out.recovery(UtilityKind::Performance);
                eprintln!(
                    "[run] {area} seed {seed} {scenario} {tuning}: recovery {:.1}% ({} steps, {} probes)",
                    r * 100.0,
                    out.search.steps.len(),
                    out.search.probes
                );
                rows.push((scenario.label().to_string(), tuning.to_string(), r));
            }
        }
        rows
    });
    for (area, _seed, rows) in per_market {
        for (scenario, tuning, r) in rows {
            cells
                .entry((area.to_string(), scenario, tuning))
                .or_default()
                .push(r);
        }
    }

    println!("\nTable 1 — recovery ratio (performance utility), mean over market replicas\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "tuning",
        "rural(a)",
        "rural(b)",
        "rural(c)",
        "suburban(a)",
        "suburban(b)",
        "suburban(c)",
        "urban(a)",
        "urban(b)",
        "urban(c)"
    );
    let mut artifact = Vec::new();
    for (ti, tuning) in TuningKind::ALL.into_iter().enumerate() {
        let mut row = format!("{:<8}", tuning.to_string());
        for (ai, area) in AreaType::ALL.into_iter().enumerate() {
            for (si, scenario) in UpgradeScenario::ALL.into_iter().enumerate() {
                let key = (
                    area.to_string(),
                    scenario.label().to_string(),
                    tuning.to_string(),
                );
                let samples = cells.get(&key).cloned().unwrap_or_default();
                let m = mean(&samples);
                row.push_str(&format!(" {:>13.1}%", m * 100.0));
                emit_expectation(
                    "table1_recovery",
                    &format!("{area}({}) {tuning} recovery", scenario.label()),
                    PAPER_TABLE1_PCT[ti][ai * 3 + si] / 100.0,
                    m,
                );
                artifact.push(Cell {
                    area: key.0,
                    scenario: key.1,
                    tuning: key.2,
                    recoveries: samples,
                    mean_recovery: m,
                });
            }
        }
        println!("{row}");
    }
    println!(
        "\nPaper shape check: suburban(a) power should dominate rural/urban power rows;\n\
         joint should improve on power in most columns."
    );
    write_artifact("table1_recovery", &artifact);
    let _ = magus_obs::flush_trace();
}
