//! **Continental-scale matrix benchmark and regression gate** — the
//! perf trajectory for market generation and pruned evaluation at scale
//! (`ci.sh` stage "scale matrix gate").
//!
//! Magus's paper-scale markets are a few hundred sectors; a national
//! deployment is tens of thousands. This binary generates a multi-city
//! [`MarketParams::scaled`] market (`MAGUS_SCALE_SECTORS` sectors,
//! default 2000; the nightly CI run uses 10k+), builds the standard
//! model over it, and measures:
//!
//! * **sectors/sec** through generation + model build + initial state —
//!   the cold-start cost a national planning run pays once;
//! * **probes/sec** over the hill-climber's candidate mix on a sample
//!   of sectors — the steady-state cost, which must NOT scale with
//!   market size: a probe touches only the perturbed sector's footprint
//!   and interference neighborhood, never the national raster (asserted
//!   below via the `evaluator.sweep_cells` counter);
//! * **peak RSS** (`VmHWM`) — the tiled i16-compressed base rasters are
//!   what keep this in commodity-runner range.
//!
//! **Gate.** The repo root commits `BENCH_scale.json`. Throughput is
//! normalized by the same splitmix64 calibration loop as `probe_bench`
//! so the committed baseline gates across host speeds. A normalized
//! drop of more than `MAGUS_SCALE_REGRESSION_MAX_PCT` (default 10%)
//! fails the run; the gate self-skips on runners with < 4 cores and
//! when the baseline is missing or was recorded at a different sector
//! target. `MAGUS_SCALE_WRITE_BASELINE=1` rewrites the baseline.

use magus_bench::{init_obs_from_env, write_artifact};
use magus_geo::Db;
use magus_model::{Evaluator, ModelState, UtilityKind};
use magus_net::{ConfigChange, Market, MarketParams, SectorId};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    /// The `MAGUS_SCALE_SECTORS` target this run was sized for.
    sectors_target: usize,
    /// Sectors the deterministic layout actually produced.
    sectors: usize,
    grids: usize,
    cities: u32,
    cores: usize,
    calib_mops: f64,
    generate_s: f64,
    model_build_s: f64,
    /// Sectors per second through generate + build + initial state.
    sectors_per_sec: f64,
    /// `sectors_per_sec / calib_mops` — what the gate compares.
    normalized: f64,
    probes_per_sec: f64,
    /// Mean grid cells swept per probe; bounded by one sector's
    /// footprint window, independent of market size.
    cells_per_probe: f64,
    /// Compressed base-raster bytes across the whole store.
    store_encoded_mib: f64,
    peak_rss_mib: f64,
    gate_enforced: bool,
    max_regression_pct: f64,
}

/// The gate fields, extracted field-by-field so older baselines keep
/// gating after `Report` grows a field.
struct Baseline {
    sectors_target: usize,
    normalized: f64,
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v: Value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("baseline is not a JSON object")?;
    let num = |k: &str| {
        obj.get(k)
            .and_then(Value::as_number)
            .map(|n| n.as_f64())
            .ok_or_else(|| format!("missing `{k}`"))
    };
    Ok(Baseline {
        sectors_target: num("sectors_target")? as usize,
        normalized: num("normalized")?,
    })
}

/// Same fixed splitmix64 calibration loop as `probe_bench`, in
/// million-ops/sec, so both gates share one machine-speed scale.
fn calibrate() -> f64 {
    const OPS: u64 = 20_000_000;
    let t0 = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..OPS {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= z ^ (z >> 31);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_ne!(x, 0, "calibration loop optimized away");
    OPS as f64 / secs / 1e6
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), MiB.
/// `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// The hill-climber's candidate mix over a sample of `k` sectors.
fn candidates(ev: &Evaluator, state: &ModelState, k: usize) -> Vec<ConfigChange> {
    let mut out = Vec::new();
    for s in 0..state.num_sectors().min(k) as u32 {
        let id = SectorId(s);
        let sc = state.config().sector(id);
        if !sc.on_air {
            continue;
        }
        let mut c = vec![
            ConfigChange::PowerDelta(id, Db(1.0)),
            ConfigChange::PowerDelta(id, Db(-1.0)),
        ];
        if sc.tilt > 0 {
            c.push(ConfigChange::SetTilt(id, sc.tilt - 1));
        }
        if sc.tilt + 1 < magus_propagation::NUM_TILT_SETTINGS {
            c.push(ConfigChange::SetTilt(id, sc.tilt + 1));
        }
        out.extend(
            c.into_iter()
                .filter(|&ch| state.config().would_change(ev.network(), ch)),
        );
    }
    out
}

fn main() {
    init_obs_from_env();
    let target = env_usize("MAGUS_SCALE_SECTORS", 2_000);
    let params = MarketParams::scaled(target, 1);
    let cities = params.city_grid;

    eprintln!("scale_matrix: generating ~{target}-sector market ({cities}x{cities} cities)…");
    let t0 = Instant::now();
    let market = Market::generate(params);
    let generate_s = t0.elapsed().as_secs_f64();
    let sectors = market.network().num_sectors();
    let grids = market.spec().len();
    assert!(
        market.store().is_compressed(),
        "scaled markets must carry tile-compressed base rasters"
    );
    let store_encoded_mib = market.store().base_raster_bytes() as f64 / (1024.0 * 1024.0);
    eprintln!(
        "scale_matrix: {sectors} sectors over {grids} grids in {generate_s:.1}s \
         ({store_encoded_mib:.1} MiB of compressed bases)"
    );

    // Model build + initial state: the rest of the cold-start cost.
    let t1 = Instant::now();
    let model = magus_model::standard_setup(&market, magus_lte::Bandwidth::Mhz10);
    let ev = &model.evaluator;
    let state = ev.initial_state(&model.nominal);
    let model_build_s = t1.elapsed().as_secs_f64();
    let cold_s = generate_s + model_build_s;
    let sectors_per_sec = sectors as f64 / cold_s.max(1e-9);
    eprintln!(
        "scale_matrix: model + initial state in {model_build_s:.1}s \
         → {sectors_per_sec:.0} sectors/s cold"
    );

    // Steady-state probing on a sector sample, with the sweep-cell
    // counter proving probes touch one footprint, not the raster.
    let cands = candidates(ev, &state, env_usize("MAGUS_SCALE_PROBE_SECTORS", 64));
    assert!(!cands.is_empty(), "no probe candidates at scale");
    let prev_level = magus_obs::level();
    magus_obs::set_level(magus_obs::ObsLevel::Counters);
    let registry = magus_obs::registry();
    registry.reset();
    let mut replica = state.clone();
    // Warm the tilt-matrix cache so assembly lands outside the timing.
    for &ch in &cands {
        let _ = ev.probe_objective(&mut replica, ch, UtilityKind::Performance);
    }
    registry.reset();
    let t2 = Instant::now();
    let rounds = 3usize;
    for _ in 0..rounds {
        for &ch in &cands {
            let _ = ev.probe_objective(&mut replica, ch, UtilityKind::Performance);
        }
    }
    let probe_wall = t2.elapsed().as_secs_f64();
    let probes = (rounds * cands.len()) as f64;
    let swept = registry.counter("evaluator.sweep_cells").get() as f64;
    magus_obs::set_level(prev_level);
    assert_eq!(
        replica.bit_fingerprint(),
        state.bit_fingerprint(),
        "probing mutated the state"
    );
    let probes_per_sec = probes / probe_wall.max(1e-9);
    let cells_per_probe = swept / probes.max(1.0);
    // A probe may sweep at most one footprint window (plus nothing
    // else). Anything near the full raster means pruning broke. The +2
    // covers the window's floor/ceil edge slack.
    let window_cells = ((market.params().footprint_span_m / market.params().cell_size_m).ceil()
        + 2.0)
        .powi(2)
        .min(grids as f64);
    assert!(
        cells_per_probe <= window_cells,
        "probes sweep {cells_per_probe:.0} cells on average — more than one \
         {window_cells:.0}-cell footprint; incremental pruning regressed"
    );
    eprintln!(
        "scale_matrix: {probes_per_sec:.0} probes/s, {cells_per_probe:.0} cells/probe \
         (footprint {window_cells:.0}, raster {grids})"
    );

    let calib_mops = calibrate();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let normalized = sectors_per_sec / calib_mops;
    let max_regression_pct = env_f64("MAGUS_SCALE_REGRESSION_MAX_PCT", 10.0);
    let gate_possible = cores >= 4 && max_regression_pct > 0.0;
    let peak_rss = peak_rss_mib().unwrap_or(0.0);
    let report = Report {
        sectors_target: target,
        sectors,
        grids,
        cities,
        cores,
        calib_mops,
        generate_s,
        model_build_s,
        sectors_per_sec,
        normalized,
        probes_per_sec,
        cells_per_probe,
        store_encoded_mib,
        peak_rss_mib: peak_rss,
        gate_enforced: gate_possible,
        max_regression_pct,
    };
    println!(
        "scale_matrix: {sectors} sectors, {sectors_per_sec:.0} sectors/s \
         (normalized {normalized:.2}), peak RSS {peak_rss:.0} MiB"
    );
    write_artifact("scale_matrix", &report);
    if std::env::var_os("MAGUS_SCALE_WRITE_BASELINE").is_some() {
        let json = serde_json::to_string_pretty(&report).expect("serialize baseline");
        std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");
        eprintln!("[artifact] BENCH_scale.json (baseline rewritten)");
    }

    // Regression gate against the committed baseline.
    let baseline = match std::fs::read_to_string("BENCH_scale.json") {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("scale_matrix: BENCH_scale.json unreadable ({e}); gate skipped");
                None
            }
        },
        Err(_) => {
            eprintln!("scale_matrix: no committed BENCH_scale.json; gate skipped");
            None
        }
    };
    let Some(baseline) = baseline else { return };
    if !gate_possible {
        println!(
            "scale_matrix: gate skipped ({cores} cores < 4 or gate disabled); \
             baseline normalized {:.2}",
            baseline.normalized
        );
        return;
    }
    if baseline.sectors_target != target {
        println!(
            "scale_matrix: gate skipped (baseline target {} != run target {target})",
            baseline.sectors_target
        );
        return;
    }
    let floor = baseline.normalized * (1.0 - max_regression_pct / 100.0);
    println!(
        "scale_matrix: gate — normalized {normalized:.2} vs baseline {:.2} \
         (floor {floor:.2}, max regression {max_regression_pct:.0}%)",
        baseline.normalized
    );
    if normalized < floor {
        eprintln!(
            "scale_matrix: FAIL — normalized cold-start throughput {normalized:.2} \
             regressed more than {max_regression_pct:.0}% below the committed baseline {:.2}",
            baseline.normalized
        );
        std::process::exit(1);
    }
}
