//! **Figure 3**: the path-loss raster of one operational sector —
//! "brighter color indicates lower path loss", irregular contours from
//! terrain/clutter, values from ≈ −20 dB near the mast to ≈ −200 dB at
//! the window boundary.

use magus_bench::{build_market, results_dir, Scale};
use magus_geo::{GridMap, GridSpec, PointM};
use magus_net::AreaType;
use magus_propagation::NOMINAL_TILT_INDEX;
use magus_viz::{ascii_heatmap, heatmap_pgm};

fn main() {
    let market = build_market(AreaType::Suburban, 1, Scale::from_env());
    let center = market
        .network()
        .nearest_sector(PointM::new(0.0, 0.0))
        .expect("market has sectors");
    let mat = market.store().matrix(center.0, NOMINAL_TILT_INDEX);
    let w = mat.window();

    // Re-raster the window into its own GridSpec for rendering.
    let spec = market.spec();
    let sub = GridSpec::new(
        PointM::new(
            spec.origin.x + w.x0 as f64 * spec.cell_size,
            spec.origin.y + w.y0 as f64 * spec.cell_size,
        ),
        spec.cell_size,
        w.x1 - w.x0,
        w.y1 - w.y0,
    );
    let map = GridMap::from_vec(sub, mat.values().iter().map(|&v| v as f64).collect());
    let (lo, hi) = map.finite_range().expect("finite losses");

    println!(
        "Figure 3 — path loss of sector {} (suburban market)",
        center.0
    );
    println!(
        "window {}x{} cells, loss range {:.0} dB … {:.0} dB (paper: −20 … −200 dB)\n",
        w.x1 - w.x0,
        w.y1 - w.y0,
        hi,
        lo
    );
    print!("{}", ascii_heatmap(&map, 72));
    let png_path = results_dir().join("fig03_pathloss.pgm");
    std::fs::write(&png_path, heatmap_pgm(&map)).expect("write PGM");
    println!("\nfull-resolution raster: {}", png_path.display());
    println!(
        "Directionality check: the bright lobe should point along the sector azimuth ({:.0}°).",
        market.network().sector(center).site.azimuth.degrees()
    );
}
