//! **Search-portfolio throughput benchmark and regression gate** — the
//! perf trajectory for the portfolio strategies (`ci.sh` stage
//! "search portfolio").
//!
//! Where `probe_bench` times the bare probe cycle, this binary times
//! the three *strategies* end to end — greedy, anneal, beam — on the
//! bundled suburban scenario, and reports each strategy's effective
//! probes/sec (the strategy's own probe counter over its wall-clock).
//! That figure folds in everything the strategy adds on top of raw
//! probing: candidate enumeration, RNG draws, beam bookkeeping, undo
//! rewinds. The trajectory is written to
//! `target/magus-results/search_bench.json`.
//!
//! **Determinism.** Every repetition of a strategy starts from the same
//! state and must land on a bit-identical final utility; asserted every
//! run.
//!
//! **Gate.** The repo root commits a baseline `BENCH_search.json`.
//! Absolute probes/sec varies with the host, so (exactly like
//! `probe_bench`) both the baseline and the current run also measure a
//! fixed pure-CPU calibration loop (splitmix64 mixing, `calib_mops`)
//! and the gate compares the *normalized* single-thread throughput
//! `probes_per_sec / calib_mops`, per strategy. A drop of more than
//! `MAGUS_SEARCH_REGRESSION_MAX_PCT` (default 10%) on any strategy
//! fails the run. The gate self-skips on runners with < 4 cores (the
//! measurement still prints and the artifact is still written), when
//! the baseline is missing, or when it was recorded at a different
//! `MAGUS_SCALE`.
//!
//! Re-baselining: `MAGUS_SEARCH_WRITE_BASELINE=1` rewrites the
//! repo-root `BENCH_search.json` from the current run.

use magus_bench::{build_market, init_obs_from_env, write_artifact, Scale};
use magus_core::{
    prepare_scenario, run_strategy_spec, ExperimentConfig, HillClimbParams, StrategySpec,
};
use magus_lte::Bandwidth;
use magus_net::{AreaType, UpgradeScenario};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

const STRATEGIES: [StrategySpec; 3] = [
    StrategySpec::Greedy,
    StrategySpec::Anneal,
    StrategySpec::Beam(4),
];

#[derive(Serialize, Clone)]
struct StrategyPoint {
    strategy: String,
    /// Probes per repetition (deterministic, identical every rep).
    probes: u64,
    reps: usize,
    wall_s: f64,
    probes_per_sec: f64,
    /// `probes_per_sec / calib_mops` — the machine-speed-normalized
    /// figure the regression gate compares.
    normalized: f64,
}

#[derive(Serialize)]
struct Report {
    scale: String,
    cores: usize,
    sectors: usize,
    grids: usize,
    calib_mops: f64,
    strategies: Vec<StrategyPoint>,
    gate_enforced: bool,
    max_regression_pct: f64,
}

/// The fields of a committed `BENCH_search.json` the gate actually
/// compares, extracted field-by-field so baselines written before a
/// `Report` field was added keep gating (the vendored deserializer
/// rejects any missing struct field).
struct Baseline {
    scale: String,
    /// `(strategy, normalized)` rows.
    normalized: Vec<(String, f64)>,
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v: Value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("baseline is not a JSON object")?;
    let scale = obj
        .get("scale")
        .and_then(Value::as_str)
        .ok_or("missing `scale`")?
        .to_string();
    let rows = obj
        .get("strategies")
        .and_then(Value::as_array)
        .ok_or("missing `strategies`")?;
    let mut normalized = Vec::new();
    for row in rows {
        let row = row.as_object().ok_or("strategy row is not an object")?;
        let name = row
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or("strategy row missing `strategy`")?;
        let n = row
            .get("normalized")
            .and_then(Value::as_number)
            .ok_or("strategy row missing `normalized`")?
            .as_f64();
        normalized.push((name.to_string(), n));
    }
    Ok(Baseline { scale, normalized })
}

/// Fixed pure-CPU calibration: splitmix64 mixing, reported in
/// million-ops/sec (the same loop `probe_bench` runs, so the two
/// benches normalize against the same yardstick).
fn calibrate() -> f64 {
    const OPS: u64 = 20_000_000;
    let t0 = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..OPS {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= z ^ (z >> 31);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_ne!(x, 0, "calibration loop optimized away");
    OPS as f64 / secs / 1e6
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Eval => "eval",
        Scale::Full => "full",
    };
    let market = build_market(AreaType::Suburban, 1, scale);
    let model = magus_model::standard_setup(&market, Bandwidth::Mhz10);
    let cfg = ExperimentConfig::default();
    let prepared = prepare_scenario(&model, &market, UpgradeScenario::SingleCentralSector, &cfg);
    let hill = HillClimbParams {
        utility: cfg.search.utility,
        max_moves: cfg.search.max_changes,
        ..HillClimbParams::default()
    };

    let calib_mops = calibrate();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let target_s = env_f64("MAGUS_SEARCH_TARGET_S", 1.0);

    // The normalized figure is defined at 1 worker thread, like
    // `probe_bench`'s `normalized_1t`.
    magus_exec::set_threads(1);
    let mut points = Vec::new();
    for spec in STRATEGIES {
        // Warm-up rep: fills the path-loss cache and gives the rep
        // count something to aim with.
        let t0 = Instant::now();
        let mut state = prepared.start_state();
        let reference = run_strategy_spec(
            spec,
            hill,
            &model.evaluator,
            &mut state,
            &prepared.neighbors,
        );
        let rep_s = t0.elapsed().as_secs_f64();
        let reps = ((target_s / rep_s.max(1e-6)).ceil() as usize).clamp(1, 50);

        let t0 = Instant::now();
        for _ in 0..reps {
            let mut state = prepared.start_state();
            let report = run_strategy_spec(
                spec,
                hill,
                &model.evaluator,
                &mut state,
                &prepared.neighbors,
            );
            // Determinism: every rep starts from the same state and
            // must land on the same utility, bit for bit.
            assert_eq!(
                report.utility.to_bits(),
                reference.utility.to_bits(),
                "{}: repetitions disagree on the final utility",
                reference.strategy
            );
            assert_eq!(
                report.probes, reference.probes,
                "{}: repetitions disagree on the probe count",
                reference.strategy
            );
        }
        let wall = t0.elapsed().as_secs_f64();
        let total_probes = reference.probes.saturating_mul(reps as u64);
        let pps = total_probes as f64 / wall.max(1e-9);
        println!(
            "search_bench: {:>8}: {pps:>12.0} probes/s ({} probes × {reps} reps, {wall:.3}s)",
            reference.strategy, reference.probes
        );
        points.push(StrategyPoint {
            strategy: reference.strategy,
            probes: reference.probes,
            reps,
            wall_s: wall,
            probes_per_sec: pps,
            normalized: pps / calib_mops,
        });
    }
    magus_exec::clear_threads_override();

    let max_regression_pct = env_f64("MAGUS_SEARCH_REGRESSION_MAX_PCT", 10.0);
    let gate_possible = cores >= 4 && max_regression_pct > 0.0;
    let report = Report {
        scale: scale_name.to_string(),
        cores,
        sectors: market.network().num_sectors(),
        grids: market.spec().len(),
        calib_mops,
        strategies: points,
        gate_enforced: gate_possible,
        max_regression_pct,
    };
    println!("search_bench: calib {calib_mops:.0} Mops/s");
    write_artifact("search_bench", &report);
    if std::env::var_os("MAGUS_SEARCH_WRITE_BASELINE").is_some() {
        let json = serde_json::to_string_pretty(&report).expect("serialize baseline");
        std::fs::write("BENCH_search.json", json).expect("write BENCH_search.json");
        eprintln!("[artifact] BENCH_search.json (baseline rewritten)");
    }
    let _ = magus_obs::flush_trace();

    // Regression gate against the committed baseline.
    let baseline = match std::fs::read_to_string("BENCH_search.json") {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("search_bench: BENCH_search.json unreadable ({e}); gate skipped");
                None
            }
        },
        Err(_) => {
            eprintln!("search_bench: no committed BENCH_search.json; gate skipped");
            None
        }
    };
    let Some(baseline) = baseline else { return };
    if !gate_possible {
        println!("search_bench: gate skipped ({cores} cores < 4 or gate disabled)");
        return;
    }
    if baseline.scale != scale_name {
        println!(
            "search_bench: gate skipped (baseline scale `{}` != run scale `{scale_name}`)",
            baseline.scale
        );
        return;
    }
    let mut failed = false;
    for (name, base_n) in &baseline.normalized {
        let Some(point) = report.strategies.iter().find(|p| &p.strategy == name) else {
            eprintln!("search_bench: FAIL — baseline strategy `{name}` missing from this run");
            failed = true;
            continue;
        };
        let floor = base_n * (1.0 - max_regression_pct / 100.0);
        println!(
            "search_bench: gate {name} — normalized {:.1} vs baseline {base_n:.1} \
             (floor {floor:.1}, max regression {max_regression_pct:.0}%)",
            point.normalized
        );
        if point.normalized < floor {
            eprintln!(
                "search_bench: FAIL — {name} normalized throughput {:.1} regressed more \
                 than {max_regression_pct:.0}% below the committed baseline {base_n:.1}",
                point.normalized
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
