//! **Table 2**: flexibility of the utility function — optimize the
//! suburban scenario (a) under each of the paper's two utilities and
//! report recovery measured under *both*.
//!
//! Paper values:
//!
//! ```text
//! optimize \ measure    performance   coverage
//! performance              66.3%        2.6%
//! coverage                −29.3%       14.4%
//! ```
//!
//! The shape to reproduce: each utility recovers most of *itself*, the
//! off-diagonal entries are small or negative (optimizing coverage can
//! sacrifice throughput and vice versa).

use magus_bench::{build_market, emit_expectation, init_obs_from_env, pct, write_artifact, Scale};
use magus_core::{run_recovery_with, ExperimentConfig, TuningKind};
use magus_model::{standard_setup, UtilityKind};
use magus_net::{AreaType, UpgradeScenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    optimized_for: String,
    recovery_performance: f64,
    recovery_coverage: f64,
}

/// Paper Table 2 values (%), rows in `UtilityKind::ALL` order
/// (performance, coverage), columns (measured performance, coverage).
const PAPER_TABLE2_PCT: [[f64; 2]; 2] = [[66.3, 2.6], [-29.3, 14.4]];

fn main() {
    init_obs_from_env();
    let scale = Scale::from_env();
    let market = build_market(AreaType::Suburban, 1, scale);
    let model = standard_setup(&market, magus_lte::Bandwidth::Mhz10);

    println!("\nTable 2 — recovery ratio by optimization utility (suburban, scenario (a))\n");
    println!(
        "{:<22} {:>18} {:>18}",
        "optimize \\ measure", "u_performance", "u_coverage"
    );
    // The two optimization rows are independent experiments; fan them
    // out over the exec pool (each row's search is deterministic, so the
    // table is identical at any thread count).
    let row_results =
        magus_exec::map_indexed(UtilityKind::ALL.len(), magus_exec::threads(), |ki| {
            let kind = UtilityKind::ALL[ki];
            // The planner baseline C_before is shared across rows (the
            // carrier plans once); only the mitigation search's
            // objective varies.
            let mut cfg = ExperimentConfig::default();
            cfg.search.utility = kind;
            let out = run_recovery_with(
                &model,
                &market,
                UpgradeScenario::SingleCentralSector,
                TuningKind::Joint,
                &cfg,
            );
            (
                out.recovery(UtilityKind::Performance),
                out.recovery(UtilityKind::Coverage),
            )
        });
    let mut rows = Vec::new();
    for (ki, kind) in UtilityKind::ALL.into_iter().enumerate() {
        let (rp, rc) = row_results[ki];
        println!("{:<22} {:>18} {:>18}", kind.to_string(), pct(rp), pct(rc));
        emit_expectation(
            "table2_utilities",
            &format!("optimize {kind}, measure performance"),
            PAPER_TABLE2_PCT[ki][0] / 100.0,
            rp,
        );
        emit_expectation(
            "table2_utilities",
            &format!("optimize {kind}, measure coverage"),
            PAPER_TABLE2_PCT[ki][1] / 100.0,
            rc,
        );
        rows.push(Row {
            optimized_for: kind.to_string(),
            recovery_performance: rp,
            recovery_coverage: rc,
        });
    }
    println!(
        "\nPaper shape: diagonal dominates its row; off-diagonal entries are small\n\
         or negative (optimizing one metric can sacrifice the other)."
    );
    write_artifact("table2_utilities", &rows);
    let _ = magus_obs::flush_trace();
}
