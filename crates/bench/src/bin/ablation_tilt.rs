//! **Ablation**: the paper's global tilt-delta approximation vs faithful
//! per-sector tilt matrices.
//!
//! Paper §5, Antenna Tilt Tuning: "our approach makes the simplifying
//! assumption that the change to a path loss matrix caused by a specific
//! uptilt or downtilt is the same across all sectors … (and have left it
//! to future work to explore a more faithful tilting model)."
//!
//! Our store computes *faithful* per-(sector, tilt) matrices, so we can
//! quantify what the paper's shortcut costs: for each sector, compare the
//! true per-cell delta `L(tilt) − L(nominal)` against the shared
//! flat-earth approximation, and report the error distribution.

use magus_bench::{build_market, write_artifact, Scale};
use magus_net::AreaType;
use magus_propagation::NOMINAL_TILT_INDEX;
use serde::Serialize;

#[derive(Serialize)]
struct TiltErrorStats {
    tilt_index: u8,
    downtilt_deg: f64,
    mean_abs_error_db: f64,
    p95_abs_error_db: f64,
    max_abs_error_db: f64,
    cells: usize,
}

fn main() {
    let market = build_market(AreaType::Suburban, 1, Scale::from_env());
    let store = market.store();
    let spec = *market.spec();
    let tilts = store.tilt_settings();

    println!("Ablation — global tilt-delta approximation vs faithful matrices\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "tilt idx", "downtilt", "mean |err|", "p95 |err|", "max |err|"
    );

    let sectors: Vec<u32> = (0..store.num_sectors() as u32).step_by(7).collect();
    let mut stats = Vec::new();
    for tilt in [0u8, 4, 6, 10, 12, 16] {
        let mut errors: Vec<f64> = Vec::new();
        for &s in &sectors {
            let nominal = store.matrix(s, NOMINAL_TILT_INDEX);
            let tilted = store.matrix(s, tilt);
            let site = store.site(s);
            for (c, l_nom) in nominal.iter() {
                let Some(l_tilt) = tilted.get(c) else {
                    continue;
                };
                let true_delta = l_tilt.0 - l_nom.0;
                let d = spec.center_of(c).distance(site.position);
                let approx = store.approx_tilt_delta_db(d, NOMINAL_TILT_INDEX, tilt).0;
                errors.push((true_delta - approx).abs());
            }
        }
        errors.sort_by(|a, b| a.total_cmp(b));
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let p95 = errors[(errors.len() as f64 * 0.95) as usize - 1];
        let max = *errors.last().unwrap_or(&0.0);
        println!(
            "{:>10} {:>11.1}° {:>12.2}dB {:>12.2}dB {:>12.2}dB",
            tilt,
            tilts.downtilt_deg(tilt),
            mean,
            p95,
            max
        );
        stats.push(TiltErrorStats {
            tilt_index: tilt,
            downtilt_deg: tilts.downtilt_deg(tilt),
            mean_abs_error_db: mean,
            p95_abs_error_db: p95,
            max_abs_error_db: max,
            cells: errors.len(),
        });
    }
    println!(
        "\nReading: small mean errors justify the paper's shortcut for *search*\n\
         (candidate ranking survives ~1 dB noise); the tail errors over rough\n\
         terrain are why the paper flags a faithful tilting model as future work.\n\
         This repository's model always uses the faithful matrices."
    );
    write_artifact("ablation_tilt", &stats);
}
