//! Criterion benches of the path-loss substrate: store construction (the
//! expensive market-setup step) and per-query costs.

use criterion::{criterion_group, criterion_main, Criterion};
use magus_geo::{Bearing, GridSpec, PointM};
use magus_propagation::{
    AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    NOMINAL_TILT_INDEX,
};
use magus_terrain::{ClutterParams, Terrain, TerrainParams};
use std::hint::black_box;
use std::sync::Arc;

fn sites(n: usize) -> Vec<SectorSite> {
    (0..n)
        .map(|i| SectorSite {
            position: PointM::new(
                (i % 4) as f64 * 2_000.0 - 3_000.0,
                (i / 4) as f64 * 2_000.0 - 3_000.0,
            ),
            height_m: 30.0,
            azimuth: Bearing::new(i as f64 * 120.0),
            antenna: AntennaParams::default(),
        })
        .collect()
}

fn bench_propagation(c: &mut Criterion) {
    let spec = GridSpec::centered(PointM::new(0.0, 0.0), 200.0, 12_000.0);
    let terrain = Arc::new(Terrain::generate(
        spec,
        7,
        &TerrainParams::default(),
        &ClutterParams::default(),
    ));
    let model = PropagationModel::new(Arc::clone(&terrain), SpmParams::default(), 7);

    c.bench_function("pathloss/point_query", |b| {
        let s = sites(1)[0];
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let p = PointM::new((i % 100) as f64 * 50.0, (i % 77) as f64 * 60.0);
            black_box(model.total_loss_db(&s, 1, p, 4.0))
        })
    });

    let mut g = c.benchmark_group("pathloss/store");
    g.sample_size(10);
    g.bench_function("build_12_sectors", |b| {
        b.iter(|| {
            black_box(PathLossStore::build(
                spec,
                sites(12),
                &model,
                TiltSettings::default(),
                8_000.0,
            ))
        })
    });
    g.finish();

    let store = PathLossStore::build(spec, sites(12), &model, TiltSettings::default(), 8_000.0);
    c.bench_function("pathloss/tilt_matrix_assembly", |b| {
        let mut tilt = 0u8;
        b.iter(|| {
            // Walk the tilt range so assembly work is always fresh after
            // the cache warms the full set once.
            tilt = (tilt + 1) % 17;
            black_box(store.matrix(0, tilt))
        })
    });
    c.bench_function("pathloss/cached_matrix_lookup", |b| {
        let _ = store.matrix(3, NOMINAL_TILT_INDEX);
        b.iter(|| black_box(store.matrix(3, NOMINAL_TILT_INDEX)))
    });
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
