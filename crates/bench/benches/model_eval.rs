//! Criterion benches of the analysis model — including the ablation
//! DESIGN.md calls out: incremental re-evaluation vs full rebuild. The
//! entire viability of a model-based *proactive* search rests on this
//! gap (paper §5: brute force over the configuration space is hopeless;
//! Magus needs thousands of cheap what-if evaluations).

use criterion::{criterion_group, criterion_main, Criterion};
use magus_geo::Db;
use magus_lte::Bandwidth;
use magus_model::{standard_setup, UtilityKind};
use magus_net::{AreaType, ConfigChange, Market, MarketParams, SectorId};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let market = Market::generate(MarketParams::tiny(AreaType::Suburban, 3));
    let model = standard_setup(&market, Bandwidth::Mhz10);
    let ev = &model.evaluator;
    let neighbor = SectorId(market.network().num_sectors() as u32 / 2);

    let mut g = c.benchmark_group("model");
    g.sample_size(20);
    g.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(ev.initial_state(&model.nominal)))
    });
    g.finish();

    let mut state = ev.initial_state(&model.nominal);
    c.bench_function("model/incremental_power_change", |b| {
        b.iter(|| {
            let undo = ev.apply(&mut state, ConfigChange::PowerDelta(neighbor, Db(1.0)));
            ev.undo(&mut state, undo);
        })
    });
    c.bench_function("model/probe_utility", |b| {
        b.iter(|| {
            black_box(ev.probe_utility(
                &mut state,
                ConfigChange::PowerDelta(neighbor, Db(1.0)),
                UtilityKind::Performance,
            ))
        })
    });
    c.bench_function("model/utility_from_aggregates", |b| {
        b.iter(|| black_box(state.utility(UtilityKind::Performance)))
    });
    c.bench_function("model/hypothetical_rmax", |b| {
        let mut i = 0usize;
        let n = state.num_grids();
        b.iter(|| {
            i = (i + 97) % n;
            black_box(ev.hypothetical_rmax(&state, i, neighbor.0, Db(2.0)))
        })
    });
    // Tilt changes sweep the same window but with a matrix swap.
    c.bench_function("model/incremental_tilt_change", |b| {
        b.iter(|| {
            let cur = state.config().sector(neighbor).tilt;
            let undo = ev.apply(
                &mut state,
                ConfigChange::SetTilt(neighbor, cur.saturating_sub(1)),
            );
            ev.undo(&mut state, undo);
        })
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
