//! Criterion benches of the testbed discrete-event engine and the
//! attenuation optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use magus_testbed::sim::{ChangeOp, Sim, SimConfig};
use magus_testbed::{optimize_attenuations, scenario2, steady_state_utility, SimTime};
use std::hint::black_box;

fn bench_testbed(c: &mut Criterion) {
    let s = scenario2();
    let cfg = SimConfig::default();
    let on = vec![true; s.env.num_enodebs()];
    let (atten, _) = optimize_attenuations(&s.env, &on, &cfg);

    c.bench_function("testbed/steady_state_utility", |b| {
        b.iter(|| black_box(steady_state_utility(&s.env, &atten, &on, &cfg)))
    });

    let mut g = c.benchmark_group("testbed");
    g.sample_size(10);
    g.bench_function("sim_10s_with_outage", |b| {
        b.iter(|| {
            let timeline = vec![(SimTime::from_secs(3), ChangeOp::SetOnAir(s.target, false))];
            black_box(
                Sim::new(s.env.clone(), atten.clone(), cfg, timeline).run(SimTime::from_secs(10)),
            )
        })
    });
    g.bench_function("optimize_attenuations", |b| {
        b.iter(|| black_box(optimize_attenuations(&s.env, &on, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_testbed);
criterion_main!(benches);
