//! Criterion benches of the magus-obs primitives: the per-event cost a
//! counter or histogram adds to an instrumented hot path, at each
//! observability level. The disabled-level numbers are the price every
//! un-instrumented run pays (one relaxed atomic load per macro site).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_obs(c: &mut Criterion) {
    magus_obs::set_level(magus_obs::ObsLevel::Off);
    c.bench_function("obs/counter_inc_off", |b| {
        b.iter(|| magus_obs::counter_inc!("bench.counter.off"))
    });
    c.bench_function("obs/histogram_observe_off", |b| {
        b.iter(|| magus_obs::observe!("bench.histo.off", black_box(1234u64)))
    });

    magus_obs::set_level(magus_obs::ObsLevel::Counters);
    c.bench_function("obs/counter_inc_counters", |b| {
        b.iter(|| magus_obs::counter_inc!("bench.counter.on"))
    });

    magus_obs::set_level(magus_obs::ObsLevel::Full);
    c.bench_function("obs/counter_inc_full", |b| {
        b.iter(|| magus_obs::counter_inc!("bench.counter.full"))
    });
    c.bench_function("obs/histogram_observe_full", |b| {
        b.iter(|| magus_obs::observe!("bench.histo.full", black_box(1234u64)))
    });
    c.bench_function("obs/timed_full", |b| {
        b.iter(|| magus_obs::timed!("bench.timed.full", black_box(2u64) + 2))
    });
    c.bench_function("obs/span_full", |b| {
        b.iter(|| {
            let _g = magus_obs::span_enter("bench_span");
            black_box(1u64)
        })
    });

    magus_obs::set_level(magus_obs::ObsLevel::Off);
    magus_obs::registry().reset();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
