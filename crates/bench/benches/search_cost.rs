//! Criterion benches of the search algorithms — including the pruning
//! ablation DESIGN.md calls out: Algorithm 1's affected-grid candidate
//! set β vs the ungated naive walk.

use criterion::{criterion_group, criterion_main, Criterion};
use magus_core::{
    hill_climb, naive_search, power_search, tilt_search, HillClimbParams, SearchParams,
};
use magus_lte::Bandwidth;
use magus_model::standard_setup;
use magus_net::{AreaType, ConfigChange, Market, MarketParams, UpgradeScenario};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let market = Market::generate(MarketParams::tiny(AreaType::Suburban, 3));
    let model = standard_setup(&market, Bandwidth::Mhz10);
    let ev = &model.evaluator;
    let targets = magus_net::upgrade_targets(&market, UpgradeScenario::SingleCentralSector);
    let radius = 2.2 * market.params().isd_m;
    let neighbors = magus_core::neighbor_set(ev, &targets, radius);
    let params = SearchParams::default();

    let reference = ev.initial_state(&model.nominal);
    let upgraded = || {
        let mut st = ev.initial_state(&model.nominal);
        for &t in &targets {
            ev.apply(&mut st, ConfigChange::SetOnAir(t, false));
        }
        st
    };

    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("algorithm1_power", |b| {
        b.iter(|| {
            let mut st = upgraded();
            black_box(power_search(ev, &mut st, &reference, &neighbors, &params))
        })
    });
    g.bench_function("naive_greedy", |b| {
        b.iter(|| {
            let mut st = upgraded();
            black_box(naive_search(ev, &mut st, &targets, &neighbors, &params))
        })
    });
    g.bench_function("tilt_greedy", |b| {
        b.iter(|| {
            let mut st = upgraded();
            black_box(tilt_search(ev, &mut st, &targets, &neighbors, &params))
        })
    });
    g.bench_function("planning_hill_climb", |b| {
        let mut region = targets.clone();
        region.extend(neighbors.iter().copied());
        let hc = HillClimbParams {
            max_moves: 32,
            ..HillClimbParams::default()
        };
        b.iter(|| {
            let mut st = ev.initial_state(&model.nominal);
            black_box(hill_climb(ev, &mut st, &region, &hc))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
