//! The macro layer: what instrumented crates actually call.
//!
//! Every macro checks the runtime [`crate::ObsLevel`] (one relaxed atomic
//! load) before doing anything, and caches its metric handle in a
//! per-call-site `OnceLock<Arc<_>>` so the registry lock is only taken
//! once per call site per process. Building `magus-obs` with the
//! `disabled` cargo feature swaps in the no-op definitions at the bottom
//! of this file: bodies still run, metric arguments are not evaluated.

/// Adds 1 to the named counter (at `ObsLevel::Counters` and above).
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! counter_inc {
    ($name:literal) => {
        $crate::counter_add!($name, 1u64)
    };
}

/// Adds `n` to the named counter (at `ObsLevel::Counters` and above).
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {
        if $crate::counters_enabled() {
            static __OBS_HANDLE: $crate::__private::OnceLock<
                $crate::__private::Arc<$crate::Counter>,
            > = $crate::__private::OnceLock::new();
            __OBS_HANDLE
                .get_or_init(|| $crate::registry().counter($name))
                .add($n);
        }
    };
}

/// Sets the named gauge (at `ObsLevel::Counters` and above).
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __OBS_HANDLE: $crate::__private::OnceLock<
                $crate::__private::Arc<$crate::Gauge>,
            > = $crate::__private::OnceLock::new();
            __OBS_HANDLE
                .get_or_init(|| $crate::registry().gauge($name))
                .set($v);
        }
    };
}

/// Raises the named gauge to `v` if larger — a high-watermark
/// (at `ObsLevel::Counters` and above).
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __OBS_HANDLE: $crate::__private::OnceLock<
                $crate::__private::Arc<$crate::Gauge>,
            > = $crate::__private::OnceLock::new();
            __OBS_HANDLE
                .get_or_init(|| $crate::registry().gauge($name))
                .set_max($v);
        }
    };
}

/// Records a `u64` sample into the named histogram (at
/// `ObsLevel::Counters` and above).
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! observe {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __OBS_HANDLE: $crate::__private::OnceLock<
                $crate::__private::Arc<$crate::Histogram>,
            > = $crate::__private::OnceLock::new();
            __OBS_HANDLE
                .get_or_init(|| $crate::registry().histogram($name))
                .observe($v);
        }
    };
}

/// Times the block and returns its value. At `ObsLevel::Full` the
/// elapsed nanoseconds are recorded into the named histogram; below that
/// the block runs untimed.
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! timed {
    ($name:literal, $body:expr) => {
        if $crate::full_enabled() {
            let __obs_start = ::std::time::Instant::now();
            let __obs_result = $body;
            let __obs_ns = u64::try_from(__obs_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            {
                static __OBS_HANDLE: $crate::__private::OnceLock<
                    $crate::__private::Arc<$crate::Histogram>,
                > = $crate::__private::OnceLock::new();
                __OBS_HANDLE
                    .get_or_init(|| $crate::registry().histogram($name))
                    .observe(__obs_ns);
            }
            __obs_result
        } else {
            $body
        }
    };
}

/// Runs the block inside a named span (see [`crate::span_enter`]) and
/// returns its value. At `ObsLevel::Full`, elapsed time is recorded under
/// the hierarchical phase path; below that the block just runs.
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! span {
    ($name:literal, $body:expr) => {{
        let __obs_guard = $crate::span_enter($name);
        let __obs_result = $body;
        ::std::mem::drop(__obs_guard);
        __obs_result
    }};
}

/// Measures the block unconditionally, evaluating to
/// `(std::time::Duration, value)`. Not level-gated: use it where the
/// caller consumes the duration itself (progress logs, benches).
#[macro_export]
macro_rules! elapsed {
    ($body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_result = $body;
        (__obs_start.elapsed(), __obs_result)
    }};
}

/// Emits a structured JSONL trace record if a trace sink is installed
/// and the level is [`ObsLevel::Full`](crate::ObsLevel) — an explicit
/// `--obs off|counters` wins over an installed sink. Field values are
/// only evaluated when tracing is on.
///
/// ```ignore
/// magus_obs::trace_event!("hillclimb.iter",
///     "iter" => i, "delta" => d, "accepted" => true);
/// ```
#[cfg(not(feature = "disabled"))]
#[macro_export]
macro_rules! trace_event {
    ($kind:literal $(, $key:literal => $value:expr)* $(,)?) => {
        if $crate::full_enabled() && $crate::trace_enabled() {
            $crate::emit($crate::Event::new($kind)$(.with($key, $value))*);
        }
    };
}

// ---------------------------------------------------------------------
// `disabled` feature: compile the layer away. Blocks still run so code
// keeps its semantics; metric names and values are never evaluated.
// ---------------------------------------------------------------------

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! counter_inc {
    ($name:literal) => {};
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {};
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {};
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {};
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! observe {
    ($name:literal, $v:expr) => {};
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! timed {
    ($name:literal, $body:expr) => {
        $body
    };
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! span {
    ($name:literal, $body:expr) => {
        $body
    };
}

#[cfg(feature = "disabled")]
#[macro_export]
macro_rules! trace_event {
    ($kind:literal $(, $key:literal => $value:expr)* $(,)?) => {};
}

#[cfg(all(test, not(feature = "disabled")))]
mod tests {
    use crate::{set_level, ObsLevel};

    #[test]
    fn macros_record_only_when_enabled() {
        let _g = crate::testutil::global_guard();
        set_level(ObsLevel::Off);
        counter_inc!("macrotest.off");
        observe!("macrotest.off_hist", 5u64);
        set_level(ObsLevel::Counters);
        counter_inc!("macrotest.on");
        counter_add!("macrotest.on", 2u64);
        gauge_set!("macrotest.gauge", 4i64);
        gauge_max!("macrotest.gauge", 9i64);
        observe!("macrotest.hist", 1000u64);
        set_level(ObsLevel::Off);

        let r = crate::registry();
        assert_eq!(r.counter("macrotest.off").get(), 0);
        assert_eq!(r.histogram("macrotest.off_hist").count(), 0);
        assert_eq!(r.counter("macrotest.on").get(), 3);
        assert_eq!(r.gauge("macrotest.gauge").get(), 9);
        assert_eq!(r.histogram("macrotest.hist").count(), 1);
    }

    #[test]
    fn timed_and_span_return_block_value() {
        let _g = crate::testutil::global_guard();
        set_level(ObsLevel::Full);
        let a = timed!("macrotest.timed_ns", 2 + 2);
        let b = span!("macrotest_span", "ok");
        let (dt, c) = elapsed!(1 + 1);
        set_level(ObsLevel::Off);
        assert_eq!((a, b, c), (4, "ok", 2));
        assert!(dt.as_nanos() < u128::from(u64::MAX));
        assert_eq!(crate::registry().histogram("macrotest.timed_ns").count(), 1);
        assert_eq!(
            crate::registry()
                .histogram("span.macrotest_span_ns")
                .count(),
            1
        );
    }

    #[test]
    fn timed_still_runs_body_when_off() {
        let _g = crate::testutil::global_guard();
        set_level(ObsLevel::Off);
        let ran = timed!("macrotest.never", true);
        assert!(ran);
        assert_eq!(crate::registry().histogram("macrotest.never").count(), 0);
    }

    #[test]
    fn trace_event_requires_full_level() {
        use std::io::Write;
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Capture(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for Capture {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let _g = crate::testutil::global_guard();
        let cap = Capture::default();
        crate::set_trace_writer(Box::new(cap.clone()));
        for level in [ObsLevel::Off, ObsLevel::Counters] {
            set_level(level);
            trace_event!("macrotest.leak", "level" => 0u64);
        }
        set_level(ObsLevel::Full);
        trace_event!("macrotest.kept", "level" => 2u64);
        set_level(ObsLevel::Off);
        crate::clear_trace();

        let text = String::from_utf8_lossy(&cap.0.lock()).into_owned();
        assert!(
            !text.contains("macrotest.leak"),
            "trace emitted below Full: {text}"
        );
        assert!(text.contains("macrotest.kept"), "no trace at Full: {text}");
    }

    #[test]
    fn trace_event_skips_field_eval_when_disabled() {
        let _g = crate::testutil::global_guard();
        crate::clear_trace();
        let mut evaluated = false;
        trace_event!("macrotest.kind", "x" => {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "field evaluated with no sink installed");
    }
}
