//! Structured JSONL event sink.
//!
//! One [`Event`] is one line of JSON: `{"seq":N,"kind":"...",...fields}`.
//! The sink is a process-global buffered writer installed from the CLI's
//! `--trace-out` flag (or any `Write + Send` in tests). Emission is
//! gated on a single `AtomicBool`, so an uninstalled sink costs one
//! relaxed load per `trace_event!` call site. Records carry a global
//! sequence number instead of a wall-clock timestamp: traces stay
//! byte-for-byte deterministic for a given seed, which is what the
//! repo's reproducibility story needs.
//!
//! Every stream starts with a `trace.meta` header record carrying
//! [`TRACE_SCHEMA_VERSION`]; sequence numbers restart at 0 per stream
//! and are assigned under the sink lock, so a well-formed file is
//! always densely numbered `0, 1, 2, …` — the contract the reader in
//! [`read`] validates and the `magus trace` subcommands build on.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::metrics::json_escape;

pub mod read;

/// Version of the on-disk trace schema; bumped when a record's meaning
/// changes incompatibly (see DESIGN.md "Trace schema"). Written into
/// the `trace.meta` header of every stream.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

type Sink = Mutex<Option<Box<dyn Write + Send>>>;

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// True when a trace sink is installed; check before building an
/// [`Event`] (the [`crate::trace_event!`] macro does this for you).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Routes trace events to `path` (truncating), buffered.
pub fn set_trace_path(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    set_trace_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Routes trace events to an arbitrary writer (tests, in-memory capture).
///
/// Starts a fresh stream: the sequence counter restarts at 0 and a
/// `trace.meta` header record with the current [`TRACE_SCHEMA_VERSION`]
/// is written first, so every stream is self-describing and densely
/// seq-numbered from 0.
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    let mut guard = sink().lock();
    let mut w = w;
    let header = Event::new("trace.meta").with("schema", TRACE_SCHEMA_VERSION);
    let _ = w.write_all(header.to_jsonl(0).as_bytes());
    SEQ.store(1, Ordering::Relaxed);
    *guard = Some(w);
    TRACE_ON.store(true, Ordering::Relaxed);
}

/// Flushes the sink, propagating any I/O error.
pub fn flush_trace() -> io::Result<()> {
    if let Some(w) = sink().lock().as_mut() {
        w.flush()?;
    }
    Ok(())
}

/// Flushes and removes the sink; subsequent events are dropped cheaply.
pub fn clear_trace() {
    TRACE_ON.store(false, Ordering::Relaxed);
    let mut guard = sink().lock();
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
}

/// A single typed field value in a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Inf literal; stringify so the record stays
            // parseable instead of corrupting the whole line.
            FieldValue::F64(v) => {
                let _ = write!(out, "\"{v}\"");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(s) => out.push_str(&json_escape(s)),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v.into())
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A structured trace record under construction. Build with
/// [`Event::new`] + [`Event::with`], emit via [`emit`] (or the
/// [`crate::trace_event!`] macro, which also handles the enabled check).
#[derive(Debug, Clone)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Starts a record of the given kind (`"hillclimb.iter"`,
    /// `"sim.window"`, ...).
    pub fn new(kind: &'static str) -> Event {
        Event {
            kind,
            fields: Vec::with_capacity(8),
        }
    }

    /// Appends a field. Later duplicates of a key win in most JSON
    /// parsers, but don't rely on that — use distinct keys.
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    fn to_jsonl(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\": {seq}, \"kind\": {}",
            json_escape(self.kind)
        );
        for (k, v) in &self.fields {
            let _ = write!(out, ", {}: ", json_escape(k));
            v.write_json(&mut out);
        }
        out.push_str("}\n");
        out
    }
}

/// Writes the event to the sink as one JSONL line. No-op (after one
/// atomic load) when no sink is installed.
///
/// The sequence number is assigned *under the sink lock*: concurrent
/// emitters can't interleave seq assignment and the write, so the
/// on-disk stream is always densely numbered in file order (the
/// reader's seq-gap check depends on this).
pub fn emit(event: Event) {
    if !trace_enabled() {
        return;
    }
    let mut guard = sink().lock();
    if let Some(w) = guard.as_mut() {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let line = event.to_jsonl(seq);
        let _ = w.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// In-memory sink for asserting on emitted lines.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_serialize_as_parseable_jsonl() {
        let _g = crate::testutil::global_guard();
        let cap = Capture::default();
        set_trace_writer(Box::new(cap.clone()));
        emit(
            Event::new("test.kind")
                .with("iter", 3u64)
                .with("delta", -0.25)
                .with("accepted", true)
                .with("label", "tilt \"A\"")
                .with("nan", f64::NAN),
        );
        clear_trace();
        let bytes = cap.0.lock().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| l.contains("test.kind")).collect();
        assert_eq!(lines.len(), 1, "{text}");
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v["kind"].as_str(), Some("test.kind"));
        assert_eq!(v["iter"].as_number().and_then(|n| n.as_u64()), Some(3));
        assert!(matches!(v["accepted"], serde_json::Value::Bool(true)));
        assert_eq!(v["label"].as_str(), Some("tilt \"A\""));
        assert_eq!(v["nan"].as_str(), Some("NaN"));
        let delta = v["delta"].as_number().map(|n| n.as_f64()).unwrap();
        assert!((delta + 0.25).abs() < 1e-12);
    }

    #[test]
    fn emit_without_sink_is_noop() {
        let _g = crate::testutil::global_guard();
        clear_trace();
        assert!(!trace_enabled());
        emit(Event::new("dropped"));
    }

    #[test]
    fn stream_starts_with_meta_header_and_dense_seq() {
        let _g = crate::testutil::global_guard();
        let cap = Capture::default();
        set_trace_writer(Box::new(cap.clone()));
        emit(Event::new("a.one").with("x", 1u64));
        emit(Event::new("a.two").with("x", 2u64));
        clear_trace();
        let text = String::from_utf8(cap.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        let head: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(head["kind"].as_str(), Some("trace.meta"));
        assert_eq!(
            head["schema"].as_number().and_then(|n| n.as_u64()),
            Some(u64::from(TRACE_SCHEMA_VERSION))
        );
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(
                v["seq"].as_number().and_then(|n| n.as_u64()),
                Some(i as u64),
                "{line}"
            );
        }
    }

    #[test]
    fn reinstalling_the_writer_restarts_the_sequence() {
        let _g = crate::testutil::global_guard();
        let first = Capture::default();
        set_trace_writer(Box::new(first.clone()));
        emit(Event::new("a.one"));
        clear_trace();
        let second = Capture::default();
        set_trace_writer(Box::new(second.clone()));
        emit(Event::new("b.one"));
        clear_trace();
        let text = String::from_utf8(second.0.lock().clone()).unwrap();
        let last = text.lines().last().unwrap();
        let v: serde_json::Value = serde_json::from_str(last).unwrap();
        assert_eq!(v["seq"].as_number().and_then(|n| n.as_u64()), Some(1));
        assert_eq!(v["kind"].as_str(), Some("b.one"));
    }
}
