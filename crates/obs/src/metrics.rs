//! Named metrics on plain atomics, collected in a global registry.
//!
//! Metric handles are `Arc`s handed out by the registry; hot paths cache
//! them in per-call-site `OnceLock`s (see the macro layer) so recording
//! is lock-free. The registry itself is only locked on first registration
//! and on snapshot/dump.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

const RELAXED: Ordering = Ordering::Relaxed;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; a counter that hit `u64::MAX` stays there).
    #[inline]
    pub fn add(&self, n: u64) {
        let prev = self.0.fetch_add(n, RELAXED);
        if prev.checked_add(n).is_none() {
            self.0.store(u64::MAX, RELAXED);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(RELAXED)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, RELAXED);
    }
}

/// Last-write-wins signed value, with a `set_max` helper for watermarks.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, RELAXED);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, RELAXED);
    }

    /// Raises the gauge to `v` if `v` is larger (high-watermark use).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, RELAXED);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(RELAXED)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.0.store(0, RELAXED);
    }
}

/// Number of power-of-two buckets: bucket `i` (for `i > 0`) counts values
/// `v` with `2^(i-1) <= v < 2^i`; bucket 0 counts zeros. 65 buckets cover
/// the full `u64` range, so nanosecond latencies and probe counts share
/// one shape.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log2-bucketed histogram of `u64` samples (latencies in ns, sizes,
/// counts). Fixed buckets mean recording is two atomic adds and two
/// atomic min/max — no allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        HISTOGRAM_BUCKETS - 1 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, RELAXED);
        self.sum.fetch_add(v, RELAXED);
        self.min.fetch_min(v, RELAXED);
        self.max.fetch_max(v, RELAXED);
        self.buckets[bucket_index(v)].fetch_add(1, RELAXED);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(RELAXED)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(RELAXED);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(RELAXED),
            min: if count == 0 {
                0
            } else {
                self.min.load(RELAXED)
            },
            max: self.max.load(RELAXED),
            buckets: self.buckets.iter().map(|b| b.load(RELAXED)).collect(),
        }
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        self.count.store(0, RELAXED);
        self.sum.store(0, RELAXED);
        self.min.store(u64::MAX, RELAXED);
        self.max.store(0, RELAXED);
        for b in &self.buckets {
            b.store(0, RELAXED);
        }
    }
}

/// Copy of a counter for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Copy of a gauge for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: i64,
}

/// Copy of a histogram for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// One entry per power-of-two bucket; `buckets[i]` counts samples in
    /// `[2^(i-1), 2^i)` (bucket 0 counts zeros).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket boundaries:
    /// returns the inclusive upper bound of the bucket holding the q-th
    /// sample, clamped to the observed max. Bucket resolution means the
    /// answer is within 2x of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

/// Thread-safe directory of named metrics. Names are free-form but the
/// workspace convention is dotted lowercase paths
/// (`pathloss.cache.hit`, `evaluator.probe_ns`).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry (tests; production code uses
    /// [`crate::registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Copies every metric out for reporting. Metrics keep updating while
    /// the snapshot is taken; each value is individually consistent.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| CounterSnapshot {
                    name: n.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| GaugeSnapshot {
                    name: n.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }

    /// Zeroes every registered metric without forgetting registrations
    /// (cached `Arc` handles in call sites stay valid).
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }

    /// Serializes the registry as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,
    /// max,mean,p50,p95,p99,buckets:[[bucket_upper,count],..]}}}`. Bucket
    /// entries with zero count are omitted; the full histogram shape is
    /// still recoverable (see `trace::read::parse_metrics_snapshot`),
    /// and the quantiles are [`HistogramSnapshot::quantile`] at dump
    /// time, so reader-side recomputation agrees exactly.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, c) in snap.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_escape(&c.name), c.value);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in snap.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_escape(&g.name), g.value);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in snap.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                let _ = write!(out, "[{upper}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a fixed-width human summary table (the `--metrics` view).
    pub fn render_table(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = snap
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(snap.gauges.iter().map(|g| g.name.len()))
            .chain(snap.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max(6);
        if !snap.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for c in &snap.counters {
                let _ = writeln!(out, "  {:<width$}  {:>12}", c.name, c.value);
            }
        }
        if !snap.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for g in &snap.gauges {
                let _ = writeln!(out, "  {:<width$}  {:>12}", g.name, g.value);
            }
        }
        if !snap.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<w$}  {:>10} {:>12} {:>12} {:>12}",
                "",
                "count",
                "mean",
                "p95",
                "max",
                w = width.saturating_sub(10)
            );
            for h in &snap.histograms {
                let _ = writeln!(
                    out,
                    "  {:<width$}  {:>10} {:>12.1} {:>12} {:>12}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.quantile(0.95),
                    h.max
                );
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

pub(crate) fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x.count");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x.count").get(), 5);
        let g = r.gauge("x.depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.add(-1);
        assert_eq!(r.gauge("x.depth").get(), 10);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 900, 1000] {
            h.observe(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1906);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 2); // 512..1023
        assert!((s.mean() - 1906.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(10); // bucket [8,16)
        }
        h.observe(100_000);
        let s = h.snapshot("t");
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(s.quantile(0.0), 15); // rank clamps to the 1st sample
    }

    /// Pins p50/p95/p99 on a known distribution, both from
    /// [`HistogramSnapshot::quantile`] and as exported in the JSON
    /// snapshot: 89 samples at 10 (bucket upper 15), 9 at 1000 (bucket
    /// upper 1023), 2 at 100000 — so p50 (rank 50) lands in the first
    /// bucket, p95 (rank 95) in the second, and p99 (rank 99) in the
    /// last, clamped to the observed max.
    #[test]
    fn json_snapshot_pins_p50_p95_p99() {
        let r = Registry::new();
        let h = r.histogram("q.pinned_ns");
        for _ in 0..89 {
            h.observe(10);
        }
        for _ in 0..9 {
            h.observe(1000);
        }
        h.observe(100_000);
        h.observe(100_000);
        let s = h.snapshot("q.pinned_ns");
        assert_eq!(
            (s.quantile(0.50), s.quantile(0.95), s.quantile(0.99)),
            (15, 1023, 100_000)
        );
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let hv = &v["histograms"]["q.pinned_ns"];
        let q = |key: &str| hv[key].as_number().and_then(|n| n.as_u64());
        assert_eq!(q("p50"), Some(15), "{json}");
        assert_eq!(q("p95"), Some(1023), "{json}");
        assert_eq!(q("p99"), Some(100_000), "{json}");
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let s = Histogram::default().snapshot("t");
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn json_dump_parses_and_contains_metrics() {
        let r = Registry::new();
        r.counter("a.hit").add(3);
        r.gauge("a.depth").set(-2);
        r.histogram("a.lat_ns").observe(1500);
        let json = r.to_json();
        let v: serde_json::Value = match serde_json::from_str(&json) {
            Ok(v) => v,
            Err(e) => panic!("registry dump is not valid JSON: {e}\n{json}"),
        };
        let txt = v.to_string();
        assert!(txt.contains("a.hit"), "{txt}");
        assert!(txt.contains("a.depth"), "{txt}");
        assert!(txt.contains("a.lat_ns"), "{txt}");
    }

    #[test]
    fn reset_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("z");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("z").get(), 1);
    }

    #[test]
    fn render_table_lists_each_kind() {
        let r = Registry::new();
        r.counter("c.one").inc();
        r.gauge("g.two").set(2);
        r.histogram("h.three").observe(3);
        let t = r.render_table();
        assert!(t.contains("c.one"), "{t}");
        assert!(t.contains("g.two"), "{t}");
        assert!(t.contains("h.three"), "{t}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
