//! Runtime observability level: a single global `AtomicU8` consulted by
//! every macro before doing any work.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// How much the process records. Ordered: each level includes the ones
/// below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Record nothing. Macro cost: one relaxed atomic load.
    Off = 0,
    /// Counters, gauges, and value histograms.
    Counters = 1,
    /// Everything: counters plus span/latency timing (`Instant` reads).
    Full = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Off as u8);

/// Sets the process-wide observability level.
pub fn set_level(level: ObsLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Returns the current observability level.
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        _ => ObsLevel::Full,
    }
}

/// True when counters/gauges/histograms should record.
#[inline]
pub fn counters_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Counters as u8
}

/// True when span timing should record.
#[inline]
pub fn full_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Full as u8
}

/// Error from parsing an [`ObsLevel`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl std::fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown obs level {:?} (off|counters|full)", self.0)
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for ObsLevel {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(ObsLevel::Off),
            "counters" | "1" => Ok(ObsLevel::Counters),
            "full" | "all" | "2" => Ok(ObsLevel::Full),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        })
    }
}
