//! The read side of the flight recorder: parse, validate, diff, and
//! aggregate JSONL trace streams (and `--metrics-out` snapshots).
//!
//! The writer half of this module's contract lives in
//! [`super`](crate::trace): records are one JSON object per line,
//! densely seq-numbered from 0, headed by a `trace.meta` record with
//! [`TRACE_SCHEMA_VERSION`](super::TRACE_SCHEMA_VERSION). The reader
//! enforces exactly that — a malformed line or a seq gap is an error —
//! while staying forward-compatible by design: unknown record kinds and
//! unknown fields pass through untouched, so adding instrumentation
//! never breaks old tooling.
//!
//! Three consumers, all behind `magus trace`:
//!
//! * **`check`** ([`check_trace`]): schema validation for CI artifacts —
//!   header present, every known-kind record carries its required
//!   fields.
//! * **`diff`** ([`diff_traces`]): first-divergence finder. When a
//!   byte-identity gate fails, "bytes differ" becomes "seq 412,
//!   `hillclimb.iter` field `objective`: 1.31 vs 1.29".
//! * **`stats`** ([`Trace::kind_counts`], [`parse_metrics_snapshot`],
//!   [`folded_spans`]): per-kind record counts from the trace plus
//!   phase-time attribution and quantiles from the span histograms of a
//!   metrics snapshot. Quantiles are recomputed through the *same*
//!   [`HistogramSnapshot::quantile`] the registry dump uses, so the
//!   numbers match by construction.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use serde_json::Value;

use super::TRACE_SCHEMA_VERSION;
use crate::metrics::{HistogramSnapshot, HISTOGRAM_BUCKETS};

/// A problem found while reading a trace or metrics file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line the problem was found on; 0 when it concerns the
    /// file as a whole.
    pub line: usize,
    pub msg: String,
}

impl TraceError {
    fn at(line: usize, msg: impl Into<String>) -> TraceError {
        TraceError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

/// One parsed trace record (any kind, known or not).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub seq: u64,
    pub kind: String,
    /// Every field except `seq`/`kind`, in file order.
    pub fields: Vec<(String, Value)>,
    /// The raw line (no trailing newline), for diagnostics.
    pub raw: String,
}

impl TraceRecord {
    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// A fully parsed trace stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Schema version from the `trace.meta` header; `None` when the
    /// stream has no header (pre-v1 or truncated at the front —
    /// [`check_trace`] flags it).
    pub schema: Option<u32>,
    /// Data records in file order, the header excluded.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Record count per kind, sorted by kind name.
    pub fn kind_counts(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for rec in &self.records {
            *counts.entry(rec.kind.clone()).or_insert(0u64) += 1;
        }
        counts
    }
}

/// Reads and validates a JSONL trace file. See [`parse_trace`].
pub fn read_trace(path: &Path) -> Result<Trace, TraceError> {
    let text = fs::read_to_string(path)
        .map_err(|e| TraceError::at(0, format!("cannot read `{}`: {e}", path.display())))?;
    parse_trace(&text)
}

/// Parses a JSONL trace stream, enforcing the writer contract: every
/// non-empty line is a JSON object with integer `seq` and string
/// `kind`, and seq numbers are dense from 0 (a gap or duplicate means
/// the stream lost records — hard error, the trace can't be trusted).
/// A leading `trace.meta` record is consumed into [`Trace::schema`];
/// schema versions newer than this reader understands are rejected.
/// Unknown kinds and fields are preserved as-is.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut trace = Trace::default();
    let mut expected_seq = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| TraceError::at(lineno, format!("invalid JSON: {e}")))?;
        let Some(obj) = value.as_object() else {
            return Err(TraceError::at(lineno, "record is not a JSON object"));
        };
        let Some(seq) = obj
            .get("seq")
            .and_then(|v| v.as_number())
            .and_then(|n| n.as_u64())
        else {
            return Err(TraceError::at(lineno, "missing or non-integer `seq`"));
        };
        let Some(kind) = obj.get("kind").and_then(|v| v.as_str()) else {
            return Err(TraceError::at(lineno, "missing or non-string `kind`"));
        };
        if seq != expected_seq {
            return Err(TraceError::at(
                lineno,
                format!("seq gap: expected {expected_seq}, got {seq} (kind `{kind}`)"),
            ));
        }
        expected_seq += 1;
        if seq == 0 && kind == "trace.meta" {
            let Some(schema) = obj
                .get("schema")
                .and_then(|v| v.as_number())
                .and_then(|n| n.as_u64())
            else {
                return Err(TraceError::at(lineno, "trace.meta has no integer `schema`"));
            };
            if schema > u64::from(TRACE_SCHEMA_VERSION) {
                return Err(TraceError::at(
                    lineno,
                    format!(
                        "trace schema {schema} is newer than this reader \
                         (supports up to {TRACE_SCHEMA_VERSION})"
                    ),
                ));
            }
            trace.schema = u32::try_from(schema).ok();
            continue;
        }
        let fields = obj
            .iter()
            .filter(|(k, _)| k.as_str() != "seq" && k.as_str() != "kind")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        trace.records.push(TraceRecord {
            seq,
            kind: kind.to_string(),
            fields,
            raw: line.to_string(),
        });
    }
    Ok(trace)
}

/// Required fields per known record kind (schema v1). The list is a
/// *floor*, not a ceiling: extra fields and unknown kinds are always
/// fine (that's the compatibility rule — additions don't break
/// readers); a known kind missing one of its required fields is a
/// schema violation [`check_trace`] reports.
pub const KNOWN_KINDS: &[(&str, &[&str])] = &[
    (
        "hillclimb.iter",
        &[
            "iter",
            "candidate",
            "probes",
            "objective",
            "delta",
            "accepted",
        ],
    ),
    ("search.step", &["algo", "step", "change", "utility"]),
    (
        "search.iter",
        &["strategy", "iter", "probes", "objective", "accepted"],
    ),
    ("search.accept", &["strategy", "iter", "change", "utility"]),
    (
        "gradual.step",
        &[
            "step",
            "changes",
            "compensations",
            "utility",
            "handovers",
            "seamless",
            "final",
        ],
    ),
    (
        "migrate.step",
        &[
            "step",
            "attempts",
            "retries",
            "stragglers",
            "deferred",
            "rolled_back",
            "utility",
            "degraded",
            "sim_time_ms",
        ],
    ),
    ("migrate.rollback", &["step", "change"]),
    ("evaluator.build", &["sectors", "grids", "degraded"]),
    (
        "sim.window",
        &[
            "t_secs",
            "utility",
            "events",
            "mme_queue",
            "seamless",
            "hard",
        ],
    ),
    ("sim.fault.job_abandoned", &["job_seq", "attempt"]),
    ("fault.store_degraded", &["sector", "tilt"]),
    (
        "paper.expectation",
        &["experiment", "metric", "expected", "actual", "abs_delta"],
    ),
];

/// Validates a parsed trace against the v1 schema: header present,
/// every known-kind record carries its required fields. Returns the
/// problems found (empty = clean). Seq density was already enforced by
/// [`parse_trace`].
pub fn check_trace(trace: &Trace) -> Vec<String> {
    let mut problems = Vec::new();
    if trace.schema.is_none() {
        problems.push(
            "no trace.meta header (stream predates schema v1 or lost its first line)".to_string(),
        );
    }
    for rec in &trace.records {
        if let Some((_, required)) = KNOWN_KINDS.iter().find(|(k, _)| *k == rec.kind) {
            for field in *required {
                if rec.field(field).is_none() {
                    problems.push(format!(
                        "seq {}: `{}` record missing required field `{field}`",
                        rec.seq, rec.kind
                    ));
                }
            }
        }
    }
    problems
}

/// The first place two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Sequence number of the first divergent record.
    pub seq: u64,
    /// Field the records first disagree on; `None` when the records
    /// differ structurally (kind mismatch, one trace ended).
    pub field: Option<String>,
    /// Rendered value (or whole record) on each side.
    pub left: String,
    pub right: String,
    /// One-line description of what diverged.
    pub what: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at seq {}: {}", self.seq, self.what)?;
        writeln!(f, "  left:  {}", self.left)?;
        write!(f, "  right: {}", self.right)
    }
}

/// Finds the first record where two traces disagree: first by schema
/// version, then record-by-record (kind, then field-by-field in the
/// left record's order, then fields only the right record has), then by
/// length when one trace is a strict prefix of the other. `None` means
/// the traces are semantically identical.
pub fn diff_traces(a: &Trace, b: &Trace) -> Option<Divergence> {
    if a.schema != b.schema {
        return Some(Divergence {
            seq: 0,
            field: Some("schema".to_string()),
            left: render_schema(a.schema),
            right: render_schema(b.schema),
            what: "trace.meta schema versions differ".to_string(),
        });
    }
    for (ra, rb) in a.records.iter().zip(&b.records) {
        if ra.kind != rb.kind {
            return Some(Divergence {
                seq: ra.seq,
                field: None,
                left: ra.raw.clone(),
                right: rb.raw.clone(),
                what: format!("record kind differs: `{}` vs `{}`", ra.kind, rb.kind),
            });
        }
        for (k, va) in &ra.fields {
            match rb.field(k) {
                None => {
                    return Some(Divergence {
                        seq: ra.seq,
                        field: Some(k.clone()),
                        left: va.to_string(),
                        right: "(absent)".to_string(),
                        what: format!("`{}` record field `{k}` only in left trace", ra.kind),
                    });
                }
                Some(vb) if vb != va => {
                    return Some(Divergence {
                        seq: ra.seq,
                        field: Some(k.clone()),
                        left: va.to_string(),
                        right: vb.to_string(),
                        what: format!("`{}` record field `{k}` differs", ra.kind),
                    });
                }
                Some(_) => {}
            }
        }
        for (k, vb) in &rb.fields {
            if ra.field(k).is_none() {
                return Some(Divergence {
                    seq: ra.seq,
                    field: Some(k.clone()),
                    left: "(absent)".to_string(),
                    right: vb.to_string(),
                    what: format!("`{}` record field `{k}` only in right trace", ra.kind),
                });
            }
        }
    }
    let (na, nb) = (a.records.len(), b.records.len());
    if na < nb {
        let r = &b.records[na];
        return Some(Divergence {
            seq: r.seq,
            field: None,
            left: "(end of trace)".to_string(),
            right: r.raw.clone(),
            what: format!(
                "left trace ends after {na} records; right continues with `{}`",
                r.kind
            ),
        });
    }
    if na > nb {
        let r = &a.records[nb];
        return Some(Divergence {
            seq: r.seq,
            field: None,
            left: r.raw.clone(),
            right: "(end of trace)".to_string(),
            what: format!(
                "right trace ends after {nb} records; left continues with `{}`",
                r.kind
            ),
        });
    }
    None
}

fn render_schema(v: Option<u32>) -> String {
    match v {
        Some(v) => format!("schema {v}"),
        None => "(no trace.meta header)".to_string(),
    }
}

/// Counters and histograms parsed back out of a `--metrics-out` JSON
/// snapshot (the format [`crate::Registry::to_json`] writes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Parses a `--metrics-out` snapshot, rebuilding each histogram's full
/// bucket array from its sparse `[[bucket_upper, count], …]` pairs so
/// [`HistogramSnapshot::quantile`] — the same code the registry dump
/// ran — can be re-asked for any quantile.
pub fn parse_metrics_snapshot(text: &str) -> Result<MetricsSnapshot, TraceError> {
    let value: Value = serde_json::from_str(text)
        .map_err(|e| TraceError::at(0, format!("invalid metrics JSON: {e}")))?;
    let Some(obj) = value.as_object() else {
        return Err(TraceError::at(0, "metrics snapshot is not a JSON object"));
    };
    let mut snap = MetricsSnapshot::default();
    if let Some(counters) = obj.get("counters").and_then(|v| v.as_object()) {
        for (name, v) in counters.iter() {
            let Some(n) = v.as_number().and_then(|n| n.as_u64()) else {
                return Err(TraceError::at(0, format!("counter `{name}` is not a u64")));
            };
            snap.counters.push((name.clone(), n));
        }
    }
    if let Some(hists) = obj.get("histograms").and_then(|v| v.as_object()) {
        for (name, v) in hists.iter() {
            snap.histograms.push(parse_histogram(name, v)?);
        }
    }
    Ok(snap)
}

fn parse_histogram(name: &str, v: &Value) -> Result<HistogramSnapshot, TraceError> {
    let Some(obj) = v.as_object() else {
        return Err(TraceError::at(
            0,
            format!("histogram `{name}` is not an object"),
        ));
    };
    let field = |key: &str| {
        obj.get(key)
            .and_then(|v| v.as_number())
            .and_then(|n| n.as_u64())
            .ok_or_else(|| TraceError::at(0, format!("histogram `{name}`: missing u64 `{key}`")))
    };
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    if let Some(pairs) = obj.get("buckets").and_then(|v| v.as_array()) {
        for pair in pairs {
            let parsed = pair.as_array().filter(|p| p.len() == 2).and_then(|p| {
                let upper = p[0].as_number().and_then(|n| n.as_u64())?;
                let count = p[1].as_number().and_then(|n| n.as_u64())?;
                Some((upper, count))
            });
            let Some((upper, count)) = parsed else {
                return Err(TraceError::at(
                    0,
                    format!("histogram `{name}`: malformed bucket entry {pair}"),
                ));
            };
            let idx = bucket_index_of_upper(upper);
            buckets[idx] = buckets[idx].saturating_add(count);
        }
    }
    Ok(HistogramSnapshot {
        name: name.to_string(),
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets,
    })
}

/// Inverse of the dump's bucket-upper encoding: `0 → bucket 0`,
/// `u64::MAX → bucket 64`, `2^i - 1 → bucket i`.
fn bucket_index_of_upper(upper: u64) -> usize {
    if upper == 0 {
        0
    } else if upper == u64::MAX {
        HISTOGRAM_BUCKETS - 1
    } else {
        HISTOGRAM_BUCKETS - 1 - upper.leading_zeros() as usize
    }
}

/// Renders the `span.*_ns` histograms of a metrics snapshot as folded
/// flamegraph lines — `magus;phase;subphase <total_ns>` — the
/// collapsed-stack format standard flamegraph tooling consumes. Span
/// names already carry their hierarchy as `/`-separated paths
/// (`span.mitigate/power_search_ns`), which map 1:1 onto stack frames.
pub fn folded_spans(histograms: &[HistogramSnapshot]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    for h in histograms {
        let Some(path) = h
            .name
            .strip_prefix("span.")
            .and_then(|r| r.strip_suffix("_ns"))
        else {
            continue;
        };
        let _ = writeln!(out, "magus;{} {}", path.replace('/', ";"), h.sum);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    const FIXTURE: &str = concat!(
        "{\"seq\": 0, \"kind\": \"trace.meta\", \"schema\": 1}\n",
        "{\"seq\": 1, \"kind\": \"hillclimb.iter\", \"iter\": 0, \"candidate\": \"SetTilt(SectorId(2), 7)\", \"probes\": 36, \"objective\": 1.25, \"delta\": 0.05, \"accepted\": true}\n",
        "{\"seq\": 2, \"kind\": \"migrate.rollback\", \"step\": 3, \"change\": 1}\n",
        "{\"seq\": 3, \"kind\": \"custom.kind\", \"anything\": [1, 2]}\n",
    );

    #[test]
    fn parses_fixture_with_header_and_unknown_kind() {
        let t = parse_trace(FIXTURE).unwrap();
        assert_eq!(t.schema, Some(1));
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.records[0].seq, 1);
        assert_eq!(t.records[0].kind, "hillclimb.iter");
        assert_eq!(
            t.records[0]
                .field("probes")
                .and_then(|v| v.as_number())
                .and_then(|n| n.as_u64()),
            Some(36)
        );
        assert_eq!(t.records[2].kind, "custom.kind");
        assert!(check_trace(&t).is_empty(), "{:?}", check_trace(&t));
        let counts = t.kind_counts();
        assert_eq!(counts.get("hillclimb.iter"), Some(&1));
        assert_eq!(counts.get("custom.kind"), Some(&1));
    }

    #[test]
    fn seq_gap_is_rejected() {
        let text = "{\"seq\": 0, \"kind\": \"trace.meta\", \"schema\": 1}\n\
                    {\"seq\": 2, \"kind\": \"a.b\"}\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("seq gap"), "{err}");
    }

    #[test]
    fn future_schema_is_rejected_unknown_fields_pass() {
        let future = format!(
            "{{\"seq\": 0, \"kind\": \"trace.meta\", \"schema\": {}}}\n",
            TRACE_SCHEMA_VERSION + 1
        );
        assert!(parse_trace(&future).unwrap_err().msg.contains("newer"));
        let extra = "{\"seq\": 0, \"kind\": \"trace.meta\", \"schema\": 1, \"host\": \"x\"}\n\
                     {\"seq\": 1, \"kind\": \"migrate.rollback\", \"step\": 0, \"change\": 0, \"note\": \"extra\"}\n";
        let t = parse_trace(extra).unwrap();
        assert!(check_trace(&t).is_empty());
        assert_eq!(
            t.records[0].field("note").and_then(|v| v.as_str()),
            Some("extra")
        );
    }

    #[test]
    fn check_flags_missing_header_and_missing_fields() {
        let t = parse_trace("{\"seq\": 0, \"kind\": \"migrate.rollback\", \"step\": 1}\n").unwrap();
        let problems = check_trace(&t);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("trace.meta"));
        assert!(problems[1].contains("`change`"), "{problems:?}");
    }

    #[test]
    fn diff_reports_first_field_divergence() {
        let a = parse_trace(FIXTURE).unwrap();
        let b = parse_trace(&FIXTURE.replace("\"objective\": 1.25", "\"objective\": 1.5")).unwrap();
        assert_eq!(diff_traces(&a, &a), None);
        let d = diff_traces(&a, &b).unwrap();
        assert_eq!(d.seq, 1);
        assert_eq!(d.field.as_deref(), Some("objective"));
        assert_eq!(d.left, "1.25");
        assert_eq!(d.right, "1.5");
        let rendered = d.to_string();
        assert!(rendered.contains("seq 1"), "{rendered}");
    }

    #[test]
    fn diff_reports_kind_mismatch_and_prefix() {
        let a = parse_trace(FIXTURE).unwrap();
        let b = parse_trace(&FIXTURE.replace("migrate.rollback", "migrate.step")).unwrap();
        let d = diff_traces(&a, &b).unwrap();
        assert_eq!(d.seq, 2);
        assert_eq!(d.field, None);
        assert!(d.what.contains("kind differs"));

        let mut short = parse_trace(FIXTURE).unwrap();
        short.records.pop();
        let d = diff_traces(&short, &a).unwrap();
        assert_eq!(d.seq, 3);
        assert!(
            d.what.contains("left trace ends after 2 records"),
            "{}",
            d.what
        );
        let d = diff_traces(&a, &short).unwrap();
        assert!(
            d.what.contains("right trace ends after 2 records"),
            "{}",
            d.what
        );
    }

    #[test]
    fn metrics_snapshot_roundtrips_with_matching_quantiles() {
        let r = Registry::new();
        r.counter("probe.count").add(17);
        let h = r.histogram("span.mitigate/power_search_ns");
        for v in [0u64, 3, 90, 90, 90, 700, 100_000] {
            h.observe(v);
        }
        let parsed = parse_metrics_snapshot(&r.to_json()).unwrap();
        assert_eq!(parsed.counters, vec![("probe.count".to_string(), 17)]);
        let orig = h.snapshot("span.mitigate/power_search_ns");
        let back = parsed.histogram("span.mitigate/power_search_ns").unwrap();
        assert_eq!(
            (back.count, back.sum, back.min, back.max),
            (7, 100_973, 0, 100_000)
        );
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(back.quantile(q), orig.quantile(q), "q={q}");
        }
        let folded = folded_spans(&parsed.histograms);
        assert_eq!(folded, "magus;mitigate;power_search 100973\n");
    }

    #[test]
    fn malformed_metrics_snapshots_error() {
        assert!(parse_metrics_snapshot("[]").is_err());
        assert!(parse_metrics_snapshot("{nope").is_err());
        let bad = "{\"histograms\": {\"h\": {\"count\": 1, \"sum\": 1, \"min\": 1}}}";
        assert!(parse_metrics_snapshot(bad).unwrap_err().msg.contains("max"));
    }

    #[test]
    fn bucket_upper_encoding_inverts() {
        assert_eq!(bucket_index_of_upper(0), 0);
        assert_eq!(bucket_index_of_upper(1), 1);
        assert_eq!(bucket_index_of_upper(3), 2);
        assert_eq!(bucket_index_of_upper((1u64 << 40) - 1), 40);
        assert_eq!(bucket_index_of_upper(u64::MAX), 64);
    }
}
