//! Span timing with hierarchical phase attribution.
//!
//! Each thread keeps a stack of active phase names. Entering a span
//! pushes its name; on drop the elapsed time is recorded into a histogram
//! named after the full path (`span.mitigate/hill_climb_ns`), so nested
//! timings attribute to the phase that spent them rather than blurring
//! into one bucket. Spans only do work at [`ObsLevel::Full`]
//! (one `Instant` read each side plus a thread-local push/pop).

use std::cell::RefCell;
use std::time::Instant;

use crate::level::full_enabled;

#[allow(unused_imports)] // doc link
use crate::level::ObsLevel;

thread_local! {
    static PHASE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span_enter`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Enters the named span if spans are enabled; otherwise returns an inert
/// guard. Use the [`crate::span!`] macro rather than calling this
/// directly.
pub fn span_enter(name: &'static str) -> SpanGuard {
    if !full_enabled() {
        return SpanGuard { start: None };
    }
    PHASE_STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = PHASE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        if path.is_empty() {
            // The level was raised mid-span; nothing was pushed, so there
            // is nothing meaningful to attribute.
            return;
        }
        crate::registry()
            .histogram(&format!("span.{path}_ns"))
            .observe(elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, ObsLevel};

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let _g = crate::testutil::global_guard();
        set_level(ObsLevel::Full);
        {
            let _outer = span_enter("outer_test_span");
            let _inner = span_enter("inner_test_span");
        }
        set_level(ObsLevel::Off);
        let snap = crate::registry().snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert!(
            names.contains(&"span.outer_test_span_ns"),
            "outer span missing: {names:?}"
        );
        assert!(
            names.contains(&"span.outer_test_span/inner_test_span_ns"),
            "inner span path missing: {names:?}"
        );
    }

    #[test]
    fn spans_are_inert_when_not_full() {
        let _g = crate::testutil::global_guard();
        set_level(ObsLevel::Counters);
        let g = span_enter("never_recorded_span");
        drop(g);
        set_level(ObsLevel::Off);
        let snap = crate::registry().snapshot();
        assert!(
            !snap
                .histograms
                .iter()
                .any(|h| h.name.contains("never_recorded_span")),
            "span recorded below Full level"
        );
    }
}
