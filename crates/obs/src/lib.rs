//! `magus-obs`: workspace-wide observability.
//!
//! Magus is a search system: the interesting questions — how many probes a
//! hill-climb spends, where assembly time goes in the path-loss store, how
//! deep the MME queue gets during a migration wave — are all questions
//! about counters, timings, and per-iteration traces. This crate is the
//! substrate the rest of the workspace reports into.
//!
//! Three layers, cheapest first:
//!
//! 1. **Metrics registry** ([`registry`]): named [`Counter`]s, [`Gauge`]s,
//!    and log-bucketed [`Histogram`]s on plain atomics. Hot paths use the
//!    [`counter_inc!`]/[`counter_add!`]/[`observe!`]/[`gauge_set!`] macros,
//!    which cache the `Arc` handle in a per-call-site `OnceLock` so the
//!    steady-state cost is one relaxed atomic load (the [`ObsLevel`]
//!    check) plus one atomic add.
//! 2. **Spans** ([`span!`], [`timed!`], [`elapsed!`]): lightweight block
//!    timing. `span!` additionally maintains a thread-local phase stack so
//!    nested spans record under a hierarchical path
//!    (`span.mitigate/power_search`), attributing time to the phase that
//!    spent it.
//! 3. **Trace sink** ([`trace_event!`]): structured JSONL event stream —
//!    one record per hill-climb iteration, gradual-migration step, or sim
//!    window — written to the path given via `--trace-out`. The read
//!    side lives in [`trace::read`]: a schema-checked parser, a
//!    first-divergence differ, and metrics-snapshot aggregation — the
//!    engine behind the `magus trace check|diff|stats` subcommands.
//!
//! Everything is gated on a runtime [`ObsLevel`]: `Off` (default) makes
//! every macro a single relaxed load + untaken branch; `Counters` enables
//! the registry (counters, gauges, value histograms); `Full` adds span
//! timing and trace emission. Trace records additionally require a sink
//! (a writer installed via [`set_trace_path`]/[`set_trace_writer`]).
//! Building this crate with the `disabled` cargo feature compiles the
//! macro layer away entirely.
//!
//! The crate is std-only (plus the vendored `parking_lot`), emits its own
//! JSON, and never prints: rendering helpers return `String`s for the
//! caller (CLI, bench harness) to surface.

#![forbid(unsafe_code)]

mod level;
mod macros;
mod metrics;
mod span;
pub mod trace;

pub use level::{counters_enabled, full_enabled, level, set_level, ObsLevel, ParseLevelError};
pub use metrics::{
    json_escape, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    Registry, Snapshot,
};
pub use span::{span_enter, SpanGuard};
pub use trace::{
    clear_trace, emit, flush_trace, set_trace_path, set_trace_writer, trace_enabled, Event,
    FieldValue, TRACE_SCHEMA_VERSION,
};

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    metrics::global()
}

/// Implementation detail of the macro layer; not a public API.
#[doc(hidden)]
pub mod __private {
    pub use std::sync::{Arc, OnceLock};
}

/// Serializes tests that touch process-global state (level, trace sink,
/// global registry) so parallel test threads don't race each other.
#[cfg(test)]
pub(crate) mod testutil {
    use parking_lot::Mutex;
    use std::sync::OnceLock;

    pub fn global_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }
}
