//! Writer ↔ reader round-trip for every trace record kind the layers
//! emit: each kind is written through the real `trace_event!` macro
//! (the exact call shape the emitting crate uses), captured in memory,
//! and read back through `trace::read` — so the writer and the v1
//! schema the reader enforces can never drift apart silently. The
//! serialized bytes are also pinned against literal fixtures: a change
//! to the wire format must show up here as a failing diff.

use magus_obs::trace::read::{check_trace, diff_traces, parse_trace, read_trace};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The trace sink and obs level are process-global; every test that
/// touches them serializes on this lock.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A `Write` sink the test keeps a handle to after handing the writer
/// to the trace layer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Emits one record of every kind the layers produce, with the exact
/// field sets the real call sites use (see `KNOWN_KINDS`), and returns
/// the captured stream.
fn emit_one_of_each() -> String {
    let buf = SharedBuf::default();
    magus_obs::set_level(magus_obs::ObsLevel::Full);
    magus_obs::set_trace_writer(Box::new(buf.clone()));
    // crates/core/src/hillclimb.rs
    magus_obs::trace_event!("hillclimb.iter",
        "iter" => 0u64,
        "candidate" => 3u64,
        "probes" => 42u64,
        "objective" => 0.875f64,
        "delta" => 0.125f64,
        "accepted" => true,
    );
    // crates/core/src/tuning.rs (power adds `degraded_left`, an
    // extra field beyond the required floor)
    magus_obs::trace_event!("search.step",
        "algo" => "power",
        "step" => 1u64,
        "change" => "PowerDelta(7, -1.0)",
        "utility" => 0.9f64,
        "degraded_left" => 2u64,
    );
    // crates/core/src/gradual.rs
    magus_obs::trace_event!("gradual.step",
        "step" => 2u64,
        "changes" => 5u64,
        "compensations" => 1u64,
        "utility" => 0.8f64,
        "handovers" => 120u64,
        "seamless" => 118u64,
        "final" => false,
    );
    // crates/core/src/migrate.rs
    magus_obs::trace_event!("migrate.step",
        "step" => 2u64,
        "attempts" => 6u64,
        "retries" => 1u64,
        "stragglers" => 1u64,
        "deferred" => 0u64,
        "rolled_back" => false,
        "utility" => 0.85f64,
        "degraded" => false,
        "sim_time_ms" => 1500u64,
    );
    magus_obs::trace_event!("migrate.rollback",
        "step" => 2u64,
        "change" => 4u64,
    );
    // crates/model/src/evaluator.rs
    magus_obs::trace_event!("evaluator.build",
        "sectors" => 69u64,
        "grids" => 14400u64,
        "degraded" => false,
    );
    // crates/testbed/src/sim.rs
    magus_obs::trace_event!("sim.window",
        "t_secs" => 3u64,
        "utility" => 0.77f64,
        "events" => 9u64,
        "mme_queue" => 2u64,
        "seamless" => 5u64,
        "hard" => 1u64,
    );
    magus_obs::trace_event!("sim.fault.job_abandoned",
        "job_seq" => 17u64,
        "attempt" => 3u64,
    );
    // crates/propagation (store degradation surfaces via the fault layer)
    magus_obs::trace_event!("fault.store_degraded",
        "sector" => 12u64,
        "tilt" => 4u64,
    );
    // crates/bench/src/lib.rs
    magus_obs::trace_event!("paper.expectation",
        "experiment" => "fig8",
        "metric" => "recovery_ratio",
        "expected" => 0.63f64,
        "actual" => 0.61f64,
        "abs_delta" => 0.02f64,
    );
    // crates/core/src/search.rs (the search portfolio; the labeled
    // climb in hillclimb.rs emits the same kinds). `temperature` and
    // `slot` are strategy-specific extras beyond the required floor.
    magus_obs::trace_event!("search.iter",
        "strategy" => "anneal",
        "iter" => 7u64,
        "probes" => 1u64,
        "objective" => 0.81f64,
        "accepted" => true,
        "temperature" => 0.25f64,
    );
    magus_obs::trace_event!("search.accept",
        "strategy" => "beam:4",
        "iter" => 3u64,
        "change" => "SetTilt(SectorId(5), 4)",
        "utility" => 0.86f64,
        "slot" => 1u64,
    );
    magus_obs::clear_trace();
    magus_obs::set_level(magus_obs::ObsLevel::Off);
    buf.contents()
}

#[test]
fn every_record_kind_roundtrips_and_validates() {
    let _guard = global_guard();
    let text = emit_one_of_each();
    let trace = parse_trace(&text).expect("captured stream parses");
    assert_eq!(trace.schema, Some(magus_obs::TRACE_SCHEMA_VERSION));
    assert_eq!(trace.records.len(), 12, "one record per emitted kind");
    assert_eq!(
        check_trace(&trace),
        Vec::<String>::new(),
        "stream is schema-clean"
    );
    // Every kind present exactly once, every required field preserved.
    let counts = trace.kind_counts();
    for (kind, fields) in magus_obs::trace::read::KNOWN_KINDS {
        if *kind == "trace.meta" {
            continue;
        }
        assert_eq!(counts.get(*kind), Some(&1), "kind `{kind}` missing");
        let rec = trace
            .records
            .iter()
            .find(|r| r.kind == *kind)
            .expect("record");
        for f in *fields {
            assert!(
                rec.field(f).is_some(),
                "{kind}: field `{f}` lost in transit"
            );
        }
    }
    // Spot-check values survive with their types.
    let hc = &trace.records[0];
    assert_eq!(
        hc.field("objective").map(ToString::to_string),
        Some("0.875".into())
    );
    assert_eq!(
        hc.field("accepted").map(ToString::to_string),
        Some("true".into())
    );
    let ja = trace
        .records
        .iter()
        .find(|r| r.kind == "sim.fault.job_abandoned")
        .expect("job_abandoned record");
    assert_eq!(
        ja.field("job_seq").map(ToString::to_string),
        Some("17".into())
    );
}

#[test]
fn serialized_bytes_are_pinned_against_fixtures() {
    let _guard = global_guard();
    let text = emit_one_of_each();
    let lines: Vec<&str> = text.lines().collect();
    // The header and two representative records, byte for byte: the
    // wire format is an interface (ci.sh, CI artifact tooling, and the
    // committed DESIGN.md §6c examples all consume it).
    assert_eq!(lines[0], r#"{"seq": 0, "kind": "trace.meta", "schema": 1}"#);
    assert_eq!(
        lines[1],
        r#"{"seq": 1, "kind": "hillclimb.iter", "iter": 0, "candidate": 3, "probes": 42, "objective": 0.875, "delta": 0.125, "accepted": true}"#
    );
    assert_eq!(
        lines[4],
        r#"{"seq": 4, "kind": "migrate.step", "step": 2, "attempts": 6, "retries": 1, "stragglers": 1, "deferred": 0, "rolled_back": false, "utility": 0.85, "degraded": false, "sim_time_ms": 1500}"#
    );
    // The portfolio kinds added in schema v1's additive window.
    assert_eq!(
        lines[11],
        r#"{"seq": 11, "kind": "search.iter", "strategy": "anneal", "iter": 7, "probes": 1, "objective": 0.81, "accepted": true, "temperature": 0.25}"#
    );
    assert_eq!(
        lines[12],
        r#"{"seq": 12, "kind": "search.accept", "strategy": "beam:4", "iter": 3, "change": "SetTilt(SectorId(5), 4)", "utility": 0.86, "slot": 1}"#
    );
}

#[test]
fn identical_streams_diff_clean_and_reread_from_disk() {
    let _guard = global_guard();
    let a = emit_one_of_each();
    let b = emit_one_of_each();
    assert_eq!(a, b, "re-emitting the same records is byte-identical");
    let ta = parse_trace(&a).expect("parse a");
    let tb = parse_trace(&b).expect("parse b");
    assert!(
        diff_traces(&ta, &tb).is_none(),
        "identical streams diff clean"
    );
    // Disk round-trip through the real file reader.
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("roundtrip.jsonl");
    std::fs::write(&path, &a).expect("write trace");
    let from_disk = read_trace(&path).expect("read trace from disk");
    assert!(diff_traces(&ta, &from_disk).is_none());
}
