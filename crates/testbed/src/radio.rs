//! The indoor radio environment.
//!
//! Paper §3.1: each eNodeB radio reaches 125 mW (≈21 dBm) and is tuned by
//! a software attenuator whose level `L` runs from 30 (maximum
//! attenuation, minimum power) to 1, in steps of 1. We model each unit as
//! 1 dB, so the effective transmit power is `21 dBm − L dB`.
//!
//! Propagation is indoor log-distance (exponent 3.0, reference loss
//! 40 dB at 1 m for band 7) plus a deterministic per-link multipath
//! texture of a few dB — enough irregularity that optimal attenuation
//! settings are not trivially symmetric, as on the real floor.

use magus_geo::{Db, Dbm, PointM};
use serde::{Deserialize, Serialize};

/// Receiver noise figure of the UE dongles, dB.
pub const UE_NOISE_FIGURE_DB: f64 = 9.0;

/// Maximum radio power of the Cavium small cells (125 mW).
pub const MAX_TX_DBM: f64 = 21.0;

/// A software attenuation level, `1..=30` (30 = minimum power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttenuationLevel(pub u8);

impl AttenuationLevel {
    /// Minimum power (maximum attenuation).
    pub const MIN_POWER: AttenuationLevel = AttenuationLevel(30);
    /// Maximum power (minimum attenuation).
    pub const MAX_POWER: AttenuationLevel = AttenuationLevel(1);

    /// Creates a level, panicking outside `1..=30` (the hardware range).
    pub fn new(l: u8) -> AttenuationLevel {
        assert!((1..=30).contains(&l), "attenuation level {l} out of range");
        AttenuationLevel(l)
    }

    /// Effective transmit power at this level.
    pub fn tx_power(self) -> Dbm {
        Dbm(MAX_TX_DBM) + Db(-(self.0 as f64))
    }

    /// One step toward maximum power, saturating at L=1.
    pub fn stronger(self) -> AttenuationLevel {
        AttenuationLevel(self.0.saturating_sub(1).max(1))
    }

    /// One step toward minimum power, saturating at L=30.
    pub fn weaker(self) -> AttenuationLevel {
        AttenuationLevel((self.0 + 1).min(30))
    }
}

/// The static geometry: eNodeB and UE positions on the floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadioEnvironment {
    enodeb_positions: Vec<PointM>,
    ue_positions: Vec<PointM>,
    /// Seed for the multipath texture.
    seed: u64,
}

impl RadioEnvironment {
    /// Builds an environment from positions (meters, indoor scale).
    pub fn new(enodebs: Vec<PointM>, ues: Vec<PointM>, seed: u64) -> RadioEnvironment {
        RadioEnvironment {
            enodeb_positions: enodebs,
            ue_positions: ues,
            seed,
        }
    }

    /// Number of eNodeBs.
    pub fn num_enodebs(&self) -> usize {
        self.enodeb_positions.len()
    }

    /// Number of UEs.
    pub fn num_ues(&self) -> usize {
        self.ue_positions.len()
    }

    /// Current position of UE `u`.
    pub fn ue_position(&self, u: usize) -> PointM {
        self.ue_positions[u]
    }

    /// Moves UE `u` (mobility models drive this between scheduling
    /// quanta).
    pub fn set_ue_position(&mut self, u: usize, p: PointM) {
        self.ue_positions[u] = p;
    }

    /// Deterministic per-(link, slot) fast-fading factor in dB, zero-mean
    /// over slots. Models small-scale multipath variation so a
    /// proportional-fair scheduler has diversity to exploit.
    pub fn fast_fading_db(&self, e: usize, u: usize, slot: u64, sigma_db: f64) -> f64 {
        let h = magus_hash(self.seed ^ 0xFAD_E, (e as u64) << 32 | u as u64, slot);
        // Sum of two uniforms, zero-mean, bounded: adequate for fading
        // texture without platform-dependent transcendentals.
        let h2 = magus_hash(self.seed ^ 0xFAD_E2, (u as u64) << 32 | e as u64, slot);
        (h + h2 - 1.0) * sigma_db * 1.73
    }

    /// Path loss (positive dB) between eNodeB `e` and UE `u`, excluding
    /// the attenuator.
    pub fn path_loss_db(&self, e: usize, u: usize) -> f64 {
        let d = self.enodeb_positions[e]
            .distance(self.ue_positions[u])
            .max(1.0);
        // Indoor log-distance: 40 dB at 1 m (band 7), exponent 3.0.
        let base = 40.0 + 30.0 * d.log10();
        // Deterministic multipath/wall texture in [-4, +4] dB per link.
        let h = magus_hash(self.seed, e as u64, u as u64);
        base + (h - 0.5) * 8.0
    }

    /// Received power at UE `u` from eNodeB `e` at attenuation `l`.
    pub fn rx_power(&self, e: usize, u: usize, l: AttenuationLevel) -> Dbm {
        l.tx_power() + Db(-self.path_loss_db(e, u))
    }
}

/// SplitMix-style hash to `[0, 1)` for the multipath texture.
fn magus_hash(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> RadioEnvironment {
        RadioEnvironment::new(
            vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
            vec![PointM::new(5.0, 2.0), PointM::new(35.0, 1.0)],
            7,
        )
    }

    #[test]
    fn attenuation_maps_to_power() {
        assert!((AttenuationLevel::MAX_POWER.tx_power().0 - 20.0).abs() < 1e-12);
        assert!((AttenuationLevel::MIN_POWER.tx_power().0 - (-9.0)).abs() < 1e-12);
        assert!(AttenuationLevel(5).tx_power() > AttenuationLevel(10).tx_power());
    }

    #[test]
    fn stronger_weaker_saturate() {
        assert_eq!(AttenuationLevel(1).stronger(), AttenuationLevel(1));
        assert_eq!(AttenuationLevel(30).weaker(), AttenuationLevel(30));
        assert_eq!(AttenuationLevel(5).stronger(), AttenuationLevel(4));
        assert_eq!(AttenuationLevel(5).weaker(), AttenuationLevel(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_level_panics() {
        AttenuationLevel::new(0);
    }

    #[test]
    fn nearer_enodeb_is_louder() {
        let e = env();
        // UE 0 is near eNodeB 0; at equal attenuation it must hear it
        // better (multipath texture is only ±4 dB, distance gap is huge).
        let l = AttenuationLevel(1);
        assert!(e.rx_power(0, 0, l) > e.rx_power(1, 0, l));
        assert!(e.rx_power(1, 1, l) > e.rx_power(0, 1, l));
    }

    #[test]
    fn path_loss_is_deterministic() {
        let a = env();
        let b = env();
        for e in 0..2 {
            for u in 0..2 {
                assert_eq!(a.path_loss_db(e, u), b.path_loss_db(e, u));
            }
        }
    }

    #[test]
    fn rx_power_tracks_attenuation_linearly() {
        let e = env();
        let p1 = e.rx_power(0, 0, AttenuationLevel(1)).0;
        let p11 = e.rx_power(0, 0, AttenuationLevel(11)).0;
        assert!((p1 - p11 - 10.0).abs() < 1e-9);
    }
}
