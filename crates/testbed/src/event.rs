//! The discrete-event core: simulated time and a deterministic event
//! queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// This time plus a delay in microseconds.
    pub const fn after_micros(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }

    /// This time plus a delay in milliseconds.
    pub const fn after_millis(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms * 1_000)
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

/// A queue entry: time-ordered, FIFO among equal times (via a sequence
/// number) so runs are bit-for-bit reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-queue of timed events.
///
/// ```
/// use magus_testbed::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "handover");
/// q.schedule(SimTime::from_millis(5), "measurement");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "measurement")));
/// assert_eq!(q.now(), SimTime::from_millis(5));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event that would rewind time is
    /// always a logic bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn time_helpers() {
        assert_eq!(SimTime::from_secs(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_millis(3).after_millis(2), SimTime(5_000));
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
