//! A packet-level LTE testbed simulator — the reproduction of the paper's
//! §3 experimental platform.
//!
//! The original testbed is physical: 4 Cavium LTE Release-9 small cells,
//! 10 Intel-NUC-hosted UEs with Sierra Wireless dongles, and an Aricent
//! EPC (MME/SGW/PGW/HSS/PCRF), indoors on one floor, band 7, 10 MHz,
//! software power attenuators `L ∈ [1, 30]`, utility measured as the sum
//! of log downlink TCP rates. None of that hardware is available, so this
//! crate rebuilds the platform as a discrete-event simulation with the
//! same moving parts:
//!
//! * [`event`] — the event engine (time-ordered queue, deterministic
//!   tie-breaking).
//! * [`radio`] — the indoor radio environment: log-distance path loss
//!   with deterministic multipath texture, per-eNodeB software
//!   attenuators, SINR with full-buffer interference.
//! * [`sim`] — eNodeBs (equal-share MAC over the LTE TBS tables), UEs
//!   (RSRP cell selection, A3 handover with hysteresis, radio-link
//!   failure on serving loss), and an EPC control plane whose MME has a
//!   bounded signaling service rate — which is exactly why synchronized
//!   handovers hurt (§6's motivation).
//! * [`scenario`] — the paper's Scenario 1 (2 eNodeBs) and Scenario 2
//!   (3 eNodeBs, interference-limited) layouts, attenuation-sweep
//!   optimization, and the proactive/reactive/no-tuning timelines of
//!   Figure 2.
//!
//! Everything is deterministic given the layout (no RNG in the hot path;
//! multipath texture is hash-based).

#![forbid(unsafe_code)]

pub mod event;
pub mod radio;
pub mod scenario;
pub mod sim;

pub use event::{EventQueue, SimTime};
pub use radio::{AttenuationLevel, RadioEnvironment, UE_NOISE_FIGURE_DB};
pub use scenario::{
    figure2_timeline, optimize_attenuations, scenario1, scenario2, steady_state_utility, Scenario,
    TimelineKind, TimelinePoint,
};
pub use sim::{EnodebId, HandoverStats, Mobility, Scheduler, Sim, SimConfig, SimReport, UeId};
