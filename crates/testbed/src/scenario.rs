//! The paper's §3.2 testbed scenarios and the Figure 2 experiment.
//!
//! Scenario 1: two eNodeBs, one taken offline — the tuning decision is
//! trivial (no interference left, so maximum power wins). Scenario 2:
//! three eNodeBs — interference makes the optimal setting non-obvious,
//! and blindly maxing power is *not* optimal.
//!
//! The optimizer mirrors the paper's methodology: enumerate attenuation
//! settings and keep the utility-maximal one ("we change the attenuations
//! of eNodeB transmitters and repeat the above steps until we reach
//! max f(C)"), implemented as coordinate descent over the per-eNodeB
//! levels with an analytic steady-state utility (the DES is used for the
//! time-domain runs, where handover dynamics matter).

use crate::event::SimTime;
use crate::radio::{AttenuationLevel, RadioEnvironment, UE_NOISE_FIGURE_DB};
use crate::sim::{ChangeOp, EnodebId, Sim, SimConfig, WindowSample};
use magus_geo::units::thermal_noise;
use magus_geo::{Db, PointM};
use magus_lte::RateMapper;
use serde::{Deserialize, Serialize};

/// A testbed scenario: layout plus the sector scheduled for upgrade.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name.
    pub label: &'static str,
    /// The floor layout.
    pub env: RadioEnvironment,
    /// The eNodeB to be taken off-air.
    pub target: EnodebId,
}

/// Paper Scenario 1: 2 eNodeBs serving 3 UEs; eNodeB-2 goes down.
pub fn scenario1() -> Scenario {
    Scenario {
        label: "scenario-1 (2 eNodeBs)",
        env: RadioEnvironment::new(
            vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
            vec![
                PointM::new(6.0, 3.0),   // UE-1, near eNodeB-1
                PointM::new(34.0, 2.0),  // UE-3, near eNodeB-2
                PointM::new(45.0, -3.0), // UE-4, beyond eNodeB-2
            ],
            0xF2,
        ),
        target: EnodebId(1),
    }
}

/// Paper Scenario 2: 3 eNodeBs serving 5 UEs; the middle one goes down.
pub fn scenario2() -> Scenario {
    Scenario {
        label: "scenario-2 (3 eNodeBs)",
        env: RadioEnvironment::new(
            vec![
                PointM::new(0.0, 0.0),
                PointM::new(25.0, 0.0),
                PointM::new(50.0, 0.0),
            ],
            vec![
                PointM::new(5.0, 4.0),   // UE-1
                PointM::new(18.0, -3.0), // UE-3
                PointM::new(27.0, 5.0),  // UE-5
                PointM::new(38.0, 2.0),  // UE-6
                PointM::new(52.0, -4.0), // UE-8
            ],
            0xF3,
        ),
        target: EnodebId(1),
    }
}

/// Analytic steady-state utility of an attenuation setting: every UE
/// attaches to its strongest on-air cell, shares capacity equally, and
/// contributes `log10(Mbps)` — the long-run value the DES converges to
/// between events.
pub fn steady_state_utility(
    env: &RadioEnvironment,
    atten: &[AttenuationLevel],
    on_air: &[bool],
    cfg: &SimConfig,
) -> f64 {
    let rate = RateMapper::new(cfg.bandwidth);
    let noise_mw = thermal_noise(cfg.bandwidth.hz(), Db(UE_NOISE_FIGURE_DB))
        .to_milliwatt()
        .0;
    let n_u = env.num_ues();
    let serving: Vec<Option<usize>> = (0..n_u)
        .map(|u| {
            (0..env.num_enodebs())
                .filter(|&e| on_air[e])
                .max_by(|&a, &b| {
                    env.rx_power(a, u, atten[a])
                        .total_cmp(&env.rx_power(b, u, atten[b]))
                })
        })
        .collect();
    let mut load = vec![0usize; env.num_enodebs()];
    for s in serving.iter().flatten() {
        load[*s] += 1;
    }
    let mut utility = 0.0;
    for u in 0..n_u {
        let Some(e) = serving[u] else { continue };
        let signal = env.rx_power(e, u, atten[e]).to_milliwatt().0;
        let interference: f64 = (0..env.num_enodebs())
            .filter(|&o| o != e && on_air[o])
            .map(|o| env.rx_power(o, u, atten[o]).to_milliwatt().0)
            .sum();
        let r = rate.max_rate_bps(signal / (noise_mw + interference)) / load[e].max(1) as f64;
        let mbps = r / 1e6;
        if mbps > 0.0 {
            utility += mbps.log10();
        }
    }
    utility
}

/// Coordinate-descent attenuation optimization: sweep each on-air
/// eNodeB's level over the full hardware range, keep the best, repeat to
/// a fixed point.
pub fn optimize_attenuations(
    env: &RadioEnvironment,
    on_air: &[bool],
    cfg: &SimConfig,
) -> (Vec<AttenuationLevel>, f64) {
    let mut atten = vec![AttenuationLevel(15); env.num_enodebs()];
    let mut best_u = steady_state_utility(env, &atten, on_air, cfg);
    loop {
        let mut improved = false;
        for e in 0..env.num_enodebs() {
            if !on_air[e] {
                continue;
            }
            let mut best_l = atten[e];
            for l in 1..=30u8 {
                let mut trial = atten.clone();
                trial[e] = AttenuationLevel(l);
                let u = steady_state_utility(env, &trial, on_air, cfg);
                if u > best_u + 1e-12 {
                    best_u = u;
                    best_l = AttenuationLevel(l);
                    improved = true;
                }
            }
            atten[e] = best_l;
        }
        if !improved {
            return (atten, best_u);
        }
    }
}

/// The three mitigation timelines of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimelineKind {
    /// Neighbors pre-tuned to the post-outage optimum before the target
    /// goes down.
    Proactive,
    /// Neighbors stepped toward the optimum one attenuation unit per
    /// measurement round, starting at the outage.
    Reactive,
    /// Nothing tuned.
    NoTuning,
}

impl TimelineKind {
    /// All three, in the paper's legend order.
    pub const ALL: [TimelineKind; 3] = [
        TimelineKind::Proactive,
        TimelineKind::Reactive,
        TimelineKind::NoTuning,
    ];
}

impl std::fmt::Display for TimelineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TimelineKind::Proactive => "proactive",
            TimelineKind::Reactive => "reactive",
            TimelineKind::NoTuning => "no-tuning",
        })
    }
}

/// One strategy's utility-over-time trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Which strategy.
    pub kind: TimelineKind,
    /// Windowed utility samples.
    pub windows: Vec<WindowSample>,
    /// Before/after optimal utilities for reference lines.
    pub f_before: f64,
    /// Steady-state utility of the tuned post-outage configuration.
    pub f_after: f64,
    /// Steady-state utility with no tuning after the outage.
    pub f_upgrade: f64,
}

/// Runs the full Figure 2 experiment for a scenario: finds `C_before`
/// and `C_after` by enumeration, then plays all three timelines through
/// the DES. The upgrade fires at `upgrade_at`.
pub fn figure2_timeline(
    scenario: &Scenario,
    cfg: &SimConfig,
    upgrade_at: SimTime,
    duration: SimTime,
) -> Vec<TimelinePoint> {
    let n_e = scenario.env.num_enodebs();
    let all_on = vec![true; n_e];
    let mut without_target = all_on.clone();
    without_target[scenario.target.0] = false;

    let (before_atten, f_before) = optimize_attenuations(&scenario.env, &all_on, cfg);
    let (after_atten, f_after) = optimize_attenuations(&scenario.env, &without_target, cfg);
    let f_upgrade = steady_state_utility(&scenario.env, &before_atten, &without_target, cfg);

    let down = (upgrade_at, ChangeOp::SetOnAir(scenario.target, false));

    let mut out = Vec::new();
    for kind in TimelineKind::ALL {
        let mut timeline = vec![down];
        match kind {
            TimelineKind::Proactive => {
                // Pre-tune neighbors shortly before the outage.
                let pre = SimTime(upgrade_at.0.saturating_sub(SimTime::from_millis(300).0));
                for e in 0..n_e {
                    if e != scenario.target.0 && after_atten[e] != before_atten[e] {
                        timeline.push((pre, ChangeOp::SetAttenuation(EnodebId(e), after_atten[e])));
                    }
                }
            }
            TimelineKind::Reactive => {
                // Step each neighbor toward its target one unit per
                // measurement round after the outage.
                for e in 0..n_e {
                    if e == scenario.target.0 {
                        continue;
                    }
                    let (mut cur, target) = (before_atten[e], after_atten[e]);
                    let mut t = upgrade_at;
                    while cur != target {
                        cur = if target < cur {
                            cur.stronger()
                        } else {
                            cur.weaker()
                        };
                        t = t.after_millis(cfg.measurement_period_ms);
                        timeline.push((t, ChangeOp::SetAttenuation(EnodebId(e), cur)));
                    }
                }
            }
            TimelineKind::NoTuning => {}
        }
        timeline.sort_by_key(|(t, _)| *t);
        let report =
            Sim::new(scenario.env.clone(), before_atten.clone(), *cfg, timeline).run(duration);
        out.push(TimelinePoint {
            kind,
            windows: report.windows,
            f_before,
            f_after,
            f_upgrade,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_optimum_after_outage_is_max_power() {
        // With a single remaining eNodeB there is no interference, so the
        // paper's observation holds: crank it to L=1.
        let s = scenario1();
        let on = [true, false];
        let (atten, _) = optimize_attenuations(&s.env, &on, &SimConfig::default());
        assert_eq!(atten[0], AttenuationLevel(1));
    }

    #[test]
    fn scenario2_optimum_is_not_all_max_power() {
        // With interference, blindly maxing both survivors is suboptimal
        // (the paper's key Scenario-2 insight).
        let s = scenario2();
        let on = [true, false, true];
        let cfg = SimConfig::default();
        let (atten, best) = optimize_attenuations(&s.env, &on, &cfg);
        let all_max = vec![AttenuationLevel(1); 3];
        let max_u = steady_state_utility(&s.env, &all_max, &on, &cfg);
        assert!(
            best >= max_u,
            "optimizer {best} must be at least all-max {max_u}"
        );
        assert!(
            atten[0] != AttenuationLevel(1) || atten[2] != AttenuationLevel(1),
            "expected a power backoff somewhere, got {atten:?}"
        );
    }

    #[test]
    fn tuning_recovers_utility_in_both_scenarios() {
        for s in [scenario1(), scenario2()] {
            let cfg = SimConfig::default();
            let n = s.env.num_enodebs();
            let all_on = vec![true; n];
            let mut without = all_on.clone();
            without[s.target.0] = false;
            let (before, f_before) = optimize_attenuations(&s.env, &all_on, &cfg);
            let (_, f_after) = optimize_attenuations(&s.env, &without, &cfg);
            let f_upgrade = steady_state_utility(&s.env, &before, &without, &cfg);
            assert!(
                f_before > f_after && f_after > f_upgrade,
                "{}: f_before {f_before} > f_after {f_after} > f_upgrade {f_upgrade}",
                s.label
            );
        }
    }

    #[test]
    fn figure2_traces_have_paper_shape() {
        let s = scenario1();
        let cfg = SimConfig::default();
        let traces = figure2_timeline(&s, &cfg, SimTime::from_secs(3), SimTime::from_secs(8));
        assert_eq!(traces.len(), 3);
        let last_utility = |k: TimelineKind| {
            traces
                .iter()
                .find(|t| t.kind == k)
                .and_then(|t| t.windows.last())
                .map(|w| w.utility)
                .expect("trace present")
        };
        // In steady state after the outage: proactive ≈ reactive ≥
        // no-tuning (strictly greater in this layout).
        assert!(last_utility(TimelineKind::Proactive) > last_utility(TimelineKind::NoTuning));
        assert!(last_utility(TimelineKind::Reactive) > last_utility(TimelineKind::NoTuning));
        // Right after the outage, proactive must already be near f_after
        // while reactive is still climbing: compare the first post-outage
        // window.
        let first_after = |k: TimelineKind| {
            traces
                .iter()
                .find(|t| t.kind == k)
                .map(|t| {
                    t.windows
                        .iter()
                        .find(|w| w.t_secs > 3.6)
                        .expect("post-outage window")
                        .utility
                })
                .expect("trace present")
        };
        assert!(first_after(TimelineKind::Proactive) >= first_after(TimelineKind::NoTuning));
    }
}
