//! The testbed simulation proper: eNodeBs, UEs, and the EPC control
//! plane as message-driven state machines over the event queue.
//!
//! Modeling choices, each anchored to the paper's platform:
//!
//! * **MAC** — full-buffer downlink with two disciplines: equal capacity
//!   sharing (what proportional fair converges to under full buffers and
//!   a static channel — exactly the paper's Formula 4), and a true
//!   slot-by-slot proportional-fair scheduler with deterministic fast
//!   fading for multi-user diversity.
//! * **Mobility** — UEs measure RSRP every period; an A3-style event
//!   (neighbor > serving + hysteresis) triggers a handover, which costs a
//!   control-plane round through the MME plus a short data interruption
//!   (*seamless*). If the serving cell vanishes (planned upgrade), the UE
//!   discovers it via radio-link failure, then re-attaches from scratch —
//!   a much longer outage (*hard* handover, paper §6).
//! * **EPC** — one MME with a serial signaling processor: each attach /
//!   path-switch occupies it for a fixed service time, and without X2
//!   links every handover is relayed through the MME twice (S1
//!   handover). Synchronized handovers queue up and the queue depth,
//!   job count, and busy time are visible in the stats — the precise
//!   mechanism behind "synchronized handovers … can severely strain the
//!   cellular network".

use crate::event::{EventQueue, SimTime};
use crate::radio::{AttenuationLevel, RadioEnvironment, UE_NOISE_FIGURE_DB};
use magus_geo::units::thermal_noise;
use magus_geo::Db;
use magus_lte::{Bandwidth, RateMapper};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Downlink MAC scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Equal capacity sharing — what proportional fair converges to under
    /// full buffers and a static channel (and the paper's Formula 4).
    EqualShare,
    /// Slot-by-slot proportional fair: each quantum the full band goes to
    /// the UE maximizing `instantaneous rate / EWMA throughput`, with
    /// deterministic fast fading providing multi-user diversity.
    ProportionalFair {
        /// EWMA smoothing factor for the average-throughput term.
        ewma_alpha: f64,
        /// Fast-fading standard deviation, dB.
        fading_sigma_db: f64,
    },
}

/// UE movement model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// UEs stay where they were placed (the paper's testbed).
    Static,
    /// Random-waypoint-style drift inside a bounding box: each UE walks
    /// toward a deterministic per-UE waypoint at `speed_mps`, picking a
    /// new waypoint on arrival.
    Waypoint {
        /// Walking speed, m/s.
        speed_mps: f64,
        /// Bounding box min corner (meters).
        min_x: f64,
        /// Bounding box min corner (meters).
        min_y: f64,
        /// Bounding box max corner (meters).
        max_x: f64,
        /// Bounding box max corner (meters).
        max_y: f64,
    },
}

/// Index of an eNodeB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EnodebId(pub usize);

/// Index of a UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UeId(pub usize);

/// Simulation parameters (defaults follow LTE signaling norms).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// MAC scheduling quantum, ms.
    pub sched_quantum_ms: u64,
    /// UE measurement-report period, ms.
    pub measurement_period_ms: u64,
    /// A3 hysteresis, dB.
    pub a3_hysteresis_db: f64,
    /// Data interruption of a seamless (X2-style) handover, ms.
    pub seamless_interruption_ms: u64,
    /// Time for a UE to declare radio-link failure after its cell
    /// vanishes, ms.
    pub rlf_detection_ms: u64,
    /// Radio-level re-attach time after RLF (excluding MME queueing), ms.
    pub reattach_time_ms: u64,
    /// MME per-message service time, ms.
    pub mme_service_time_ms: u64,
    /// Whether eNodeBs share X2 links. With X2, a handover is a direct
    /// eNodeB↔eNodeB affair costing the MME only a path switch; without,
    /// it becomes an S1 handover fully relayed through the MME (two
    /// signaling jobs and a longer interruption) — the distinction that
    /// makes core-network load sensitive to the handover mix.
    pub x2_available: bool,
    /// Extra data interruption of an S1 (MME-relayed) handover, ms.
    pub s1_extra_interruption_ms: u64,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Utility/trace window length, ms.
    pub window_ms: u64,
    /// MAC scheduling discipline.
    pub scheduler: Scheduler,
    /// UE movement model.
    pub mobility: Mobility,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            sched_quantum_ms: 10,
            measurement_period_ms: 100,
            a3_hysteresis_db: 3.0,
            seamless_interruption_ms: 40,
            rlf_detection_ms: 200,
            reattach_time_ms: 80,
            mme_service_time_ms: 5,
            x2_available: true,
            s1_extra_interruption_ms: 60,
            bandwidth: Bandwidth::Mhz10,
            window_ms: 500,
            scheduler: Scheduler::EqualShare,
            mobility: Mobility::Static,
        }
    }
}

/// A scheduled configuration change (the upgrade timeline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChangeOp {
    /// Retune one eNodeB's attenuator.
    SetAttenuation(EnodebId, AttenuationLevel),
    /// Take an eNodeB off-air (or back on).
    SetOnAir(EnodebId, bool),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum UeState {
    /// Attached and receiving data.
    Connected,
    /// Executing a seamless handover; data resumes at the given time.
    HandingOver { target: usize },
    /// Serving cell lost; waiting out RLF detection.
    RadioLinkFailure,
    /// Re-attaching through the MME.
    Reattaching { target: usize },
}

#[derive(Debug, Clone, Copy)]
enum MmeJob {
    /// X2 path switch for a seamless handover.
    PathSwitch { ue: usize, target: usize },
    /// First leg of an S1 handover (handover-required / request relay);
    /// completion enqueues the path switch.
    S1Relay { ue: usize, target: usize },
    /// Full attach after RLF.
    Attach { ue: usize, target: usize },
}

/// An MME job plus the bookkeeping the fault layer needs: a stable
/// sequence number (the fault key — re-enqueues keep it, so retries of
/// one lost message hash as one fault site) and the delivery attempt.
#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    job: MmeJob,
    seq: u64,
    attempt: u32,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    MacQuantum,
    Measure,
    RlfExpired {
        ue: usize,
    },
    MmeDone,
    HandoverFinish {
        ue: usize,
        target: usize,
        seamless: bool,
    },
    Apply {
        index: usize,
    },
    WindowClose,
}

/// Handover accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HandoverStats {
    /// Handovers whose source was on-air at trigger time.
    pub seamless: usize,
    /// RLF-driven re-attachments.
    pub hard: usize,
    /// Deepest MME signaling backlog observed.
    pub max_mme_queue: usize,
    /// Largest number of handovers triggered in one measurement round.
    pub max_simultaneous: usize,
    /// Total signaling jobs the MME processed.
    pub mme_jobs: usize,
    /// Total MME busy time, ms (utilization = busy / run length).
    pub mme_busy_ms: u64,
    /// Measurement reports lost to injected faults (the UE simply
    /// re-measures next period — deferred, not dropped handovers).
    pub dropped_reports: usize,
    /// MME signaling messages lost to injected faults and re-enqueued.
    pub dropped_signaling: usize,
    /// Signaling procedures abandoned after the retry budget: handovers
    /// reverted to the serving cell, attaches returned to RLF detection.
    pub abandoned_jobs: usize,
}

/// A (time, utility, per-UE Mbps) sample of one trace window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window end, seconds.
    pub t_secs: f64,
    /// Sum of log10(Mbps) over UEs with data in the window.
    pub utility: f64,
    /// Per-UE average rate in the window, Mbps.
    pub rates_mbps: Vec<f64>,
}

/// Final report of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-UE mean downlink rate over the whole run, Mbps.
    pub mean_rates_mbps: Vec<f64>,
    /// Sum of log10(Mbps) over UEs with non-zero rate — the paper's
    /// testbed utility.
    pub utility: f64,
    /// Handover accounting.
    pub handovers: HandoverStats,
    /// Per-window trace.
    pub windows: Vec<WindowSample>,
}

/// The testbed simulator.
pub struct Sim {
    cfg: SimConfig,
    env: RadioEnvironment,
    rate: RateMapper,
    noise_mw: f64,
    queue: EventQueue<Event>,
    timeline: Vec<(SimTime, ChangeOp)>,

    atten: Vec<AttenuationLevel>,
    on_air: Vec<bool>,
    ue_serving: Vec<usize>,
    ue_state: Vec<UeState>,

    mme_queue: VecDeque<QueuedJob>,
    mme_busy: bool,
    /// Next MME job sequence number (fault-injection key material).
    mme_seq: u64,
    /// Measurement rounds elapsed (fault-injection key material).
    measure_round: u64,

    delivered_bits: Vec<f64>,
    /// EWMA throughput per UE (bits/s) for the PF metric.
    ewma_thpt: Vec<f64>,
    /// Waypoint per UE for the mobility model.
    waypoints: Vec<magus_geo::PointM>,
    waypoint_seq: Vec<u64>,
    window_bits: Vec<f64>,
    windows: Vec<WindowSample>,
    stats: HandoverStats,
    end: SimTime,
    /// Events dispatched so far (event-loop throughput accounting).
    events_dispatched: u64,
}

impl Sim {
    /// Builds a simulation: all UEs start attached to their
    /// strongest on-air cell (the paper's step (a): "first let the UEs
    /// attach to their preferred eNodeB").
    pub fn new(
        env: RadioEnvironment,
        initial_atten: Vec<AttenuationLevel>,
        cfg: SimConfig,
        timeline: Vec<(SimTime, ChangeOp)>,
    ) -> Sim {
        assert_eq!(env.num_enodebs(), initial_atten.len());
        let n_e = env.num_enodebs();
        let n_u = env.num_ues();
        let on_air = vec![true; n_e];
        let rate = RateMapper::new(cfg.bandwidth);
        let noise_mw = thermal_noise(cfg.bandwidth.hz(), Db(UE_NOISE_FIGURE_DB))
            .to_milliwatt()
            .0;
        let mut sim = Sim {
            cfg,
            env,
            rate,
            noise_mw,
            queue: EventQueue::new(),
            timeline,
            atten: initial_atten,
            on_air,
            ue_serving: vec![0; n_u],
            ue_state: vec![UeState::Connected; n_u],
            mme_queue: VecDeque::new(),
            mme_busy: false,
            mme_seq: 0,
            measure_round: 0,
            delivered_bits: vec![0.0; n_u],
            ewma_thpt: vec![1.0; n_u],
            waypoints: vec![magus_geo::PointM::new(0.0, 0.0); n_u],
            waypoint_seq: vec![0; n_u],
            window_bits: vec![0.0; n_u],
            windows: Vec::new(),
            stats: HandoverStats::default(),
            end: SimTime::ZERO,
            events_dispatched: 0,
        };
        for u in 0..n_u {
            sim.ue_serving[u] = sim.best_cell(u).unwrap_or(0);
        }
        sim
    }

    /// Strongest on-air cell for UE `u`.
    fn best_cell(&self, u: usize) -> Option<usize> {
        (0..self.env.num_enodebs())
            .filter(|&e| self.on_air[e])
            .max_by(|&a, &b| {
                self.env
                    .rx_power(a, u, self.atten[a])
                    .total_cmp(&self.env.rx_power(b, u, self.atten[b]))
            })
    }

    /// Linear SINR of UE `u` toward cell `e`.
    fn sinr(&self, u: usize, e: usize) -> f64 {
        if !self.on_air[e] {
            return 0.0;
        }
        let signal = self.env.rx_power(e, u, self.atten[e]).to_milliwatt().0;
        let interference: f64 = (0..self.env.num_enodebs())
            .filter(|&o| o != e && self.on_air[o])
            .map(|o| self.env.rx_power(o, u, self.atten[o]).to_milliwatt().0)
            .sum();
        signal / (self.noise_mw + interference)
    }

    /// Number of UEs currently drawing capacity from cell `e`.
    fn load(&self, e: usize) -> usize {
        (0..self.env.num_ues())
            .filter(|&u| self.ue_serving[u] == e && self.ue_state[u] == UeState::Connected)
            .count()
    }

    fn enqueue_mme(&mut self, job: MmeJob) {
        let seq = self.mme_seq;
        self.mme_seq += 1;
        self.requeue_mme(QueuedJob {
            job,
            seq,
            attempt: 0,
        });
    }

    fn requeue_mme(&mut self, queued: QueuedJob) {
        self.mme_queue.push_back(queued);
        self.stats.max_mme_queue = self.stats.max_mme_queue.max(self.mme_queue.len());
        magus_obs::gauge_max!("sim.mme_queue_max", self.mme_queue.len() as i64);
        if !self.mme_busy {
            self.mme_busy = true;
            let at = self.queue.now().after_millis(self.cfg.mme_service_time_ms);
            self.queue.schedule(at, Event::MmeDone);
        }
    }

    /// Fault hook for MME signaling: decides whether `queued`'s outbound
    /// message is lost this service slot, and if so either re-enqueues
    /// the job (bounded retry) or abandons the procedure, leaving the UE
    /// in a state the ordinary machinery recovers from. Returns true
    /// when the job must not take effect.
    fn mme_job_dropped(&mut self, now: SimTime, queued: QueuedJob) -> bool {
        let Some(plan) = magus_fault::active_plan() else {
            return false;
        };
        let key = magus_fault::site_key(queued.seq, 0, 2);
        if !plan.injects(magus_fault::FaultPoint::SimEventDrop, key, queued.attempt) {
            return false;
        }
        self.stats.dropped_signaling += 1;
        magus_obs::counter_inc!("sim.fault.signaling_dropped");
        if queued.attempt < plan.retry_limit() {
            plan.note_retry();
            self.requeue_mme(QueuedJob {
                attempt: queued.attempt + 1,
                ..queued
            });
            return true;
        }
        // Retry budget exhausted: abandon the procedure.
        self.stats.abandoned_jobs += 1;
        plan.note_rollback();
        // "job_seq", not "seq": every trace record already carries a
        // stream-level `seq`, and a duplicate key would clobber it.
        magus_obs::trace_event!("sim.fault.job_abandoned",
            "job_seq" => queued.seq,
            "attempt" => queued.attempt,
        );
        match queued.job {
            MmeJob::PathSwitch { ue, .. } | MmeJob::S1Relay { ue, .. } => {
                // Handover abandoned: the UE stays on its serving cell.
                // If that cell has since gone off-air, the next MAC
                // quantum's RLF scan picks the UE up.
                if matches!(self.ue_state[ue], UeState::HandingOver { .. }) {
                    self.ue_state[ue] = UeState::Connected;
                }
            }
            MmeJob::Attach { ue, .. } => {
                // Attach abandoned: back to RLF detection, whose expiry
                // enqueues a fresh attach (a new fault site, so a
                // permanent fault on this job cannot wedge the UE).
                self.ue_state[ue] = UeState::RadioLinkFailure;
                self.queue.schedule(
                    now.after_millis(self.cfg.rlf_detection_ms),
                    Event::RlfExpired { ue },
                );
            }
        }
        true
    }

    /// Runs the simulation for `duration` and reports.
    pub fn run(mut self, duration: SimTime) -> SimReport {
        let _span = magus_obs::span_enter("sim.run");
        self.end = duration;
        // The MAC credits each quantum's interval [t, t+dt) at its start,
        // so the first quantum fires at t = 0 and none fires at t ≥ end;
        // window closes at interval boundaries then see exactly the
        // traffic of their window regardless of event tie-breaking.
        self.queue.schedule(SimTime::ZERO, Event::MacQuantum);
        self.queue.schedule(
            SimTime(self.cfg.measurement_period_ms * 1_000),
            Event::Measure,
        );
        self.queue
            .schedule(SimTime(self.cfg.window_ms * 1_000), Event::WindowClose);
        for (i, (at, _)) in self.timeline.iter().enumerate() {
            assert!(*at <= duration, "timeline change beyond run duration");
            self.queue.schedule(*at, Event::Apply { index: i });
        }

        while let Some((now, ev)) = self.queue.pop() {
            if now > self.end {
                break;
            }
            self.dispatch(now, ev);
        }
        self.report()
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        self.events_dispatched += 1;
        magus_obs::counter_inc!("sim.events");
        match ev {
            Event::MacQuantum => {
                if now >= self.end {
                    return; // the interval [now, now+dt) lies beyond the run
                }
                let dt = self.cfg.sched_quantum_ms as f64 / 1_000.0;
                self.step_mobility(dt);
                // RLF detection first (cells can vanish between quanta).
                for u in 0..self.env.num_ues() {
                    if self.ue_state[u] == UeState::Connected && !self.on_air[self.ue_serving[u]] {
                        self.ue_state[u] = UeState::RadioLinkFailure;
                        self.queue.schedule(
                            now.after_millis(self.cfg.rlf_detection_ms),
                            Event::RlfExpired { ue: u },
                        );
                    }
                }
                let slot = now.0 / (self.cfg.sched_quantum_ms * 1_000).max(1);
                match self.cfg.scheduler {
                    Scheduler::EqualShare => {
                        for u in 0..self.env.num_ues() {
                            if self.ue_state[u] != UeState::Connected {
                                continue;
                            }
                            let e = self.ue_serving[u];
                            let n = self.load(e).max(1);
                            let bits = self.rate.max_rate_bps(self.sinr(u, e)) / n as f64 * dt;
                            self.delivered_bits[u] += bits;
                            self.window_bits[u] += bits;
                        }
                    }
                    Scheduler::ProportionalFair {
                        ewma_alpha,
                        fading_sigma_db,
                    } => {
                        // Per cell: full band to the PF-metric-maximal UE.
                        for e in 0..self.env.num_enodebs() {
                            if !self.on_air[e] {
                                continue;
                            }
                            let mut best: Option<(usize, f64, f64)> = None;
                            for u in 0..self.env.num_ues() {
                                if self.ue_state[u] != UeState::Connected || self.ue_serving[u] != e
                                {
                                    continue;
                                }
                                let fade = self.env.fast_fading_db(e, u, slot, fading_sigma_db);
                                let inst = self
                                    .rate
                                    .max_rate_bps(self.sinr(u, e) * 10f64.powf(fade / 10.0));
                                let metric = inst / self.ewma_thpt[u].max(1.0);
                                if best.map_or(true, |(_, m, _)| metric > m) {
                                    best = Some((u, metric, inst));
                                }
                            }
                            // EWMA update for every attached UE; only the
                            // winner receives bits this slot.
                            for u in 0..self.env.num_ues() {
                                if self.ue_state[u] != UeState::Connected || self.ue_serving[u] != e
                                {
                                    continue;
                                }
                                let served = best.map_or(
                                    0.0,
                                    |(w, _, inst)| {
                                        if w == u {
                                            inst
                                        } else {
                                            0.0
                                        }
                                    },
                                );
                                self.delivered_bits[u] += served * dt;
                                self.window_bits[u] += served * dt;
                                self.ewma_thpt[u] =
                                    (1.0 - ewma_alpha) * self.ewma_thpt[u] + ewma_alpha * served;
                            }
                        }
                    }
                }
                self.queue.schedule(
                    now.after_millis(self.cfg.sched_quantum_ms),
                    Event::MacQuantum,
                );
            }
            Event::Measure => {
                self.measure_round += 1;
                let round = self.measure_round;
                let mut triggered = 0usize;
                for u in 0..self.env.num_ues() {
                    if self.ue_state[u] != UeState::Connected {
                        continue;
                    }
                    let serving = self.ue_serving[u];
                    if !self.on_air[serving] {
                        continue; // MacQuantum handles RLF
                    }
                    let Some(best) = self.best_cell(u) else {
                        continue;
                    };
                    if best == serving {
                        continue;
                    }
                    let gain = self.env.rx_power(best, u, self.atten[best]).0
                        - self.env.rx_power(serving, u, self.atten[serving]).0;
                    if gain > self.cfg.a3_hysteresis_db {
                        // A lost measurement report needs no recovery
                        // machinery: the UE measures again next period,
                        // so the handover is deferred, never dropped.
                        // Keyed per (ue, round) — each report is its own
                        // fault site.
                        if magus_fault::injects(
                            magus_fault::FaultPoint::SimEventDrop,
                            magus_fault::site_key(u as u64, round, 1),
                            0,
                        ) {
                            self.stats.dropped_reports += 1;
                            magus_obs::counter_inc!("sim.fault.report_dropped");
                            continue;
                        }
                        self.ue_state[u] = UeState::HandingOver { target: best };
                        if self.cfg.x2_available {
                            self.enqueue_mme(MmeJob::PathSwitch {
                                ue: u,
                                target: best,
                            });
                        } else {
                            self.enqueue_mme(MmeJob::S1Relay {
                                ue: u,
                                target: best,
                            });
                        }
                        triggered += 1;
                    }
                }
                self.stats.max_simultaneous = self.stats.max_simultaneous.max(triggered);
                self.queue.schedule(
                    now.after_millis(self.cfg.measurement_period_ms),
                    Event::Measure,
                );
            }
            Event::RlfExpired { ue } => {
                if self.ue_state[ue] != UeState::RadioLinkFailure {
                    return;
                }
                match self.best_cell(ue) {
                    Some(target) => {
                        self.ue_state[ue] = UeState::Reattaching { target };
                        self.enqueue_mme(MmeJob::Attach { ue, target });
                    }
                    None => {
                        // No cell anywhere: retry detection later.
                        self.queue.schedule(
                            now.after_millis(self.cfg.rlf_detection_ms),
                            Event::RlfExpired { ue },
                        );
                    }
                }
            }
            Event::MmeDone => {
                let queued = self.mme_queue.pop_front().expect("MME busy with no job");
                self.stats.mme_jobs += 1;
                self.stats.mme_busy_ms += self.cfg.mme_service_time_ms;
                if self.mme_job_dropped(now, queued) {
                    // Outbound message lost; the MME still spent its
                    // service time. Fall through to schedule the next job.
                } else {
                    match queued.job {
                        MmeJob::S1Relay { ue, target } => {
                            // The relay leg done; the path switch (second
                            // S1 message) now queues like any other job.
                            self.enqueue_mme(MmeJob::PathSwitch { ue, target });
                        }
                        MmeJob::PathSwitch { ue, target } => {
                            let interruption = if self.cfg.x2_available {
                                self.cfg.seamless_interruption_ms
                            } else {
                                self.cfg.seamless_interruption_ms
                                    + self.cfg.s1_extra_interruption_ms
                            };
                            self.queue.schedule(
                                now.after_millis(interruption),
                                Event::HandoverFinish {
                                    ue,
                                    target,
                                    seamless: true,
                                },
                            );
                        }
                        MmeJob::Attach { ue, target } => {
                            self.queue.schedule(
                                now.after_millis(self.cfg.reattach_time_ms),
                                Event::HandoverFinish {
                                    ue,
                                    target,
                                    seamless: false,
                                },
                            );
                        }
                    }
                }
                if self.mme_queue.is_empty() {
                    self.mme_busy = false;
                } else {
                    self.queue.schedule(
                        now.after_millis(self.cfg.mme_service_time_ms),
                        Event::MmeDone,
                    );
                }
            }
            Event::HandoverFinish {
                ue,
                target,
                seamless,
            } => {
                self.ue_serving[ue] = target;
                self.ue_state[ue] = UeState::Connected;
                if seamless {
                    self.stats.seamless += 1;
                    magus_obs::counter_inc!("sim.handover.seamless");
                } else {
                    self.stats.hard += 1;
                    magus_obs::counter_inc!("sim.handover.hard");
                }
            }
            Event::Apply { index } => {
                let (_, op) = self.timeline[index];
                match op {
                    ChangeOp::SetAttenuation(EnodebId(e), l) => self.atten[e] = l,
                    ChangeOp::SetOnAir(EnodebId(e), v) => self.on_air[e] = v,
                }
            }
            Event::WindowClose => {
                let dt = self.cfg.window_ms as f64 / 1_000.0;
                let rates: Vec<f64> = self.window_bits.iter().map(|&b| b / dt / 1e6).collect();
                let utility = rates.iter().filter(|&&r| r > 0.0).map(|&r| r.log10()).sum();
                magus_obs::trace_event!("sim.window",
                    "t_secs" => now.as_secs_f64(),
                    "utility" => utility,
                    "events" => self.events_dispatched,
                    "mme_queue" => self.mme_queue.len(),
                    "seamless" => self.stats.seamless,
                    "hard" => self.stats.hard,
                );
                self.windows.push(WindowSample {
                    t_secs: now.as_secs_f64(),
                    utility,
                    rates_mbps: rates,
                });
                self.window_bits.iter_mut().for_each(|b| *b = 0.0);
                self.queue
                    .schedule(now.after_millis(self.cfg.window_ms), Event::WindowClose);
            }
        }
    }

    /// Deterministic waypoint for (ue, seq) inside the mobility box.
    fn waypoint_for(
        &self,
        u: usize,
        seq: u64,
        min_x: f64,
        min_y: f64,
        max_x: f64,
        max_y: f64,
    ) -> magus_geo::PointM {
        let mut z = (u as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seq.rotate_left(17);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 27;
        let fx = (z >> 11) as f64 / (1u64 << 53) as f64;
        let fy = ((z.wrapping_mul(0x94D049BB133111EB)) >> 11) as f64 / (1u64 << 53) as f64;
        magus_geo::PointM::new(min_x + fx * (max_x - min_x), min_y + fy * (max_y - min_y))
    }

    /// Advances UE positions by one quantum under the mobility model.
    fn step_mobility(&mut self, dt: f64) {
        let Mobility::Waypoint {
            speed_mps,
            min_x,
            min_y,
            max_x,
            max_y,
        } = self.cfg.mobility
        else {
            return;
        };
        for u in 0..self.env.num_ues() {
            let pos = self.env.ue_position(u);
            let mut target = self.waypoints[u];
            if self.waypoint_seq[u] == 0 || pos.distance(target) < speed_mps * dt {
                self.waypoint_seq[u] += 1;
                target = self.waypoint_for(u, self.waypoint_seq[u], min_x, min_y, max_x, max_y);
                self.waypoints[u] = target;
            }
            let d = pos.distance(target).max(1e-9);
            let step = (speed_mps * dt).min(d);
            let next = magus_geo::PointM::new(
                pos.x + (target.x - pos.x) / d * step,
                pos.y + (target.y - pos.y) / d * step,
            );
            self.env.set_ue_position(u, next);
        }
    }

    fn report(self) -> SimReport {
        let secs = self.end.as_secs_f64();
        let mean_rates_mbps: Vec<f64> = self
            .delivered_bits
            .iter()
            .map(|&b| b / secs / 1e6)
            .collect();
        let utility = mean_rates_mbps
            .iter()
            .filter(|&&r| r > 0.0)
            .map(|&r| r.log10())
            .sum();
        SimReport {
            mean_rates_mbps,
            utility,
            handovers: self.stats,
            windows: self.windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::PointM;

    fn env2() -> RadioEnvironment {
        RadioEnvironment::new(
            vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
            vec![
                PointM::new(5.0, 2.0),
                PointM::new(33.0, 1.0),
                PointM::new(44.0, -2.0),
            ],
            11,
        )
    }

    fn quiet() -> Vec<AttenuationLevel> {
        vec![AttenuationLevel(10), AttenuationLevel(10)]
    }

    #[test]
    fn ues_attach_to_strongest_and_receive_data() {
        let sim = Sim::new(env2(), quiet(), SimConfig::default(), vec![]);
        let report = sim.run(SimTime::from_secs(2));
        assert!(report.mean_rates_mbps.iter().all(|&r| r > 0.0));
        assert!(report.utility > 0.0);
        assert_eq!(report.handovers.hard, 0);
    }

    #[test]
    fn outage_without_tuning_degrades_utility() {
        let baseline =
            Sim::new(env2(), quiet(), SimConfig::default(), vec![]).run(SimTime::from_secs(4));
        let outage_timeline = vec![(
            SimTime::from_secs(1),
            ChangeOp::SetOnAir(EnodebId(1), false),
        )];
        let outage = Sim::new(env2(), quiet(), SimConfig::default(), outage_timeline)
            .run(SimTime::from_secs(4));
        assert!(
            outage.utility < baseline.utility,
            "outage {} !< baseline {}",
            outage.utility,
            baseline.utility
        );
        // The orphaned UEs re-attached the hard way.
        assert!(outage.handovers.hard >= 1);
    }

    #[test]
    fn rlf_ues_eventually_reconnect() {
        let timeline = vec![(
            SimTime::from_secs(1),
            ChangeOp::SetOnAir(EnodebId(1), false),
        )];
        let report =
            Sim::new(env2(), quiet(), SimConfig::default(), timeline).run(SimTime::from_secs(4));
        // After re-attach, the last window should show data for all UEs
        // (eNodeB 0 covers the floor once it's the only cell).
        let last = report.windows.last().expect("windows recorded");
        assert!(last.rates_mbps.iter().all(|&r| r > 0.0), "{last:?}");
    }

    #[test]
    fn power_tuning_triggers_seamless_handover() {
        // Crank eNodeB 0 and mute eNodeB 1: UEs near the boundary should
        // hand over seamlessly (both cells stay on-air).
        let timeline = vec![
            (
                SimTime::from_secs(1),
                ChangeOp::SetAttenuation(EnodebId(0), AttenuationLevel(1)),
            ),
            (
                SimTime::from_secs(1),
                ChangeOp::SetAttenuation(EnodebId(1), AttenuationLevel(30)),
            ),
        ];
        let report =
            Sim::new(env2(), quiet(), SimConfig::default(), timeline).run(SimTime::from_secs(4));
        assert!(
            report.handovers.seamless >= 1,
            "expected seamless handovers, got {:?}",
            report.handovers
        );
        assert_eq!(report.handovers.hard, 0);
    }

    #[test]
    fn windows_cover_the_run() {
        let report =
            Sim::new(env2(), quiet(), SimConfig::default(), vec![]).run(SimTime::from_secs(2));
        // 2 s / 500 ms = 4 windows.
        assert_eq!(report.windows.len(), 4);
        assert!(report.windows[0].t_secs < report.windows[3].t_secs);
    }

    #[test]
    fn determinism() {
        let run = || {
            Sim::new(env2(), quiet(), SimConfig::default(), vec![])
                .run(SimTime::from_secs(2))
                .mean_rates_mbps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn proportional_fair_beats_equal_share_on_sum_rate_with_fading() {
        // With multi-user diversity, PF's sum throughput should not be
        // materially worse than equal share, and its allocations remain
        // work-conserving (all rates positive).
        let mut cfg = SimConfig::default();
        cfg.scheduler = Scheduler::ProportionalFair {
            ewma_alpha: 0.1,
            fading_sigma_db: 4.0,
        };
        let pf = Sim::new(env2(), quiet(), cfg, vec![]).run(SimTime::from_secs(5));
        let eq = Sim::new(env2(), quiet(), SimConfig::default(), vec![]).run(SimTime::from_secs(5));
        assert!(pf.mean_rates_mbps.iter().all(|&r| r > 0.0), "{pf:?}");
        let sum = |r: &SimReport| r.mean_rates_mbps.iter().sum::<f64>();
        assert!(
            sum(&pf) > sum(&eq) * 0.8,
            "PF sum rate {} vs equal-share {}",
            sum(&pf),
            sum(&eq)
        );
    }

    #[test]
    fn mobility_triggers_handovers_without_config_changes() {
        let mut cfg = SimConfig::default();
        cfg.mobility = Mobility::Waypoint {
            speed_mps: 8.0,
            min_x: -5.0,
            min_y: -5.0,
            max_x: 50.0,
            max_y: 10.0,
        };
        let report = Sim::new(env2(), quiet(), cfg, vec![]).run(SimTime::from_secs(30));
        assert!(
            report.handovers.seamless >= 1,
            "walking UEs should hand over: {:?}",
            report.handovers
        );
        assert_eq!(report.handovers.hard, 0);
    }

    #[test]
    fn mobility_is_deterministic() {
        let mut cfg = SimConfig::default();
        cfg.mobility = Mobility::Waypoint {
            speed_mps: 5.0,
            min_x: 0.0,
            min_y: 0.0,
            max_x: 45.0,
            max_y: 8.0,
        };
        let run = || {
            Sim::new(env2(), quiet(), cfg, vec![])
                .run(SimTime::from_secs(10))
                .mean_rates_mbps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn s1_handovers_double_the_mme_load() {
        let timeline = vec![
            (
                SimTime::from_secs(1),
                ChangeOp::SetAttenuation(EnodebId(0), AttenuationLevel(1)),
            ),
            (
                SimTime::from_secs(1),
                ChangeOp::SetAttenuation(EnodebId(1), AttenuationLevel(30)),
            ),
        ];
        let x2 = Sim::new(env2(), quiet(), SimConfig::default(), timeline.clone())
            .run(SimTime::from_secs(4));
        let mut cfg = SimConfig::default();
        cfg.x2_available = false;
        let s1 = Sim::new(env2(), quiet(), cfg, timeline).run(SimTime::from_secs(4));
        assert_eq!(
            x2.handovers.seamless, s1.handovers.seamless,
            "same radio events either way"
        );
        if x2.handovers.seamless > 0 {
            assert!(
                s1.handovers.mme_jobs > x2.handovers.mme_jobs,
                "S1 relaying must cost extra MME work: {} vs {}",
                s1.handovers.mme_jobs,
                x2.handovers.mme_jobs
            );
        }
    }

    #[test]
    fn mme_utilization_is_accounted() {
        let timeline = vec![(
            SimTime::from_secs(1),
            ChangeOp::SetOnAir(EnodebId(1), false),
        )];
        let report =
            Sim::new(env2(), quiet(), SimConfig::default(), timeline).run(SimTime::from_secs(4));
        assert_eq!(
            report.handovers.mme_busy_ms,
            report.handovers.mme_jobs as u64 * SimConfig::default().mme_service_time_ms
        );
        assert!(report.handovers.mme_jobs >= report.handovers.hard);
    }

    #[test]
    fn mme_queue_depth_grows_with_synchronized_handovers() {
        // Many UEs on eNodeB 1; killing it floods the MME with attaches.
        let many_ues: Vec<PointM> = (0..12)
            .map(|i| PointM::new(38.0 + (i % 4) as f64 * 2.0, (i / 4) as f64 * 2.0))
            .collect();
        let env = RadioEnvironment::new(
            vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
            many_ues,
            5,
        );
        let timeline = vec![(
            SimTime::from_secs(1),
            ChangeOp::SetOnAir(EnodebId(1), false),
        )];
        let report =
            Sim::new(env, quiet(), SimConfig::default(), timeline).run(SimTime::from_secs(4));
        assert!(
            report.handovers.max_mme_queue >= 6,
            "synchronized storm should pile up at the MME: {:?}",
            report.handovers
        );
    }
}
