//! Event-drop fault injection in the testbed simulator. These tests
//! install non-zero-rate fault plans; the plan is process-global, so
//! they run in their own integration-test binary where no unguarded
//! `Sim` tests share the process. [`magus_fault::test_guard`]
//! serializes them against each other within this binary.

use magus_fault::{FaultPlan, FaultRates, PlanGuard};
use magus_geo::PointM;
use magus_testbed::sim::ChangeOp;
use magus_testbed::{AttenuationLevel, EnodebId, RadioEnvironment, Sim, SimConfig, SimTime};

fn env2() -> RadioEnvironment {
    RadioEnvironment::new(
        vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
        vec![
            PointM::new(5.0, 2.0),
            PointM::new(33.0, 1.0),
            PointM::new(44.0, -2.0),
        ],
        11,
    )
}

fn quiet() -> Vec<AttenuationLevel> {
    vec![AttenuationLevel(10), AttenuationLevel(10)]
}

/// Timeline that drives both seamless handovers (power retune) and
/// hard re-attaches (cell off-air) — exercises every MME job kind.
fn churn_timeline() -> Vec<(SimTime, ChangeOp)> {
    vec![
        (
            SimTime::from_secs(1),
            ChangeOp::SetAttenuation(EnodebId(0), AttenuationLevel(1)),
        ),
        (
            SimTime::from_secs(1),
            ChangeOp::SetAttenuation(EnodebId(1), AttenuationLevel(30)),
        ),
        (
            SimTime::from_secs(2),
            ChangeOp::SetOnAir(EnodebId(1), false),
        ),
    ]
}

#[test]
fn event_drops_defer_but_never_strand_ues() {
    let _serial = magus_fault::test_guard();
    let plan = FaultPlan::new(
        9,
        FaultRates {
            sim: 0.5,
            ..FaultRates::ZERO
        },
    )
    .with_permanent(0.2);
    let _guard = PlanGuard::install(std::sync::Arc::new(plan));
    let report = Sim::new(env2(), quiet(), SimConfig::default(), churn_timeline())
        .run(SimTime::from_secs(6));
    let dropped = report.handovers.dropped_reports + report.handovers.dropped_signaling;
    assert!(
        dropped > 0,
        "rate 0.5 must drop something: {:?}",
        report.handovers
    );
    // Recovery contract: every UE ends the run attached with data
    // flowing, despite lost reports and abandoned procedures.
    let last = report.windows.last().expect("windows recorded");
    assert!(
        last.rates_mbps.iter().all(|&r| r > 0.0),
        "a UE was stranded: {last:?} ({:?})",
        report.handovers
    );
}

#[test]
fn zero_rate_plan_is_identical_to_no_plan() {
    let _serial = magus_fault::test_guard();
    let baseline = Sim::new(env2(), quiet(), SimConfig::default(), churn_timeline())
        .run(SimTime::from_secs(4));
    let _guard = PlanGuard::install(std::sync::Arc::new(FaultPlan::zero(7)));
    let faultless = Sim::new(env2(), quiet(), SimConfig::default(), churn_timeline())
        .run(SimTime::from_secs(4));
    assert_eq!(baseline.mean_rates_mbps, faultless.mean_rates_mbps);
    assert_eq!(baseline.handovers, faultless.handovers);
}

#[test]
fn dropped_signaling_is_deterministic() {
    let _serial = magus_fault::test_guard();
    let run = || {
        let plan = FaultPlan::new(
            21,
            FaultRates {
                sim: 0.4,
                ..FaultRates::ZERO
            },
        );
        let _guard = PlanGuard::install(std::sync::Arc::new(plan));
        Sim::new(env2(), quiet(), SimConfig::default(), churn_timeline()).run(SimTime::from_secs(5))
    };
    let a = run();
    let b = run();
    assert_eq!(a.handovers, b.handovers);
    assert_eq!(a.mean_rates_mbps, b.mean_rates_mbps);
}
