//! Property-based tests of the discrete-event testbed.

use magus_geo::PointM;
use magus_testbed::sim::{ChangeOp, Sim, SimConfig};
use magus_testbed::{AttenuationLevel, EnodebId, EventQueue, RadioEnvironment, SimTime};
use proptest::prelude::*;

fn env(seed: u64) -> RadioEnvironment {
    RadioEnvironment::new(
        vec![PointM::new(0.0, 0.0), PointM::new(40.0, 0.0)],
        vec![
            PointM::new(5.0, 2.0),
            PointM::new(20.0, -3.0),
            PointM::new(36.0, 1.0),
        ],
        seed,
    )
}

proptest! {
    /// The event queue pops any schedule in time order, FIFO within ties.
    #[test]
    fn queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..60)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Any attenuation timeline leaves the simulation consistent: rates
    /// non-negative, handover counters coherent, windows complete.
    #[test]
    fn sim_is_total_under_random_attenuation_timelines(
        seed in 0u64..50,
        changes in prop::collection::vec((1u64..4000, 0usize..2, 1u8..=30), 0..8),
    ) {
        let mut timeline: Vec<(SimTime, ChangeOp)> = changes
            .into_iter()
            .map(|(ms, e, l)| {
                (
                    SimTime::from_millis(ms),
                    ChangeOp::SetAttenuation(EnodebId(e), AttenuationLevel::new(l)),
                )
            })
            .collect();
        timeline.sort_by_key(|(t, _)| *t);
        let report = Sim::new(
            env(seed),
            vec![AttenuationLevel(10), AttenuationLevel(10)],
            SimConfig::default(),
            timeline,
        )
        .run(SimTime::from_secs(5));
        prop_assert!(report.mean_rates_mbps.iter().all(|r| r.is_finite() && *r >= 0.0));
        prop_assert_eq!(report.windows.len(), 10); // 5 s / 500 ms
        prop_assert!(report.handovers.max_mme_queue >= report.handovers.hard.min(1));
    }

    /// Runs are bit-for-bit deterministic for any seed and timeline.
    #[test]
    fn sim_deterministic(seed in 0u64..50, outage_ms in 500u64..3_000) {
        let timeline = vec![(
            SimTime::from_millis(outage_ms),
            ChangeOp::SetOnAir(EnodebId(1), false),
        )];
        let run = || {
            Sim::new(
                env(seed),
                vec![AttenuationLevel(8), AttenuationLevel(8)],
                SimConfig::default(),
                timeline.clone(),
            )
            .run(SimTime::from_secs(4))
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.mean_rates_mbps, b.mean_rates_mbps);
        prop_assert_eq!(a.handovers, b.handovers);
    }

    /// Traffic accounting is conserved: the whole-run mean rates equal
    /// the sum of the per-window traffic (same increments, two ledgers).
    #[test]
    fn window_traffic_conserves_totals(seed in 0u64..30, outage_ms in 500u64..3_500) {
        let secs = 4.0;
        let report = Sim::new(
            env(seed),
            vec![AttenuationLevel(10), AttenuationLevel(10)],
            SimConfig::default(),
            vec![(SimTime::from_millis(outage_ms), ChangeOp::SetOnAir(EnodebId(1), false))],
        )
        .run(SimTime::from_secs(4));
        let window_dt = SimConfig::default().window_ms as f64 / 1_000.0;
        for u in 0..3 {
            let from_windows: f64 = report
                .windows
                .iter()
                .map(|w| w.rates_mbps[u] * window_dt)
                .sum();
            let from_totals = report.mean_rates_mbps[u] * secs;
            prop_assert!(
                (from_windows - from_totals).abs() < 1e-6 * from_totals.max(1.0),
                "UE {u}: windows {from_windows} vs totals {from_totals}"
            );
        }
    }
}
