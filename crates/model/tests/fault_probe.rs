//! Probe/undo exactness under *degraded store reads*: with a non-zero
//! `StoreRead` fault rate installed, the evaluator's state-mutating
//! paths occasionally fall back to a sector's nominal-tilt
//! last-known-good matrix and raise the state's `degraded` flag. The
//! probe fast path must stay bit-exact through all of that — the undo
//! record snapshots the flag and every touched field, so a probe cycle
//! leaves no residue even when the apply half degraded mid-flight.
//!
//! These tests install non-zero-rate fault plans, and the plan is
//! process-global. They live in their own integration-test binary — not
//! in the library test module — so a plan installed here can never leak
//! into the unguarded tests in the library binary. Within this binary,
//! [`magus_fault::test_guard`] serializes the tests against each other.

use magus_fault::{FaultPlan, FaultRates, PlanGuard};
use magus_geo::units::thermal_noise;
use magus_geo::{Bearing, Db, GridSpec, PointM};
use magus_lte::{Bandwidth, RateMapper};
use magus_model::{Evaluator, UtilityKind};
use magus_net::{BsId, ConfigChange, Configuration, Network, Sector, SectorId, UeLayer};
use magus_propagation::{
    AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
};
use magus_terrain::Terrain;
use std::sync::Arc;

fn fixture() -> (Evaluator, Configuration) {
    let spec = GridSpec::centered(PointM::new(0.0, 0.0), 250.0, 8_000.0);
    let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
    let mk = |id: u32, x: f64, y: f64, az: f64| {
        Sector::macro_defaults(
            SectorId(id),
            BsId(id),
            SectorSite {
                position: PointM::new(x, y),
                height_m: 30.0,
                azimuth: Bearing::new(az),
                antenna: AntennaParams::default(),
            },
        )
    };
    let network = Arc::new(Network::new(vec![
        mk(0, -2_000.0, 0.0, 90.0),
        mk(1, 2_000.0, 0.0, 270.0),
        mk(2, 0.0, 2_000.0, 180.0),
    ]));
    let store = Arc::new(PathLossStore::build(
        spec,
        network.sites(),
        &model,
        TiltSettings::default(),
        10_000.0,
    ));
    let noise = thermal_noise(Bandwidth::Mhz10.hz(), Db(7.0));
    let ue = UeLayer::constant(spec, 1.0);
    let nominal = Configuration::nominal(&network);
    (
        Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
        nominal,
    )
}

fn store_faults(rate: f64) -> FaultRates {
    FaultRates {
        store: rate,
        ..FaultRates::ZERO
    }
}

/// The change mix probed below: tilt changes and on-air toggles force
/// matrix reads (the faultable operation); power deltas ride along.
fn changes() -> Vec<ConfigChange> {
    vec![
        ConfigChange::SetTilt(SectorId(0), 3),
        ConfigChange::PowerDelta(SectorId(1), Db(-4.0)),
        ConfigChange::SetOnAir(SectorId(2), false),
        ConfigChange::SetTilt(SectorId(1), 1),
        ConfigChange::SetOnAir(SectorId(2), true),
        ConfigChange::PowerDelta(SectorId(0), Db(25.0)), // clamped
    ]
}

#[test]
fn probe_is_bit_pure_under_degraded_store_reads() {
    let _serial = magus_fault::test_guard();
    let _plan = PlanGuard::install(Arc::new(FaultPlan::new(0xBEEF, store_faults(0.4))));
    let (ev, config) = fixture();
    let mut st = ev.initial_state(&config);
    // With a 40% read-fault rate the retry budget is routinely
    // exhausted, so the build above almost surely degraded already —
    // and if not, some probe below will. Either way: bit-purity.
    for round in 0..8 {
        for ch in changes() {
            let fp = st.bit_fingerprint();
            let _ = ev.probe_utility(&mut st, ch, UtilityKind::Performance);
            assert_eq!(
                st.bit_fingerprint(),
                fp,
                "probe of {ch:?} left residue in round {round}"
            );
        }
    }
}

#[test]
fn undo_restores_degraded_flag_exactly() {
    let _serial = magus_fault::test_guard();
    let _plan = PlanGuard::install(Arc::new(FaultPlan::new(0xD00D, store_faults(0.6))));
    let (ev, config) = fixture();
    let mut st = ev.initial_state(&config);
    let reference_fp = st.bit_fingerprint();
    let was_degraded = st.is_degraded();
    // Committed applies may flip the state degraded at any point; a
    // full unwind must restore the flag's exact history, not just the
    // final value.
    let mut undos = Vec::new();
    for ch in changes() {
        undos.push(ev.apply(&mut st, ch));
    }
    for u in undos.into_iter().rev() {
        ev.undo(&mut st, u);
    }
    assert_eq!(st.is_degraded(), was_degraded);
    assert_eq!(st.bit_fingerprint(), reference_fp);
}

#[test]
fn degraded_states_stay_structurally_valid() {
    let _serial = magus_fault::test_guard();
    // A fallback needs `retry_limit + 1` consecutive injections on one
    // key, so only a high rate makes it near-certain across this
    // fixture's handful of (sector, tilt) keys.
    let _plan = PlanGuard::install(Arc::new(FaultPlan::new(0xCAFE, store_faults(0.9))));
    let (ev, config) = fixture();
    let mut st = ev.initial_state(&config);
    for ch in changes() {
        ev.apply(&mut st, ch);
        magus_model::invariant::validate_state(&st, st.num_grids(), st.num_sectors())
            .unwrap_or_else(|e| panic!("after {ch:?}: {e}"));
    }
    // Sanity: with these seeds/rates the fallback path genuinely fired.
    assert!(st.is_degraded(), "fixture never exercised the fallback");
}

#[test]
fn zero_rate_plan_is_identity_for_probes() {
    let _serial = magus_fault::test_guard();
    let (ev, config) = fixture();
    let baseline: Vec<u64> = {
        let mut st = ev.initial_state(&config);
        changes()
            .into_iter()
            .map(|ch| {
                ev.probe_utility(&mut st, ch, UtilityKind::Performance)
                    .to_bits()
            })
            .collect()
    };
    let _plan = PlanGuard::install(Arc::new(FaultPlan::zero(0x5EED)));
    let mut st = ev.initial_state(&config);
    let probed: Vec<u64> = changes()
        .into_iter()
        .map(|ch| {
            ev.probe_utility(&mut st, ch, UtilityKind::Performance)
                .to_bits()
        })
        .collect();
    assert_eq!(probed, baseline, "zero-rate plan perturbed probe results");
}
