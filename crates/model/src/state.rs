//! Mutable evaluation state and exact undo records.

use crate::utility::UtilityKind;
use magus_net::{Configuration, SectorConfig, SectorId};

/// Sentinel for "no serving sector".
pub(crate) const NO_SECTOR: i32 = -1;

/// Sentinel for a *second-best* entry the incremental sweep could not
/// maintain cheaply (e.g. the runner-up was just promoted to best, so
/// the new runner-up is some unscanned third sector). An unknown entry
/// is a stale hint, never an answer: any path that needs the second
/// server must fall back to a full covering-sector rescan. `best_idx`
/// never holds this value — the best server is always exact.
pub(crate) const UNKNOWN_SECTOR: i32 = -2;

/// The incremental evaluation state of one configuration.
///
/// Produced by [`crate::Evaluator::initial_state`] and mutated only
/// through [`crate::Evaluator::apply`] / [`crate::Evaluator::undo`], which
/// keep every field consistent.
#[derive(Debug, Clone)]
pub struct ModelState {
    /// The configuration this state describes.
    pub(crate) config: Configuration,
    /// Per grid: total received power from all on-air sectors, linear mW.
    pub(crate) total_mw: Vec<f64>,
    /// Per grid: serving sector id, or [`NO_SECTOR`].
    pub(crate) best_idx: Vec<i32>,
    /// Per grid: serving sector's received power, dBm.
    pub(crate) best_rp: Vec<f32>,
    /// Per grid: second-best server id, [`NO_SECTOR`] when no other
    /// sector is audible, or [`UNKNOWN_SECTOR`] when the hint is stale.
    pub(crate) best2_idx: Vec<i32>,
    /// Per grid: second-best server's received power, dBm
    /// (`NEG_INFINITY` when `best2_idx` holds a sentinel).
    pub(crate) best2_rp: Vec<f32>,
    /// Per grid: cached maximum rate `r_max(g)` in bits/s (0 = out of
    /// service).
    pub(crate) rmax: Vec<f32>,
    /// Per sector: in-service UE mass `N_s` (Formula 3 summed over the
    /// sector's served, in-service grids).
    pub(crate) n_s: Vec<f64>,
    /// Per sector: `A_s = Σ UE(g)·log10(r_max(g))` over served,
    /// in-service grids.
    pub(crate) a_s: Vec<f64>,
    /// `true` once any field was derived from a last-known-good
    /// path-loss matrix (a store read failed past its retry budget and
    /// the evaluator fell back; see
    /// [`magus_propagation::PathLossStore::matrix_faulted`]). Degraded
    /// states are still finite and usable — the flag marks reduced
    /// fidelity, not corruption.
    pub(crate) degraded: bool,
    /// Incrementally maintained utility sums over `n_s`/`a_s` (see
    /// [`UtilityAgg`]): derived data, excluded from
    /// [`ModelState::bit_fingerprint`]. The evaluator refreshes the
    /// touched leaves after every sweep and undo, making
    /// [`ModelState::utility`] O(1) instead of O(#sectors) — the read
    /// that used to rescan every sector on every probe.
    pub(crate) agg: UtilityAgg,
}

/// The performance-utility contribution of one sector: `A_s − N_s·log10
/// (N_s)` for a loaded sector, `0` otherwise — the per-sector term of
/// the paper's Formula 5 sum.
#[inline]
pub(crate) fn perf_term(n: f64, a: f64) -> f64 {
    if n > 0.0 {
        a - n * n.log10()
    } else {
        0.0
    }
}

/// Fixed-shape binary sum trees over the per-sector utility terms.
///
/// Two segment-tree-layout arrays (`2 · n_pad` slots, root at index 1,
/// leaves at `n_pad ..`, `n_pad` the next power of two ≥ #sectors, pad
/// leaves 0.0): one summing coverage terms (`n_s[s]`), one summing
/// performance terms ([`perf_term`]). Every internal node is exactly the
/// sum of its two children, so updating a leaf and re-summing its
/// root path yields the same bits as rebuilding the whole tree from the
/// same aggregates — the shape is fixed, so the float accumulation
/// order is too. That makes the incremental O(k·log n) refresh
/// bit-identical to the O(n) rebuild by construction, which
/// [`ModelState::utility`] asserts in debug builds.
///
/// Note the contract is *tree vs tree from the same `n_s`/`a_s`*: the
/// root is not bit-identical to the historical linear left-to-right
/// sum, and incremental `n_s`/`a_s` themselves differ from a fresh
/// rebuild's at ulp scale (the long-standing 1e-6 tolerance in the
/// rebuild-consistency tests). Determinism holds because every code
/// path — any thread count, probe or commit — reads the same tree.
#[derive(Debug, Clone, Default)]
pub(crate) struct UtilityAgg {
    n_pad: usize,
    cov: Vec<f64>,
    perf: Vec<f64>,
}

impl UtilityAgg {
    /// Rebuilds both trees from scratch (initial-state path).
    pub(crate) fn rebuild(&mut self, n_s: &[f64], a_s: &[f64]) {
        let n = n_s.len();
        let n_pad = n.next_power_of_two().max(1);
        self.n_pad = n_pad;
        self.cov.clear();
        self.cov.resize(2 * n_pad, 0.0);
        self.perf.clear();
        self.perf.resize(2 * n_pad, 0.0);
        for s in 0..n {
            self.cov[n_pad + s] = n_s[s];
            self.perf[n_pad + s] = perf_term(n_s[s], a_s[s]);
        }
        for i in (1..n_pad).rev() {
            self.cov[i] = self.cov[2 * i] + self.cov[2 * i + 1];
            self.perf[i] = self.perf[2 * i] + self.perf[2 * i + 1];
        }
    }

    /// Recomputes sector `s`'s leaves from the aggregates and re-sums
    /// the path to the root — O(log n). Refreshing a set of leaves in
    /// any order leaves both trees in the unique state determined by
    /// the current aggregates.
    pub(crate) fn update(&mut self, s: usize, n_s: &[f64], a_s: &[f64]) {
        debug_assert!(s < self.n_pad, "utility tree smaller than sector set");
        let mut i = self.n_pad + s;
        self.cov[i] = n_s[s];
        self.perf[i] = perf_term(n_s[s], a_s[s]);
        while i > 1 {
            i /= 2;
            self.cov[i] = self.cov[2 * i] + self.cov[2 * i + 1];
            self.perf[i] = self.perf[2 * i] + self.perf[2 * i + 1];
        }
    }

    /// The coverage-utility sum (tree root).
    pub(crate) fn coverage(&self) -> f64 {
        self.cov.get(1).copied().unwrap_or(0.0)
    }

    /// The performance-utility sum (tree root).
    pub(crate) fn performance(&self) -> f64 {
        self.perf.get(1).copied().unwrap_or(0.0)
    }
}

/// Exact rollback data for one applied change.
///
/// Sparse: a change touches one sector and the grids in its footprint
/// window, so the record holds the changed sector's prior config, a
/// snapshot per touched grid, and the prior aggregate entries of the
/// sectors the sweep actually adjusted — not a clone of the full
/// configuration and per-sector vectors. `Default` yields an empty
/// record; the probe fast path keeps one per thread and refills it in
/// place, so a probe cycle allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct Undo {
    /// Changed sector and its configuration before the change (`None`
    /// only in an empty/cleared record).
    pub(crate) sector: Option<(SectorId, SectorConfig)>,
    /// Per touched grid: every per-grid field before the change.
    pub(crate) cells: Vec<UndoCell>,
    /// `(sector, N_s, A_s)` before the change, one entry per sector
    /// whose aggregates the sweep touched.
    pub(crate) sectors: Vec<(u32, f64, f64)>,
    /// Staleness flag before the change, restored on undo so probe
    /// apply/undo pairs leave the flag exactly as they found it.
    pub(crate) degraded: bool,
}

/// One grid's pre-change snapshot inside an [`Undo`] record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UndoCell {
    pub(crate) i: u32,
    pub(crate) total_mw: f64,
    pub(crate) best_idx: i32,
    pub(crate) best_rp: f32,
    pub(crate) best2_idx: i32,
    pub(crate) best2_rp: f32,
    pub(crate) rmax: f32,
}

impl Undo {
    /// Empties the record for reuse, keeping the buffers' capacity.
    pub(crate) fn clear(&mut self) {
        self.sector = None;
        self.cells.clear();
        self.sectors.clear();
        self.degraded = false;
    }

    /// Number of grid cells this record touches.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

impl ModelState {
    /// The configuration this state evaluates.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Whether any field was derived from a last-known-good (stale)
    /// path-loss matrix after a failed store read.
    #[inline]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Serving sector of grid `i` (raster linear index).
    #[inline]
    pub fn serving(&self, i: usize) -> Option<u32> {
        let b = self.best_idx[i];
        (b != NO_SECTOR).then_some(b as u32)
    }

    /// Serving sector's received power at grid `i`, dBm, if any.
    #[inline]
    pub fn best_rp_dbm(&self, i: usize) -> Option<f64> {
        (self.best_idx[i] != NO_SECTOR).then(|| self.best_rp[i] as f64)
    }

    /// Maximum rate `r_max(g)` at grid `i`, bits/s.
    #[inline]
    pub fn rmax_bps(&self, i: usize) -> f64 {
        self.rmax[i] as f64
    }

    /// Actual per-UE rate `r(g) = r_max(g)/N(g)` at grid `i`, bits/s
    /// (paper Formula 4). Zero when out of service; equals `r_max` when
    /// the serving sector carries no UE mass.
    #[inline]
    pub fn rate_bps(&self, i: usize) -> f64 {
        let b = self.best_idx[i];
        if b == NO_SECTOR || self.rmax[i] <= 0.0 {
            return 0.0;
        }
        let n = self.n_s[b as usize];
        if n > 0.0 {
            self.rmax[i] as f64 / n
        } else {
            self.rmax[i] as f64
        }
    }

    /// In-service UE mass served by sector `s` (the paper's N for that
    /// sector).
    #[inline]
    pub fn sector_load(&self, s: u32) -> f64 {
        self.n_s[s as usize]
    }

    /// The overall utility `f(U(C))` for a utility kind — an O(1) read
    /// of the maintained sum tree's root (see [`UtilityAgg`]). This is
    /// what keeps probes incremental at continental scale: a probe's
    /// utility read costs the same at 50k sectors as at 50.
    ///
    /// Debug builds cross-check the incrementally maintained root
    /// against a tree rebuilt from the current aggregates, bit for bit
    /// — the pruned-vs-unpruned identity proof.
    pub fn utility(&self, kind: UtilityKind) -> f64 {
        let v = match kind {
            UtilityKind::Coverage => self.agg.coverage(),
            UtilityKind::Performance => self.agg.performance(),
        };
        #[cfg(debug_assertions)]
        {
            let mut fresh = UtilityAgg::default();
            fresh.rebuild(&self.n_s, &self.a_s);
            let full = match kind {
                UtilityKind::Coverage => fresh.coverage(),
                UtilityKind::Performance => fresh.performance(),
            };
            assert_eq!(
                v.to_bits(),
                full.to_bits(),
                "incremental utility tree diverged from full rebuild ({kind:?}: {v} vs {full})"
            );
        }
        v
    }

    /// The *search objective* for a utility kind.
    ///
    /// Identical to [`ModelState::utility`] for the performance utility.
    /// For the coverage utility — which is piecewise-flat (it only moves
    /// when a grid crosses the service threshold) — a vanishing
    /// performance tiebreak is added so greedy searches can traverse
    /// plateaus toward configurations that eventually flip grids into
    /// service. The tiebreak weight keeps the term far below one UE of
    /// coverage, so it never overrides a genuine coverage difference;
    /// reported utilities (and the recovery ratio) always use the pure
    /// [`ModelState::utility`].
    pub fn objective(&self, kind: UtilityKind) -> f64 {
        match kind {
            UtilityKind::Performance => self.utility(UtilityKind::Performance),
            UtilityKind::Coverage => {
                self.utility(UtilityKind::Coverage) + 1e-6 * self.utility(UtilityKind::Performance)
            }
        }
    }

    /// Number of grids in the raster.
    pub fn num_grids(&self) -> usize {
        self.total_mw.len()
    }

    /// FNV-style fingerprint over every field of the state at bit
    /// resolution (configuration, per-grid accumulators, per-sector
    /// aggregates, degraded flag). Two states with equal fingerprints
    /// are — for all practical purposes — bitwise identical; the probe
    /// bench and the bitwise property tests use this to prove that
    /// probe/undo cycles restore the state exactly.
    pub fn bit_fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| h = (h ^ v).wrapping_mul(PRIME);
        for sc in self.config.sectors() {
            mix(sc.power.0.to_bits());
            mix(u64::from(sc.tilt));
            mix(u64::from(sc.on_air));
        }
        for &v in &self.total_mw {
            mix(v.to_bits());
        }
        for &v in &self.best_idx {
            mix(v as u64);
        }
        for &v in &self.best_rp {
            mix(u64::from(v.to_bits()));
        }
        for &v in &self.best2_idx {
            mix(v as u64);
        }
        for &v in &self.best2_rp {
            mix(u64::from(v.to_bits()));
        }
        for &v in &self.rmax {
            mix(u64::from(v.to_bits()));
        }
        for &v in &self.n_s {
            mix(v.to_bits());
        }
        for &v in &self.a_s {
            mix(v.to_bits());
        }
        mix(u64::from(self.degraded));
        h
    }

    /// Number of sectors tracked.
    pub fn num_sectors(&self) -> usize {
        self.n_s.len()
    }
}
