//! Mutable evaluation state and exact undo records.

use crate::utility::UtilityKind;
use magus_net::Configuration;

/// Sentinel for "no serving sector".
pub(crate) const NO_SECTOR: i32 = -1;

/// The incremental evaluation state of one configuration.
///
/// Produced by [`crate::Evaluator::initial_state`] and mutated only
/// through [`crate::Evaluator::apply`] / [`crate::Evaluator::undo`], which
/// keep every field consistent.
#[derive(Debug, Clone)]
pub struct ModelState {
    /// The configuration this state describes.
    pub(crate) config: Configuration,
    /// Per grid: total received power from all on-air sectors, linear mW.
    pub(crate) total_mw: Vec<f64>,
    /// Per grid: serving sector id, or [`NO_SECTOR`].
    pub(crate) best_idx: Vec<i32>,
    /// Per grid: serving sector's received power, dBm.
    pub(crate) best_rp: Vec<f32>,
    /// Per grid: cached maximum rate `r_max(g)` in bits/s (0 = out of
    /// service).
    pub(crate) rmax: Vec<f32>,
    /// Per sector: in-service UE mass `N_s` (Formula 3 summed over the
    /// sector's served, in-service grids).
    pub(crate) n_s: Vec<f64>,
    /// Per sector: `A_s = Σ UE(g)·log10(r_max(g))` over served,
    /// in-service grids.
    pub(crate) a_s: Vec<f64>,
    /// `true` once any field was derived from a last-known-good
    /// path-loss matrix (a store read failed past its retry budget and
    /// the evaluator fell back; see
    /// [`magus_propagation::PathLossStore::matrix_faulted`]). Degraded
    /// states are still finite and usable — the flag marks reduced
    /// fidelity, not corruption.
    pub(crate) degraded: bool,
}

/// Exact rollback data for one applied change.
#[derive(Debug)]
pub struct Undo {
    pub(crate) config: Configuration,
    /// `(grid index, total_mw, best_idx, best_rp, rmax)` before the
    /// change, for every touched grid.
    pub(crate) cells: Vec<(u32, f64, i32, f32, f32)>,
    pub(crate) n_s: Vec<f64>,
    pub(crate) a_s: Vec<f64>,
    /// Staleness flag before the change, restored on undo so probe
    /// apply/undo pairs leave the flag exactly as they found it.
    pub(crate) degraded: bool,
}

impl ModelState {
    /// The configuration this state evaluates.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Whether any field was derived from a last-known-good (stale)
    /// path-loss matrix after a failed store read.
    #[inline]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Serving sector of grid `i` (raster linear index).
    #[inline]
    pub fn serving(&self, i: usize) -> Option<u32> {
        let b = self.best_idx[i];
        (b != NO_SECTOR).then_some(b as u32)
    }

    /// Serving sector's received power at grid `i`, dBm, if any.
    #[inline]
    pub fn best_rp_dbm(&self, i: usize) -> Option<f64> {
        (self.best_idx[i] != NO_SECTOR).then(|| self.best_rp[i] as f64)
    }

    /// Maximum rate `r_max(g)` at grid `i`, bits/s.
    #[inline]
    pub fn rmax_bps(&self, i: usize) -> f64 {
        self.rmax[i] as f64
    }

    /// Actual per-UE rate `r(g) = r_max(g)/N(g)` at grid `i`, bits/s
    /// (paper Formula 4). Zero when out of service; equals `r_max` when
    /// the serving sector carries no UE mass.
    #[inline]
    pub fn rate_bps(&self, i: usize) -> f64 {
        let b = self.best_idx[i];
        if b == NO_SECTOR || self.rmax[i] <= 0.0 {
            return 0.0;
        }
        let n = self.n_s[b as usize];
        if n > 0.0 {
            self.rmax[i] as f64 / n
        } else {
            self.rmax[i] as f64
        }
    }

    /// In-service UE mass served by sector `s` (the paper's N for that
    /// sector).
    #[inline]
    pub fn sector_load(&self, s: u32) -> f64 {
        self.n_s[s as usize]
    }

    /// The overall utility `f(U(C))` for a utility kind, computed from
    /// the per-sector aggregates in O(#sectors).
    pub fn utility(&self, kind: UtilityKind) -> f64 {
        match kind {
            UtilityKind::Coverage => self.n_s.iter().sum(),
            UtilityKind::Performance => self
                .n_s
                .iter()
                .zip(self.a_s.iter())
                .map(|(&n, &a)| if n > 0.0 { a - n * n.log10() } else { 0.0 })
                .sum(),
        }
    }

    /// The *search objective* for a utility kind.
    ///
    /// Identical to [`ModelState::utility`] for the performance utility.
    /// For the coverage utility — which is piecewise-flat (it only moves
    /// when a grid crosses the service threshold) — a vanishing
    /// performance tiebreak is added so greedy searches can traverse
    /// plateaus toward configurations that eventually flip grids into
    /// service. The tiebreak weight keeps the term far below one UE of
    /// coverage, so it never overrides a genuine coverage difference;
    /// reported utilities (and the recovery ratio) always use the pure
    /// [`ModelState::utility`].
    pub fn objective(&self, kind: UtilityKind) -> f64 {
        match kind {
            UtilityKind::Performance => self.utility(UtilityKind::Performance),
            UtilityKind::Coverage => {
                self.utility(UtilityKind::Coverage) + 1e-6 * self.utility(UtilityKind::Performance)
            }
        }
    }

    /// Number of grids in the raster.
    pub fn num_grids(&self) -> usize {
        self.total_mw.len()
    }

    /// Number of sectors tracked.
    pub fn num_sectors(&self) -> usize {
        self.n_s.len()
    }
}
