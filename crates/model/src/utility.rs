//! Utility functions (paper §5, "The Evaluation Component").
//!
//! The paper defines the overall utility as an additive function of
//! per-UE utilities and evaluates two concrete choices:
//!
//! * **Performance** (Formula 6): `u(r) = log(r)` for `r > 0`, else 0 —
//!   the proportional-fair log-rate metric of the testbed section.
//! * **Coverage** (Formula 5): `u(r) = 1` for `r > 0`, else 0 — the
//!   number of UEs receiving qualified service.
//!
//! Rates are in bits/s; the performance utility uses `log10`, so one UE
//! at 10 Mbps contributes 7.0. (The base only scales utilities uniformly
//! and cancels out of the paper's recovery ratio.)

use serde::{Deserialize, Serialize};

/// Which of the paper's two utility functions to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilityKind {
    /// Formula 6: sum of `log10(rate)` over served UEs.
    Performance,
    /// Formula 5: count of served UEs.
    Coverage,
}

impl UtilityKind {
    /// Both kinds, in the paper's order.
    pub const ALL: [UtilityKind; 2] = [UtilityKind::Performance, UtilityKind::Coverage];

    /// Per-UE utility of a rate in bits/s.
    pub fn per_ue(self, rate_bps: f64) -> f64 {
        if rate_bps <= 0.0 {
            return 0.0;
        }
        match self {
            UtilityKind::Performance => rate_bps.log10(),
            UtilityKind::Coverage => 1.0,
        }
    }
}

impl std::fmt::Display for UtilityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UtilityKind::Performance => "performance",
            UtilityKind::Coverage => "coverage",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_contributes_nothing() {
        for k in UtilityKind::ALL {
            assert_eq!(k.per_ue(0.0), 0.0);
            assert_eq!(k.per_ue(-5.0), 0.0);
        }
    }

    #[test]
    fn performance_is_log10() {
        assert!((UtilityKind::Performance.per_ue(10_000_000.0) - 7.0).abs() < 1e-12);
        assert!((UtilityKind::Performance.per_ue(1_000.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_binary() {
        assert_eq!(UtilityKind::Coverage.per_ue(1.0), 1.0);
        assert_eq!(UtilityKind::Coverage.per_ue(1e9), 1.0);
    }

    #[test]
    fn performance_prefers_higher_rates() {
        assert!(UtilityKind::Performance.per_ue(2e6) > UtilityKind::Performance.per_ue(1e6));
    }
}
