//! Standard two-phase model setup for a generated market.
//!
//! The UE layer depends on the serving map (paper §4.2: each sector's UE
//! total is spread over the grids it serves *at the pre-upgrade
//! configuration*), and the serving map comes from the model — so setup
//! runs the model twice: once with a placeholder layer to obtain serving
//! assignments at the nominal configuration, then for real with the
//! uniform-per-sector layer.

use crate::evaluator::Evaluator;
use crate::state::ModelState;
use magus_geo::units::thermal_noise;
use magus_geo::{Db, Dbm};
use magus_lte::{Bandwidth, RateMapper};
use magus_net::{Configuration, Market, Network, UeLayer};
use std::sync::Arc;

/// How UEs are distributed over serving grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UeModel {
    /// The paper's assumption (§4.2): each sector's UE total spread
    /// evenly over the grids it serves.
    UniformPerSector,
    /// The paper's future-work refinement: the same totals, weighted by
    /// land-use class (urban grids hold more users than forest grids).
    ClutterWeighted,
}

/// A ready-to-use model over a market: evaluator plus the nominal-state
/// baseline.
pub struct StandardModel {
    /// The evaluator with the operational UE layer attached.
    pub evaluator: Evaluator,
    /// The nominal (pre-upgrade, pre-planning) configuration.
    pub nominal: Configuration,
}

/// Receiver noise figure used throughout the reproduction (dB).
pub const NOISE_FIGURE_DB: f64 = 7.0;

/// The noise term of Formula 2 for a bandwidth.
pub fn noise_for(bandwidth: Bandwidth) -> Dbm {
    thermal_noise(bandwidth.hz(), Db(NOISE_FIGURE_DB))
}

/// Builds the standard evaluator for a market at `bandwidth`, with the
/// paper's uniform-per-sector UE model.
pub fn standard_setup(market: &Market, bandwidth: Bandwidth) -> StandardModel {
    standard_setup_with(market, bandwidth, UeModel::UniformPerSector)
}

/// Builds the evaluator with an explicit UE distribution model.
pub fn standard_setup_with(
    market: &Market,
    bandwidth: Bandwidth,
    ue_model: UeModel,
) -> StandardModel {
    let network = Arc::new(market.network().clone());
    let store = Arc::clone(market.store());
    let rate = RateMapper::new(bandwidth);
    let noise = noise_for(bandwidth);
    let nominal = Configuration::nominal(&network);

    // Phase 1: serving map at nominal configuration with a unit layer.
    let probe = Evaluator::new(
        Arc::clone(&store),
        Arc::clone(&network),
        rate,
        noise,
        UeLayer::constant(*store.spec(), 1.0),
    );
    let state = probe.initial_state(&nominal);
    let serving = probe.serving_map(&state);

    // Phase 2: distribute each sector's UE total over its serving grids.
    let totals: Vec<f64> = network
        .sectors()
        .iter()
        .map(|s| s.nominal_ue_count)
        .collect();
    let ue = match ue_model {
        UeModel::UniformPerSector => UeLayer::uniform_per_sector(*store.spec(), &serving, &totals),
        UeModel::ClutterWeighted => {
            UeLayer::clutter_weighted(*store.spec(), &serving, &totals, market.terrain())
        }
    };
    let evaluator = Evaluator::new(store, network, rate, noise, ue);
    StandardModel { evaluator, nominal }
}

impl StandardModel {
    /// Builds the baseline state at the nominal configuration.
    pub fn nominal_state(&self) -> ModelState {
        self.evaluator.initial_state(&self.nominal)
    }
}

/// Convenience for code that has a network + store but no [`Market`]
/// (tests, the testbed bridge): same two-phase dance.
pub fn setup_from_parts(
    store: Arc<magus_propagation::PathLossStore>,
    network: Arc<Network>,
    bandwidth: Bandwidth,
) -> StandardModel {
    let rate = RateMapper::new(bandwidth);
    let noise = noise_for(bandwidth);
    let nominal = Configuration::nominal(&network);
    let probe = Evaluator::new(
        Arc::clone(&store),
        Arc::clone(&network),
        rate,
        noise,
        UeLayer::constant(*store.spec(), 1.0),
    );
    let state = probe.initial_state(&nominal);
    let serving = probe.serving_map(&state);
    let totals: Vec<f64> = network
        .sectors()
        .iter()
        .map(|s| s.nominal_ue_count)
        .collect();
    let ue = UeLayer::uniform_per_sector(*store.spec(), &serving, &totals);
    let evaluator = Evaluator::new(store, network, rate, noise, ue);
    StandardModel { evaluator, nominal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityKind;
    use magus_net::{AreaType, MarketParams};

    #[test]
    fn standard_setup_conserves_ue_totals() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 21));
        let m = standard_setup(&market, Bandwidth::Mhz10);
        let expected: f64 = market
            .network()
            .sectors()
            .iter()
            .map(|s| s.nominal_ue_count)
            .sum();
        let layered = m.evaluator.ue_layer().total();
        // Sectors that serve no grids contribute no UEs; everything else
        // must be conserved.
        assert!(layered <= expected + 1e-6);
        assert!(layered > expected * 0.5, "layered {layered} of {expected}");
    }

    #[test]
    fn clutter_weighted_setup_conserves_and_differs() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 21));
        let uniform = standard_setup(&market, Bandwidth::Mhz10);
        let weighted = standard_setup_with(&market, Bandwidth::Mhz10, UeModel::ClutterWeighted);
        // Same total subscriber mass...
        let (tu, tw) = (
            uniform.evaluator.ue_layer().total(),
            weighted.evaluator.ue_layer().total(),
        );
        assert!((tu - tw).abs() < tu * 0.05, "totals {tu} vs {tw}");
        // ...but a different spatial distribution.
        let du = uniform.evaluator.ue_layer();
        let dw = weighted.evaluator.ue_layer();
        let differing = (0..du.raster().spec().len())
            .filter(|&i| (du.at_index(i) - dw.at_index(i)).abs() > 1e-9)
            .count();
        assert!(differing > 0, "clutter weighting should move UE mass");
    }

    #[test]
    fn nominal_state_has_positive_utilities() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 22));
        let m = standard_setup(&market, Bandwidth::Mhz10);
        let st = m.nominal_state();
        assert!(st.utility(UtilityKind::Performance) > 0.0);
        assert!(st.utility(UtilityKind::Coverage) > 0.0);
    }
}
