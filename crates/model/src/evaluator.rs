//! The evaluation engine: from-scratch builds, incremental application of
//! configuration changes, exact undo, and hypothetical single-grid
//! queries.

use crate::state::{ModelState, Undo, NO_SECTOR};
use magus_geo::{Db, Dbm, GridWindow};
use magus_lte::RateMapper;
use magus_net::{ConfigChange, Configuration, Network, SectorId, UeLayer};
use magus_propagation::{PathLossMatrix, PathLossStore};
use std::sync::Arc;

#[inline]
fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// The analysis model: immutable inputs plus the evaluation engine.
pub struct Evaluator {
    store: Arc<PathLossStore>,
    network: Arc<Network>,
    rate: RateMapper,
    noise_mw: f64,
    ue: UeLayer,
    /// Per grid: ids of sectors whose footprint covers it.
    covering: Vec<Vec<u32>>,
}

impl Evaluator {
    /// Builds an evaluator.
    ///
    /// * `noise` — the `Noise` term of Formula 2 (thermal + noise figure
    ///   over the channel bandwidth).
    /// * `ue` — the UE distribution layer (see [`magus_net::UeLayer`]).
    pub fn new(
        store: Arc<PathLossStore>,
        network: Arc<Network>,
        rate: RateMapper,
        noise: Dbm,
        ue: UeLayer,
    ) -> Evaluator {
        assert_eq!(
            store.num_sectors(),
            network.num_sectors(),
            "store and network disagree on sector count"
        );
        assert_eq!(
            ue.raster().spec(),
            store.spec(),
            "UE layer raster must match the analysis raster"
        );
        crate::invariant::debug_validate_store(&store);
        let spec = *store.spec();
        let mut covering: Vec<Vec<u32>> = vec![Vec::new(); spec.len()];
        for s in 0..magus_geo::cast::len_u32(store.num_sectors()) {
            for c in store.window(s).coords() {
                covering[spec.index(c)].push(s);
            }
        }
        Evaluator {
            store,
            network,
            rate,
            noise_mw: noise.to_milliwatt().0,
            ue,
            covering,
        }
    }

    /// The path-loss store backing this evaluator.
    pub fn store(&self) -> &Arc<PathLossStore> {
        &self.store
    }

    /// The network topology.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The UE layer.
    pub fn ue_layer(&self) -> &UeLayer {
        &self.ue
    }

    /// The rate mapper in use.
    pub fn rate_mapper(&self) -> RateMapper {
        self.rate
    }

    /// UEs resident in grid `i`.
    #[inline]
    pub fn ue_at(&self, i: usize) -> f64 {
        self.ue.at_index(i)
    }

    /// Fault-aware matrix read for the *state-mutating* paths
    /// (`initial_state`, `apply`, `rescan_cell`): consults the global
    /// fault plan and, on an unrecoverable read, serves the sector's
    /// nominal-tilt last-known-good matrix while raising the state's
    /// degraded flag. Read-only queries (`hypothetical_rmax`,
    /// `uplink_sinr`) keep using the direct path — they derive no
    /// persistent state, so a degraded answer there has nothing to flag.
    fn matrix_for(&self, state: &mut ModelState, s: u32, tilt: u8) -> Arc<PathLossMatrix> {
        let nominal = self.network.sector(SectorId(s)).nominal_tilt;
        let read = self.store.matrix_faulted(s, tilt, nominal);
        if read.stale {
            state.degraded = true;
        }
        read.matrix
    }

    /// Builds the full evaluation state for a configuration from scratch
    /// (the expensive path — use [`Evaluator::apply`] for updates).
    pub fn initial_state(&self, config: &Configuration) -> ModelState {
        magus_obs::counter_inc!("evaluator.initial_state");
        magus_obs::timed!(
            "evaluator.initial_state_ns",
            self.initial_state_impl(config)
        )
    }

    fn initial_state_impl(&self, config: &Configuration) -> ModelState {
        assert_eq!(config.len(), self.network.num_sectors());
        let n_grids = self.store.spec().len();
        let n_sectors = self.network.num_sectors();
        let mut state = ModelState {
            config: config.clone(),
            total_mw: vec![0.0; n_grids],
            best_idx: vec![NO_SECTOR; n_grids],
            best_rp: vec![f32::NEG_INFINITY; n_grids],
            rmax: vec![0.0; n_grids],
            n_s: vec![0.0; n_sectors],
            a_s: vec![0.0; n_sectors],
            degraded: false,
        };
        let spec = *self.store.spec();
        for s in 0..n_sectors as u32 {
            let sc = config.sector(SectorId(s));
            if !sc.on_air {
                continue;
            }
            let mat = self.matrix_for(&mut state, s, sc.tilt);
            let window = mat.window();
            for (k, c) in window.coords().enumerate() {
                let i = spec.index(c);
                let rp = sc.power.0 + mat.values()[k] as f64;
                state.total_mw[i] += dbm_to_mw(rp);
                if rp as f32 > state.best_rp[i] {
                    state.best_rp[i] = rp as f32;
                    state.best_idx[i] = s as i32;
                }
            }
        }
        for i in 0..n_grids {
            let rmax = self.cell_rmax(&state, i);
            state.rmax[i] = rmax as f32;
            self.add_aggregates(&mut state, i);
        }
        state
    }

    /// Maximum rate at grid `i` given the state's current best/total
    /// fields.
    fn cell_rmax(&self, state: &ModelState, i: usize) -> f64 {
        if state.best_idx[i] == NO_SECTOR {
            return 0.0;
        }
        self.rate.max_rate_bps(self.cell_sinr(state, i))
    }

    /// Linear SINR at grid `i` (Formula 2).
    #[inline]
    fn cell_sinr(&self, state: &ModelState, i: usize) -> f64 {
        if state.best_idx[i] == NO_SECTOR {
            return 0.0;
        }
        let signal = dbm_to_mw(state.best_rp[i] as f64);
        let interference = (state.total_mw[i] - signal).max(0.0);
        signal / (self.noise_mw + interference)
    }

    /// Public SINR accessor (linear).
    pub fn sinr_linear(&self, state: &ModelState, i: usize) -> f64 {
        self.cell_sinr(state, i)
    }

    #[inline]
    fn sub_aggregates(&self, state: &mut ModelState, i: usize) {
        let b = state.best_idx[i];
        if b == NO_SECTOR || state.rmax[i] <= 0.0 {
            return;
        }
        let ue = self.ue.at_index(i);
        if ue <= 0.0 {
            return;
        }
        state.n_s[b as usize] -= ue;
        state.a_s[b as usize] -= ue * (state.rmax[i] as f64).log10();
    }

    #[inline]
    fn add_aggregates(&self, state: &mut ModelState, i: usize) {
        let b = state.best_idx[i];
        if b == NO_SECTOR || state.rmax[i] <= 0.0 {
            return;
        }
        let ue = self.ue.at_index(i);
        if ue <= 0.0 {
            return;
        }
        state.n_s[b as usize] += ue;
        state.a_s[b as usize] += ue * (state.rmax[i] as f64).log10();
    }

    /// Re-derives the best server of grid `i` by scanning its covering
    /// sectors (used when the previous best weakened).
    fn rescan_cell(&self, state: &mut ModelState, i: usize) {
        let mut best = NO_SECTOR;
        let mut best_rp = f32::NEG_INFINITY;
        for &s in &self.covering[i] {
            let sc = state.config.sector(SectorId(s));
            if !sc.on_air {
                continue;
            }
            let mat = self.matrix_for(state, s, sc.tilt);
            let c = self.store.spec().coord_of_index(i);
            if let Some(l) = mat.get(c) {
                let rp = (sc.power.0 + l.0) as f32;
                if rp > best_rp {
                    best_rp = rp;
                    best = s as i32;
                }
            }
        }
        state.best_idx[i] = best;
        state.best_rp[i] = best_rp;
    }

    /// Applies a configuration change incrementally and returns an exact
    /// [`Undo`] record.
    pub fn apply(&self, state: &mut ModelState, change: ConfigChange) -> Undo {
        magus_obs::counter_inc!("evaluator.apply");
        magus_obs::timed!("evaluator.apply_ns", self.apply_impl(state, change))
    }

    fn apply_impl(&self, state: &mut ModelState, change: ConfigChange) -> Undo {
        crate::invariant::debug_validate_state(
            state,
            self.store.spec().len(),
            self.network.num_sectors(),
        );
        let mut undo = Undo {
            config: state.config.clone(),
            cells: Vec::new(),
            n_s: state.n_s.clone(),
            a_s: state.a_s.clone(),
            degraded: state.degraded,
        };
        let id = change.sector();
        let before = state.config.sector(id);
        state.config.apply(&self.network, change);
        let after = state.config.sector(id);
        if before == after {
            return undo; // fully absorbed (e.g. clamped power delta)
        }

        let s = id.0;
        // Old and new radio contributions of the changed sector.
        let old = before
            .on_air
            .then(|| (before.power, self.matrix_for(state, s, before.tilt)));
        let new = after
            .on_air
            .then(|| (after.power, self.matrix_for(state, s, after.tilt)));
        if old.is_none() && new.is_none() {
            return undo; // off-air sector reconfigured: no radio effect
        }
        self.sweep(state, &mut undo, s, old, new);
        magus_obs::counter_add!("evaluator.sweep_cells", undo.cells.len() as u64);
        undo
    }

    /// Sweeps the changed sector's footprint, updating every derived
    /// field.
    fn sweep(
        &self,
        state: &mut ModelState,
        undo: &mut Undo,
        s: u32,
        old: Option<(Dbm, Arc<PathLossMatrix>)>,
        new: Option<(Dbm, Arc<PathLossMatrix>)>,
    ) {
        let spec = *self.store.spec();
        let window: GridWindow = self.store.window(s);
        for (k, c) in window.coords().enumerate() {
            let i = spec.index(c);
            let old_rp = old.as_ref().map(|(p, m)| p.0 + m.values()[k] as f64);
            let new_rp = new.as_ref().map(|(p, m)| p.0 + m.values()[k] as f64);
            if old_rp == new_rp {
                continue;
            }
            undo.cells.push((
                i as u32,
                state.total_mw[i],
                state.best_idx[i],
                state.best_rp[i],
                state.rmax[i],
            ));
            self.sub_aggregates(state, i);

            let mw_old = old_rp.map_or(0.0, dbm_to_mw);
            let mw_new = new_rp.map_or(0.0, dbm_to_mw);
            state.total_mw[i] = (state.total_mw[i] - mw_old + mw_new).max(0.0);

            if state.best_idx[i] == s as i32 {
                match new_rp {
                    Some(rp) if rp as f32 >= state.best_rp[i] => {
                        // Grew while serving: stays best.
                        state.best_rp[i] = rp as f32;
                    }
                    _ => self.rescan_cell(state, i),
                }
            } else if let Some(rp) = new_rp {
                if rp as f32 > state.best_rp[i] || state.best_idx[i] == NO_SECTOR {
                    state.best_idx[i] = s as i32;
                    state.best_rp[i] = rp as f32;
                }
            }

            state.rmax[i] = self.cell_rmax(state, i) as f32;
            self.add_aggregates(state, i);
        }
    }

    /// Rolls back the most recent change exactly.
    pub fn undo(&self, state: &mut ModelState, undo: Undo) {
        magus_obs::counter_inc!("evaluator.undo");
        magus_obs::timed!("evaluator.undo_ns", {
            state.config = undo.config;
            for (i, total, best_idx, best_rp, rmax) in undo.cells.into_iter().rev() {
                let i = i as usize;
                state.total_mw[i] = total;
                state.best_idx[i] = best_idx;
                state.best_rp[i] = best_rp;
                state.rmax[i] = rmax;
            }
            state.n_s = undo.n_s;
            state.a_s = undo.a_s;
            state.degraded = undo.degraded;
        })
    }

    /// Probes a change: applies it, reads the utility, rolls back.
    pub fn probe_utility(
        &self,
        state: &mut ModelState,
        change: ConfigChange,
        kind: crate::utility::UtilityKind,
    ) -> f64 {
        magus_obs::counter_inc!("evaluator.probe");
        magus_obs::timed!("evaluator.probe_ns", {
            let undo = self.apply(state, change);
            let u = state.utility(kind);
            self.undo(state, undo);
            u
        })
    }

    /// Probes a change against the *search objective* (see
    /// [`ModelState::objective`]): applies it, reads the objective,
    /// rolls back.
    pub fn probe_objective(
        &self,
        state: &mut ModelState,
        change: ConfigChange,
        kind: crate::utility::UtilityKind,
    ) -> f64 {
        magus_obs::counter_inc!("evaluator.probe");
        magus_obs::timed!("evaluator.probe_ns", {
            let undo = self.apply(state, change);
            let u = state.objective(kind);
            self.undo(state, undo);
            u
        })
    }

    /// Hypothetical `r_max` at grid `i` if sector `s`'s power changed by
    /// `delta_db` (clamped to hardware limits) — the candidate test of
    /// Algorithm 1, line 4. Exact: re-derives the best server under the
    /// hypothesis, without touching the state.
    pub fn hypothetical_rmax(&self, state: &ModelState, i: usize, s: u32, delta_db: Db) -> f64 {
        let sc = state.config.sector(SectorId(s));
        if !sc.on_air {
            return state.rmax[i] as f64;
        }
        let hw = self.network.sector(SectorId(s));
        let new_power = (sc.power.0 + delta_db.0).clamp(hw.min_power.0, hw.max_power.0);
        if new_power == sc.power.0 {
            return state.rmax[i] as f64;
        }
        let c = self.store.spec().coord_of_index(i);
        let mat = self.store.matrix(s, sc.tilt);
        let Some(l) = mat.get(c) else {
            return state.rmax[i] as f64; // outside s's footprint: no effect
        };
        let rp_old = sc.power.0 + l.0;
        let rp_new = new_power + l.0;
        let total = (state.total_mw[i] - dbm_to_mw(rp_old) + dbm_to_mw(rp_new)).max(0.0);
        // Best server under the hypothesis.
        let (best_idx, best_rp) = if state.best_idx[i] == s as i32 {
            if rp_new >= state.best_rp[i] as f64 {
                (s as i32, rp_new)
            } else {
                // The serving sector weakened: scan.
                let mut b = NO_SECTOR;
                let mut brp = f64::NEG_INFINITY;
                for &o in &self.covering[i] {
                    let oc = state.config.sector(SectorId(o));
                    if !oc.on_air {
                        continue;
                    }
                    let om = self.store.matrix(o, oc.tilt);
                    if let Some(ol) = om.get(c) {
                        let rp = if o == s { rp_new } else { oc.power.0 + ol.0 };
                        if rp > brp {
                            brp = rp;
                            b = o as i32;
                        }
                    }
                }
                (b, brp)
            }
        } else if rp_new > state.best_rp[i] as f64 {
            (s as i32, rp_new)
        } else {
            (state.best_idx[i], state.best_rp[i] as f64)
        };
        if best_idx == NO_SECTOR {
            return 0.0;
        }
        let signal = dbm_to_mw(best_rp);
        let interference = (total - signal).max(0.0);
        self.rate
            .max_rate_bps(signal / (self.noise_mw + interference))
    }

    /// Uplink SINR (linear) of a UE in grid `i` toward its serving
    /// sector — the paper's "our methodology can also be used for uplink
    /// performance" extension.
    ///
    /// Model: reciprocal channel (the same per-(sector, tilt) path-loss
    /// matrix), UE transmit power `ue_tx_dbm` (LTE power class 3:
    /// 23 dBm), and one active full-power uplink interferer per *other*
    /// on-air sector, located at that sector's worst-coupled served grid
    /// toward the victim — a conservative single-interferer bound. Noise
    /// uses the same bandwidth as the downlink mapper.
    pub fn uplink_sinr(&self, state: &ModelState, i: usize, ue_tx_dbm: Dbm) -> f64 {
        let Some(serving) = state.serving(i) else {
            return 0.0;
        };
        let sc = state.config.sector(SectorId(serving));
        let mat = self.store.matrix(serving, sc.tilt);
        let c = self.store.spec().coord_of_index(i);
        let Some(l) = mat.get(c) else { return 0.0 };
        let signal = dbm_to_mw(ue_tx_dbm.0 + l.0);
        // Interference: for each other sector audible at the serving
        // site's cell, one UE transmitting at full power from the
        // strongest-coupled grid *it serves* inside the serving sector's
        // footprint. Approximated by the best cross-coupling between the
        // interfering sector's serving set and the serving sector's
        // matrix.
        let mut interference = 0.0;
        for &o in &self.covering[i] {
            if o == serving {
                continue;
            }
            let oc = state.config.sector(SectorId(o));
            if !oc.on_air {
                continue;
            }
            // The interfering UE sits roughly at its own cell edge toward
            // the victim: couple at the interfering sector's own path
            // loss toward grid i, floored to the victim-serving loss
            // (the UE cannot be better coupled to the victim than a UE
            // *in* grid i would be).
            let om = self.store.matrix(o, oc.tilt);
            if let Some(ol) = om.get(c) {
                interference += dbm_to_mw(ue_tx_dbm.0 + ol.0.min(l.0));
            }
        }
        signal / (self.noise_mw + interference)
    }

    /// Uplink maximum rate at grid `i` in bits/s (same TBS chain as the
    /// downlink; single UE on the band).
    pub fn uplink_rmax_bps(&self, state: &ModelState, i: usize, ue_tx_dbm: Dbm) -> f64 {
        self.rate
            .max_rate_bps(self.uplink_sinr(state, i, ue_tx_dbm))
    }

    /// The serving map (serving sector per grid) of a state — the input
    /// to [`magus_net::UeLayer::uniform_per_sector`].
    pub fn serving_map(&self, state: &ModelState) -> Vec<Option<u32>> {
        (0..state.num_grids()).map(|i| state.serving(i)).collect()
    }

    /// Grid indices (within `within`, or everywhere if `None`) whose
    /// per-UE rate in `degraded` is strictly worse than in `reference` —
    /// the affected-grid set **G** of Algorithm 1.
    pub fn degraded_grids(
        &self,
        reference: &ModelState,
        degraded: &ModelState,
        within: Option<GridWindow>,
    ) -> Vec<u32> {
        let spec = *self.store.spec();
        (0..reference.num_grids())
            .filter(|&i| {
                if let Some(w) = within {
                    if !w.contains(spec.coord_of_index(i)) {
                        return false;
                    }
                }
                degraded.rate_bps(i) < reference.rate_bps(i) - 1e-9
            })
            .map(|i| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityKind;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, Db, Dbm, GridSpec, PointM};
    use magus_lte::Bandwidth;
    use magus_net::{BsId, Sector, SectorId};
    use magus_propagation::{AntennaParams, PropagationModel, SectorSite, SpmParams, TiltSettings};
    use magus_terrain::Terrain;

    /// Two opposing sectors, 3 km apart, on a flat 6 km raster.
    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(1_500.0, 0.0), 150.0, 6_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            )
        };
        let network = Arc::new(magus_net::Network::new(vec![
            mk(0, 0.0, 90.0),
            mk(1, 3_000.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            12_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), Db(7.0));
        let ue = UeLayer::constant(spec, 1.0);
        let config = Configuration::nominal(&network);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            config,
        )
    }

    #[test]
    fn initial_state_assigns_nearest_serving() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let spec = *ev.store().spec();
        let near0 = spec.coord_of_point(PointM::new(400.0, 0.0)).unwrap();
        let near1 = spec.coord_of_point(PointM::new(2_600.0, 0.0)).unwrap();
        assert_eq!(st.serving(spec.index(near0)), Some(0));
        assert_eq!(st.serving(spec.index(near1)), Some(1));
    }

    #[test]
    fn utility_positive_and_coverage_counts_ues() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let cov = st.utility(UtilityKind::Coverage);
        assert!(cov > 0.0);
        // Coverage utility is a UE count: bounded by total UEs.
        assert!(cov <= ev.ue_layer().total() + 1e-9);
        assert!(st.utility(UtilityKind::Performance) > 0.0);
    }

    #[test]
    fn taking_sector_down_degrades_utility() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let before = st.utility(UtilityKind::Performance);
        let undo = ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let during = st.utility(UtilityKind::Performance);
        assert!(during < before, "{during} !< {before}");
        ev.undo(&mut st, undo);
        assert!((st.utility(UtilityKind::Performance) - before).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_full_rebuild() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let changes = [
            ConfigChange::PowerDelta(SectorId(0), Db(2.0)),
            ConfigChange::SetOnAir(SectorId(1), false),
            ConfigChange::SetTilt(SectorId(0), 2),
            ConfigChange::PowerDelta(SectorId(0), Db(-4.0)),
            ConfigChange::SetOnAir(SectorId(1), true),
        ];
        for ch in changes {
            ev.apply(&mut st, ch);
            let fresh = ev.initial_state(st.config());
            for i in 0..st.num_grids() {
                assert_eq!(
                    st.serving(i),
                    fresh.serving(i),
                    "serving mismatch at {i} after {ch:?}"
                );
                assert!(
                    (st.rmax_bps(i) - fresh.rmax_bps(i)).abs() < 1.0,
                    "rmax mismatch at {i} after {ch:?}"
                );
            }
            for k in UtilityKind::ALL {
                assert!(
                    (st.utility(k) - fresh.utility(k)).abs() < 1e-6,
                    "utility {k} mismatch after {ch:?}"
                );
            }
        }
    }

    #[test]
    fn undo_restores_exactly() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let reference = ev.initial_state(&config);
        let undo1 = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(3.0)));
        let undo2 = ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        ev.undo(&mut st, undo2);
        ev.undo(&mut st, undo1);
        assert_eq!(st.config(), reference.config());
        for i in 0..st.num_grids() {
            assert_eq!(st.best_idx[i], reference.best_idx[i]);
            assert_eq!(st.best_rp[i], reference.best_rp[i]);
            assert_eq!(st.rmax[i], reference.rmax[i]);
            assert_eq!(st.total_mw[i], reference.total_mw[i]);
        }
        assert_eq!(st.n_s, reference.n_s);
        assert_eq!(st.a_s, reference.a_s);
    }

    #[test]
    fn probe_leaves_state_unchanged() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let before = st.utility(UtilityKind::Performance);
        let probed = ev.probe_utility(
            &mut st,
            ConfigChange::PowerDelta(SectorId(0), Db(3.0)),
            UtilityKind::Performance,
        );
        assert!((st.utility(UtilityKind::Performance) - before).abs() < 1e-12);
        assert_ne!(probed, before);
    }

    #[test]
    fn hypothetical_rmax_matches_real_apply() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        // Take sector 1 down so boosting sector 0 matters.
        ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let spec = *ev.store().spec();
        let i = spec.index(spec.coord_of_point(PointM::new(2_600.0, 0.0)).unwrap());
        let hypo = ev.hypothetical_rmax(&st, i, 0, Db(3.0));
        let undo = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(3.0)));
        let real = st.rmax_bps(i);
        ev.undo(&mut st, undo);
        assert!((hypo - real).abs() < 1.0, "hypo {hypo} vs real {real}");
    }

    #[test]
    fn degraded_grids_nonempty_after_outage() {
        let (ev, config) = fixture();
        let reference = ev.initial_state(&config);
        let mut st = ev.initial_state(&config);
        ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let degraded = ev.degraded_grids(&reference, &st, None);
        assert!(!degraded.is_empty());
        // Every reported grid really did degrade.
        for &g in &degraded {
            assert!(st.rate_bps(g as usize) < reference.rate_bps(g as usize));
        }
    }

    #[test]
    fn uplink_is_weaker_than_downlink_but_correlated() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let mut served = 0usize;
        let mut uplink_served = 0usize;
        for i in 0..st.num_grids() {
            if st.rmax_bps(i) > 0.0 {
                served += 1;
                // 23 dBm UE vs 43 dBm sector: uplink never out-covers
                // downlink under a reciprocal channel.
                if ev.uplink_rmax_bps(&st, i, Dbm(23.0)) > 0.0 {
                    uplink_served += 1;
                }
            } else {
                assert_eq!(ev.uplink_rmax_bps(&st, i, Dbm(23.0)), 0.0);
            }
        }
        assert!(uplink_served > 0, "some grids must have uplink service");
        assert!(uplink_served <= served);
    }

    #[test]
    fn uplink_rate_monotone_in_ue_power() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let spec = *ev.store().spec();
        let i = spec.index(spec.coord_of_point(PointM::new(400.0, 0.0)).unwrap());
        assert!(ev.uplink_sinr(&st, i, Dbm(23.0)) >= ev.uplink_sinr(&st, i, Dbm(10.0)));
    }

    #[test]
    fn clamped_power_change_is_a_noop() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        // Drive to max first.
        ev.apply(&mut st, ConfigChange::SetPower(SectorId(0), Dbm(46.0)));
        let before = st.utility(UtilityKind::Performance);
        let undo = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(5.0)));
        assert!(undo.cells.is_empty());
        assert_eq!(st.utility(UtilityKind::Performance), before);
    }
}
