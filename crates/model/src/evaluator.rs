//! The evaluation engine: from-scratch builds, incremental application of
//! configuration changes, exact undo, and hypothetical single-grid
//! queries.

use crate::state::{ModelState, Undo, UndoCell, UtilityAgg, NO_SECTOR, UNKNOWN_SECTOR};
use magus_geo::{Db, Dbm, GridWindow};
use magus_lte::{RateMapper, RateTable};
use magus_net::{ConfigChange, Configuration, Network, SectorId, UeLayer};
use magus_propagation::{PathLossMatrix, PathLossStore};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

#[inline]
fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Per-thread scratch for [`Evaluator::sweep`]'s structure-of-arrays
/// phases: the changed sector's per-cell received power before/after
/// the change (flat `f64` slices the fill loops can vectorize), their
/// linear-mW conversions for the cells that changed, the
/// `(window k, grid i)` pairs of those cells, and an epoch-stamped
/// touched-sector mark so each sector's aggregates are recorded in the
/// undo log exactly once per sweep.
#[derive(Default)]
struct SweepScratch {
    rp_old: Vec<f64>,
    rp_new: Vec<f64>,
    mw_old: Vec<f64>,
    mw_new: Vec<f64>,
    changed: Vec<(u32, u32)>,
    touched_epoch: Vec<u32>,
    epoch: u32,
}

thread_local! {
    static SWEEP_SCRATCH: RefCell<SweepScratch> = RefCell::default();
    /// Reusable rollback record for the probe fast path: a probe
    /// refills this buffer in place instead of allocating an [`Undo`].
    static PROBE_UNDO: RefCell<Undo> = RefCell::default();
    /// Probe counter for the sampled per-phase timing: every
    /// [`PROBE_SAMPLE_PERIOD`]-th probe on each thread also records its
    /// apply/read/undo split, so phase attribution costs ~1/64th of the
    /// full-instrumentation overhead on the hot path.
    static PROBE_SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// One in this many probes records per-phase (apply/read/undo) timing.
const PROBE_SAMPLE_PERIOD: u64 = 64;

/// Records sector `b`'s aggregates in the undo log the first time the
/// sweep touches them (epoch-stamp dedup, no per-sweep clearing).
#[inline]
fn note_sector(touched: &mut [u32], epoch: u32, undo: &mut Undo, n_s: &[f64], a_s: &[f64], b: i32) {
    if b < 0 {
        return;
    }
    let b = b as usize;
    if touched[b] != epoch {
        touched[b] = epoch;
        undo.sectors.push((b as u32, n_s[b], a_s[b]));
    }
}

/// The analysis model: immutable inputs plus the evaluation engine.
pub struct Evaluator {
    store: Arc<PathLossStore>,
    network: Arc<Network>,
    rate: RateMapper,
    /// Precomputed lookup form of `rate` — bit-identical results with no
    /// per-call `log2` (see [`RateTable`]); the per-cell hot paths use
    /// this, `rate` stays the serde-stable public face.
    rate_table: RateTable,
    /// `(f32 bits of a rate level, log10 of that level)` sorted by key:
    /// `r_max` only ever takes the finite set of TBS-chain rates, so the
    /// aggregate updates can look `log10(r_max)` up instead of computing
    /// it. Values are produced by the same `(rate as f32 as f64).log10()`
    /// the direct computation would run — lookups are bit-identical.
    log10_rate: Vec<(u32, f64)>,
    noise_mw: f64,
    ue: UeLayer,
    /// Per grid: ids of sectors whose footprint covers it, in CSR form —
    /// grid `i`'s sectors are `covering_items[covering_off[i] ..
    /// covering_off[i+1]]`, ascending. Flat arrays instead of a
    /// `Vec<Vec<u32>>`: at continental scale the per-grid vector
    /// headers and allocation slack alone cost more than the ids.
    covering_off: Vec<u32>,
    covering_items: Vec<u32>,
}

impl Evaluator {
    /// Builds an evaluator.
    ///
    /// * `noise` — the `Noise` term of Formula 2 (thermal + noise figure
    ///   over the channel bandwidth).
    /// * `ue` — the UE distribution layer (see [`magus_net::UeLayer`]).
    pub fn new(
        store: Arc<PathLossStore>,
        network: Arc<Network>,
        rate: RateMapper,
        noise: Dbm,
        ue: UeLayer,
    ) -> Evaluator {
        assert_eq!(
            store.num_sectors(),
            network.num_sectors(),
            "store and network disagree on sector count"
        );
        assert_eq!(
            ue.raster().spec(),
            store.spec(),
            "UE layer raster must match the analysis raster"
        );
        crate::invariant::debug_validate_store(&store);
        let spec = *store.spec();
        // Two-pass CSR build: count covering sectors per grid, prefix-sum
        // into offsets, then fill in ascending sector order — each grid's
        // row comes out ascending, the order every rescan relies on.
        let n_grids = spec.len();
        let mut counts = vec![0u32; n_grids];
        for s in 0..magus_geo::cast::len_u32(store.num_sectors()) {
            for c in store.window(s).coords() {
                counts[spec.index(c)] += 1;
            }
        }
        let mut covering_off = Vec::with_capacity(n_grids + 1);
        covering_off.push(0u32);
        let mut total = 0u32;
        for &c in &counts {
            total += c;
            covering_off.push(total);
        }
        let mut covering_items = vec![0u32; magus_geo::cast::idx(total)];
        let mut cursor: Vec<u32> = covering_off[..n_grids].to_vec();
        for s in 0..magus_geo::cast::len_u32(store.num_sectors()) {
            for c in store.window(s).coords() {
                let i = spec.index(c);
                covering_items[magus_geo::cast::idx(cursor[i])] = s;
                cursor[i] += 1;
            }
        }
        let rate_table = rate.table();
        let mut log10_rate: Vec<(u32, f64)> = rate_table
            .rate_levels()
            .iter()
            .filter(|&&r| r > 0.0)
            .map(|&r| {
                let r32 = r as f32;
                (r32.to_bits(), (r32 as f64).log10())
            })
            .collect();
        log10_rate.sort_unstable_by_key(|&(b, _)| b);
        log10_rate.dedup_by_key(|&mut (b, _)| b);
        Evaluator {
            store,
            network,
            rate,
            rate_table,
            log10_rate,
            noise_mw: noise.to_milliwatt().0,
            ue,
            covering_off,
            covering_items,
        }
    }

    /// Sector ids covering grid `i`, ascending (CSR row).
    #[inline]
    fn covering(&self, i: usize) -> &[u32] {
        let lo = magus_geo::cast::idx(self.covering_off[i]);
        let hi = magus_geo::cast::idx(self.covering_off[i + 1]);
        &self.covering_items[lo..hi]
    }

    /// `log10(r_max)` via the precomputed per-rate-level table; falls
    /// back to computing it for a value outside the known level set
    /// (unreachable from states this evaluator built).
    #[inline]
    fn log10_rmax(&self, rmax: f32) -> f64 {
        match self
            .log10_rate
            .binary_search_by_key(&rmax.to_bits(), |&(b, _)| b)
        {
            Ok(j) => self.log10_rate[j].1,
            Err(_) => (rmax as f64).log10(),
        }
    }

    /// The path-loss store backing this evaluator.
    pub fn store(&self) -> &Arc<PathLossStore> {
        &self.store
    }

    /// The network topology.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The UE layer.
    pub fn ue_layer(&self) -> &UeLayer {
        &self.ue
    }

    /// The rate mapper in use.
    pub fn rate_mapper(&self) -> RateMapper {
        self.rate
    }

    /// UEs resident in grid `i`.
    #[inline]
    pub fn ue_at(&self, i: usize) -> f64 {
        self.ue.at_index(i)
    }

    /// Fault-aware matrix read for the *state-mutating* paths
    /// (`initial_state`, `apply`, `rescan_cell`): consults the global
    /// fault plan and, on an unrecoverable read, serves the sector's
    /// nominal-tilt last-known-good matrix while raising the state's
    /// degraded flag. Read-only queries (`hypothetical_rmax`,
    /// `uplink_sinr`) keep using the direct path — they derive no
    /// persistent state, so a degraded answer there has nothing to flag.
    fn matrix_for(&self, state: &mut ModelState, s: u32, tilt: u8) -> Arc<PathLossMatrix> {
        let nominal = self.network.sector(SectorId(s)).nominal_tilt;
        let read = self.store.matrix_faulted(s, tilt, nominal);
        if read.stale {
            state.degraded = true;
        }
        read.matrix
    }

    /// Builds the full evaluation state for a configuration from scratch
    /// (the expensive path — use [`Evaluator::apply`] for updates).
    pub fn initial_state(&self, config: &Configuration) -> ModelState {
        magus_obs::counter_inc!("evaluator.initial_state");
        let state = magus_obs::timed!(
            "evaluator.initial_state_ns",
            self.initial_state_impl(config)
        );
        // Workers operate on clones of an already-built state, so this
        // record only ever comes from the driver thread and the trace
        // stream stays byte-identical at any thread count.
        magus_obs::trace_event!("evaluator.build",
            "sectors" => self.network.num_sectors(),
            "grids" => self.store.spec().len(),
            "degraded" => state.degraded,
        );
        state
    }

    fn initial_state_impl(&self, config: &Configuration) -> ModelState {
        assert_eq!(config.len(), self.network.num_sectors());
        let n_grids = self.store.spec().len();
        let n_sectors = self.network.num_sectors();
        let mut state = ModelState {
            config: config.clone(),
            total_mw: vec![0.0; n_grids],
            best_idx: vec![NO_SECTOR; n_grids],
            best_rp: vec![f32::NEG_INFINITY; n_grids],
            best2_idx: vec![NO_SECTOR; n_grids],
            best2_rp: vec![f32::NEG_INFINITY; n_grids],
            rmax: vec![0.0; n_grids],
            n_s: vec![0.0; n_sectors],
            a_s: vec![0.0; n_sectors],
            agg: UtilityAgg::default(),
            degraded: false,
        };
        let spec = *self.store.spec();
        for s in 0..n_sectors as u32 {
            let sc = config.sector(SectorId(s));
            if !sc.on_air {
                continue;
            }
            let mat = self.matrix_for(&mut state, s, sc.tilt);
            let window = mat.window();
            // Received mW as `10^(P/10) · 10^(L/10)` — one conversion per
            // sector, a multiply per cell. The sweep uses the identical
            // product form, so incremental totals match rebuilds.
            let scale = dbm_to_mw(sc.power.0);
            let mwv = mat.values_mw();
            let values = mat.values();
            for (k, c) in window.coords().enumerate() {
                let i = spec.index(c);
                state.total_mw[i] += scale * mwv[k];
                // Exact online top-2: sectors arrive in ascending id, so
                // strict `>` keeps the lowest index in both slots on ties.
                let rp32 = (sc.power.0 + values[k] as f64) as f32;
                if rp32 > state.best_rp[i] {
                    state.best2_rp[i] = state.best_rp[i];
                    state.best2_idx[i] = state.best_idx[i];
                    state.best_rp[i] = rp32;
                    state.best_idx[i] = s as i32;
                } else if rp32 > state.best2_rp[i] {
                    state.best2_rp[i] = rp32;
                    state.best2_idx[i] = s as i32;
                }
            }
        }
        for i in 0..n_grids {
            let rmax = self.cell_rmax(&state, i);
            state.rmax[i] = rmax as f32;
            self.add_aggregates(&mut state, i);
        }
        state.agg.rebuild(&state.n_s, &state.a_s);
        state
    }

    /// Maximum rate at grid `i` given the state's current best/total
    /// fields.
    fn cell_rmax(&self, state: &ModelState, i: usize) -> f64 {
        if state.best_idx[i] == NO_SECTOR {
            return 0.0;
        }
        self.rate_table.max_rate_bps(self.cell_sinr(state, i))
    }

    /// Linear SINR at grid `i` (Formula 2).
    #[inline]
    fn cell_sinr(&self, state: &ModelState, i: usize) -> f64 {
        if state.best_idx[i] == NO_SECTOR {
            return 0.0;
        }
        let signal = dbm_to_mw(state.best_rp[i] as f64);
        let interference = (state.total_mw[i] - signal).max(0.0);
        signal / (self.noise_mw + interference)
    }

    /// Public SINR accessor (linear).
    pub fn sinr_linear(&self, state: &ModelState, i: usize) -> f64 {
        self.cell_sinr(state, i)
    }

    #[inline]
    fn sub_aggregates(&self, state: &mut ModelState, i: usize) {
        let b = state.best_idx[i];
        if b == NO_SECTOR || state.rmax[i] <= 0.0 {
            return;
        }
        let ue = self.ue.at_index(i);
        if ue <= 0.0 {
            return;
        }
        state.n_s[b as usize] -= ue;
        state.a_s[b as usize] -= ue * self.log10_rmax(state.rmax[i]);
    }

    #[inline]
    fn add_aggregates(&self, state: &mut ModelState, i: usize) {
        let b = state.best_idx[i];
        if b == NO_SECTOR || state.rmax[i] <= 0.0 {
            return;
        }
        let ue = self.ue.at_index(i);
        if ue <= 0.0 {
            return;
        }
        state.n_s[b as usize] += ue;
        state.a_s[b as usize] += ue * self.log10_rmax(state.rmax[i]);
    }

    /// Re-derives the top-2 servers of grid `i` by scanning its covering
    /// sectors — the expensive fallback for when the incremental hints
    /// ran out. Covering ids ascend, so strict `>` keeps the lowest
    /// index in both slots on ties (the historical tie-break).
    fn rescan_cell(&self, state: &mut ModelState, i: usize) {
        let mut best = NO_SECTOR;
        let mut best_rp = f32::NEG_INFINITY;
        let mut best2 = NO_SECTOR;
        let mut best2_rp = f32::NEG_INFINITY;
        let c = self.store.spec().coord_of_index(i);
        for &s in self.covering(i) {
            let sc = state.config.sector(SectorId(s));
            if !sc.on_air {
                continue;
            }
            let mat = self.matrix_for(state, s, sc.tilt);
            if let Some(l) = mat.get(c) {
                let rp = (sc.power.0 + l.0) as f32;
                if rp > best_rp {
                    best2_rp = best_rp;
                    best2 = best;
                    best_rp = rp;
                    best = s as i32;
                } else if rp > best2_rp {
                    best2_rp = rp;
                    best2 = s as i32;
                }
            }
        }
        state.best_idx[i] = best;
        state.best_rp[i] = best_rp;
        state.best2_idx[i] = best2;
        state.best2_rp[i] = best2_rp;
    }

    /// Re-derives only the *second-best* server of grid `i`, leaving the
    /// (already exact) best slot untouched. Used by the post-commit
    /// repair pass: the sweep marks seconds it cannot maintain cheaply
    /// as [`UNKNOWN_SECTOR`], and committed applies repair them here so
    /// subsequent probes never need a full rescan. The best slot must
    /// not be rewritten from a scan: on exact received-power ties the
    /// incremental sweep keeps the incumbent server while a scan picks
    /// the lowest index, and flipping the serving sector would move UE
    /// load between sectors — an observable change.
    fn rescan_second(&self, state: &mut ModelState, i: usize) {
        let bi = state.best_idx[i];
        if bi == NO_SECTOR {
            state.best2_idx[i] = NO_SECTOR;
            state.best2_rp[i] = f32::NEG_INFINITY;
            return;
        }
        let mut best2 = NO_SECTOR;
        let mut best2_rp = f32::NEG_INFINITY;
        let c = self.store.spec().coord_of_index(i);
        for &s in self.covering(i) {
            if s as i32 == bi {
                continue;
            }
            let sc = state.config.sector(SectorId(s));
            if !sc.on_air {
                continue;
            }
            let mat = self.matrix_for(state, s, sc.tilt);
            if let Some(l) = mat.get(c) {
                let rp = (sc.power.0 + l.0) as f32;
                if rp > best2_rp {
                    best2_rp = rp;
                    best2 = s as i32;
                }
            }
        }
        state.best2_idx[i] = best2;
        state.best2_rp[i] = best2_rp;
    }

    /// Repairs every [`UNKNOWN_SECTOR`] second-best hint a sweep left on
    /// the cells in `undo`. Runs on the *committed* apply path only: a
    /// commit happens once per accepted move while probes happen once
    /// per candidate, so paying the covering scans here keeps the probe
    /// loop scan-free (outside a probe, no cell's second is ever
    /// unknown).
    fn repair_second(&self, state: &mut ModelState, undo: &Undo) {
        let mut repaired = 0u64;
        for cell in &undo.cells {
            let i = cell.i as usize;
            if state.best2_idx[i] == UNKNOWN_SECTOR {
                self.rescan_second(state, i);
                repaired += 1;
            }
        }
        magus_obs::counter_add!("evaluator.repair_second_cells", repaired);
    }

    /// Applies a configuration change incrementally and returns an exact
    /// [`Undo`] record.
    ///
    /// The committed path also repairs any second-best hints the sweep
    /// invalidated (see [`Evaluator::repair_second`]); the probe fast
    /// path skips the repair because its undo restores the hints anyway.
    pub fn apply(&self, state: &mut ModelState, change: ConfigChange) -> Undo {
        magus_obs::counter_inc!("evaluator.apply");
        magus_obs::timed!("evaluator.apply_ns", {
            let mut undo = Undo::default();
            self.apply_into(state, change, &mut undo);
            self.repair_second(state, &undo);
            undo
        })
    }

    /// Applies a change, refilling `undo` in place (cleared first).
    /// Leaves any sweep-invalidated second-best hints as
    /// [`UNKNOWN_SECTOR`] — callers that keep the state must follow up
    /// with [`Evaluator::repair_second`].
    fn apply_into(&self, state: &mut ModelState, change: ConfigChange, undo: &mut Undo) {
        crate::invariant::debug_validate_state(
            state,
            self.store.spec().len(),
            self.network.num_sectors(),
        );
        undo.clear();
        undo.degraded = state.degraded;
        let id = change.sector();
        let before = state.config.sector(id);
        undo.sector = Some((id, before));
        state.config.apply(&self.network, change);
        let after = state.config.sector(id);
        if before == after {
            return; // fully absorbed (e.g. clamped power delta)
        }

        let s = id.0;
        // Old and new radio contributions of the changed sector.
        let old = before
            .on_air
            .then(|| (before.power, self.matrix_for(state, s, before.tilt)));
        let new = after
            .on_air
            .then(|| (after.power, self.matrix_for(state, s, after.tilt)));
        if old.is_none() && new.is_none() {
            return; // off-air sector reconfigured: no radio effect
        }
        self.sweep(state, undo, s, old, new);
        // Refresh the utility tree's touched leaves once per sweep (the
        // undo log names each touched sector exactly once) instead of on
        // every per-cell aggregate update — O(k·log n) per change.
        for &(t, _, _) in &undo.sectors {
            state
                .agg
                .update(magus_geo::cast::idx(t), &state.n_s, &state.a_s);
        }
        // Pruning contract: a change to sector `s` may only touch the
        // aggregates of `s` itself and sectors whose footprints overlap
        // it — the interference neighborhood the scale path prunes by.
        #[cfg(debug_assertions)]
        {
            let idx = self.store.neighbor_index();
            for &(t, _, _) in &undo.sectors {
                debug_assert!(
                    t == s || idx.contains(s, t),
                    "sweep of sector {s} touched sector {t} outside its neighborhood"
                );
            }
        }
        magus_obs::counter_add!("evaluator.sweep_cells", undo.cells.len() as u64);
    }

    /// Sweeps the changed sector's footprint, updating every derived
    /// field. Runs in structure-of-arrays phases over the per-thread
    /// scratch: (1) fill flat before/after received-power slices from
    /// the path-loss matrices; (2) find the cells that changed and
    /// snapshot their undo records (bookkeeping only); (3) convert the
    /// changed cells' dBm values to linear mW; (4) the per-cell
    /// arithmetic, in the same ascending order as the historical single
    /// loop — float accumulation order into `n_s`/`a_s` is part of the
    /// bit-determinism contract.
    fn sweep(
        &self,
        state: &mut ModelState,
        undo: &mut Undo,
        s: u32,
        old: Option<(Dbm, Arc<PathLossMatrix>)>,
        new: Option<(Dbm, Arc<PathLossMatrix>)>,
    ) {
        let spec = *self.store.spec();
        let window: GridWindow = self.store.window(s);
        let n = window.len();
        SWEEP_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();

            // Epoch bookkeeping for once-per-sector aggregate records.
            let n_sectors = state.n_s.len();
            if scratch.touched_epoch.len() < n_sectors {
                scratch.touched_epoch.resize(n_sectors, 0);
            }
            scratch.epoch = scratch.epoch.wrapping_add(1);
            if scratch.epoch == 0 {
                scratch.touched_epoch.iter_mut().for_each(|e| *e = 0);
                scratch.epoch = 1;
            }

            // Phase 1 (SoA fill): the changed sector's received power per
            // window cell, before and after — plain `power + loss` adds
            // over the matrices' flat value slices.
            let fill = |dst: &mut Vec<f64>, src: Option<&(Dbm, Arc<PathLossMatrix>)>| -> bool {
                dst.clear();
                match src {
                    Some((p, m)) => {
                        let p = p.0;
                        let values = m.values();
                        debug_assert_eq!(values.len(), n, "matrix/window shape drifted");
                        dst.extend(values.iter().map(|&l| p + l as f64));
                        true
                    }
                    None => false,
                }
            };
            let has_old = fill(&mut scratch.rp_old, old.as_ref());
            let has_new = fill(&mut scratch.rp_new, new.as_ref());

            // Phase 2 (bookkeeping): collect the cells whose contribution
            // changed and snapshot their undo records. When the sector
            // appears or disappears every window cell changes; otherwise
            // exactly the cells whose before/after powers differ (same
            // `f64` comparison the historical per-cell loop used).
            scratch.changed.clear();
            let width = spec.width as usize;
            let wcols = magus_geo::cast::idx(window.x1 - window.x0);
            let both = has_old && has_new;
            let mut k = 0usize;
            for y in window.y0..window.y1 {
                let base = y as usize * width + window.x0 as usize;
                for col in 0..wcols {
                    if !both || scratch.rp_old[k] != scratch.rp_new[k] {
                        let i = base + col;
                        scratch.changed.push((k as u32, i as u32));
                        undo.cells.push(UndoCell {
                            i: i as u32,
                            total_mw: state.total_mw[i],
                            best_idx: state.best_idx[i],
                            best_rp: state.best_rp[i],
                            best2_idx: state.best2_idx[i],
                            best2_rp: state.best2_rp[i],
                            rmax: state.rmax[i],
                        });
                    }
                    k += 1;
                }
            }

            let SweepScratch {
                rp_old: _,
                rp_new,
                mw_old,
                mw_new,
                changed,
                touched_epoch,
                epoch,
            } = scratch;
            let epoch = *epoch;

            // Phase 3 (SoA convert): linear-mW contributions of the
            // changed cells as `10^(P/10) · 10^(L/10)` gather-multiplies
            // over the matrices' cached mW images — one dBm→mW
            // transcendental per sweep side, not per cell. Same product
            // form as `initial_state`, so totals match rebuilds.
            mw_old.clear();
            mw_new.clear();
            if let Some((p, m)) = old.as_ref() {
                let scale = dbm_to_mw(p.0);
                let mwv = m.values_mw();
                mw_old.extend(changed.iter().map(|&(k, _)| scale * mwv[k as usize]));
            }
            if let Some((p, m)) = new.as_ref() {
                let scale = dbm_to_mw(p.0);
                let mwv = m.values_mw();
                mw_new.extend(changed.iter().map(|&(k, _)| scale * mwv[k as usize]));
            }

            // Phase 4: per-cell updates, ascending grid order.
            let si = s as i32;
            for (idx, &(k, i)) in changed.iter().enumerate() {
                let (k, i) = (k as usize, i as usize);
                note_sector(
                    touched_epoch,
                    epoch,
                    undo,
                    &state.n_s,
                    &state.a_s,
                    state.best_idx[i],
                );
                self.sub_aggregates(state, i);

                let sub = if has_old { mw_old[idx] } else { 0.0 };
                let add = if has_new { mw_new[idx] } else { 0.0 };
                state.total_mw[i] = (state.total_mw[i] - sub + add).max(0.0);

                if state.best_idx[i] == si {
                    self.update_serving(state, i, si, has_new.then(|| rp_new[k] as f32));
                } else if has_new {
                    self.update_other(state, i, si, rp_new[k] as f32);
                } else if state.best2_idx[i] == si {
                    // The sector vanished while tracked as the second:
                    // some third sector is the new runner-up.
                    state.best2_idx[i] = UNKNOWN_SECTOR;
                    state.best2_rp[i] = f32::NEG_INFINITY;
                }

                state.rmax[i] = self.cell_rmax(state, i) as f32;
                note_sector(
                    touched_epoch,
                    epoch,
                    undo,
                    &state.n_s,
                    &state.a_s,
                    state.best_idx[i],
                );
                self.add_aggregates(state, i);
            }
        });
    }

    /// Top-2 update for a cell whose *serving* sector changed to `nr32`
    /// dBm (`None` when it went off-air). Preserves the historical
    /// semantics exactly: the serving sector keeps the cell on `>=` (the
    /// old grew-while-serving test), and when it weakens below the
    /// runner-up the promotion reproduces what a full covering rescan
    /// would have picked — including the lowest-index-wins tie-break.
    #[inline]
    fn update_serving(&self, state: &mut ModelState, i: usize, si: i32, nr32: Option<f32>) {
        if let Some(nr) = nr32 {
            if nr >= state.best_rp[i] {
                // Grew while serving: stays best, runner-up untouched.
                state.best_rp[i] = nr;
                return;
            }
        }
        // The serving sector weakened or vanished.
        let b2 = state.best2_idx[i];
        if b2 == UNKNOWN_SECTOR {
            // No usable hint (only reachable if a caller skipped the
            // post-commit repair): fall back to the full rescan.
            self.rescan_cell(state, i);
        } else if b2 == NO_SECTOR {
            // No other sector is audible here.
            match nr32 {
                Some(nr) => state.best_rp[i] = nr, // sole server: stays best
                None => {
                    state.best_idx[i] = NO_SECTOR;
                    state.best_rp[i] = f32::NEG_INFINITY;
                }
            }
        } else {
            let b2rp = state.best2_rp[i];
            match nr32 {
                Some(nr) if nr > b2rp => {
                    // Weakened but still ahead of the runner-up.
                    state.best_rp[i] = nr;
                }
                Some(nr) if nr == b2rp && si < b2 => {
                    // Tie: a rescan keeps the lowest index — still `si`
                    // (the runner-up is the lowest index among its
                    // equals, so no third sector can be lower). The
                    // runner-up slot can no longer name a unique second.
                    state.best_rp[i] = nr;
                    state.best2_idx[i] = UNKNOWN_SECTOR;
                    state.best2_rp[i] = f32::NEG_INFINITY;
                }
                _ => {
                    // The runner-up takes over; the new second is some
                    // unscanned third sector.
                    state.best_idx[i] = b2;
                    state.best_rp[i] = b2rp;
                    state.best2_idx[i] = UNKNOWN_SECTOR;
                    state.best2_rp[i] = f32::NEG_INFINITY;
                }
            }
        }
    }

    /// Top-2 update for a cell where the changed sector `si` is *not*
    /// serving and now contributes `nr` dBm. Matches the historical
    /// strict-`>` takeover (ties keep the incumbent best), and keeps the
    /// second slot exact wherever the answer is derivable without a
    /// scan.
    #[inline]
    fn update_other(&self, state: &mut ModelState, i: usize, si: i32, nr: f32) {
        let bi = state.best_idx[i];
        if nr > state.best_rp[i] || bi == NO_SECTOR {
            // `si` takes over as best; the demoted best becomes the
            // runner-up.
            let b2 = state.best2_idx[i];
            let brp = state.best_rp[i];
            if bi == NO_SECTOR {
                state.best2_idx[i] = NO_SECTOR;
                state.best2_rp[i] = f32::NEG_INFINITY;
            } else if b2 == UNKNOWN_SECTOR || (b2 == si && state.best2_rp[i] == brp) {
                // Unknown stays unknown; and if `si` itself was the
                // tracked second *tied* with the old best, a third
                // sector could tie them too — the new second can't be
                // derived locally.
                state.best2_idx[i] = UNKNOWN_SECTOR;
                state.best2_rp[i] = f32::NEG_INFINITY;
            } else if b2 != si && b2 >= 0 && state.best2_rp[i] == brp && b2 < bi {
                // The tracked second ties the demoted best at a lower
                // index: it stays the exact second.
            } else {
                state.best2_idx[i] = bi;
                state.best2_rp[i] = brp;
            }
            state.best_idx[i] = si;
            state.best_rp[i] = nr;
        } else {
            // Does not displace the best; may displace or become the
            // second.
            let b2 = state.best2_idx[i];
            if b2 == si {
                if nr >= state.best2_rp[i] {
                    // Grew while second (still not past the best): the
                    // second stays exact.
                    state.best2_rp[i] = nr;
                } else {
                    // Weakened while second: a third may now lead.
                    state.best2_idx[i] = UNKNOWN_SECTOR;
                    state.best2_rp[i] = f32::NEG_INFINITY;
                }
            } else if b2 == NO_SECTOR {
                // `si` is now the only other audible server.
                state.best2_idx[i] = si;
                state.best2_rp[i] = nr;
            } else if b2 != UNKNOWN_SECTOR {
                let b2rp = state.best2_rp[i];
                if nr > b2rp || (nr == b2rp && si < b2) {
                    state.best2_idx[i] = si;
                    state.best2_rp[i] = nr;
                }
            }
            // An unknown second stays unknown: `si`'s new value alone
            // can't prove it outranks every unscanned third sector.
        }
    }

    /// Rolls back the most recent change exactly.
    pub fn undo(&self, state: &mut ModelState, undo: Undo) {
        magus_obs::counter_inc!("evaluator.undo");
        magus_obs::timed!("evaluator.undo_ns", self.undo_in_place(state, &undo))
    }

    /// Borrowed rollback: restores the state from `undo` without
    /// consuming the record (the probe fast path reuses it).
    fn undo_in_place(&self, state: &mut ModelState, undo: &Undo) {
        if let Some((id, before)) = undo.sector {
            state.config.restore_sector(id, before);
        }
        for cell in undo.cells.iter().rev() {
            let i = cell.i as usize;
            state.total_mw[i] = cell.total_mw;
            state.best_idx[i] = cell.best_idx;
            state.best_rp[i] = cell.best_rp;
            state.best2_idx[i] = cell.best2_idx;
            state.best2_rp[i] = cell.best2_rp;
            state.rmax[i] = cell.rmax;
        }
        for &(s, n, a) in &undo.sectors {
            state.n_s[s as usize] = n;
            state.a_s[s as usize] = a;
        }
        for &(s, _, _) in &undo.sectors {
            state
                .agg
                .update(magus_geo::cast::idx(s), &state.n_s, &state.a_s);
        }
        state.degraded = undo.degraded;
    }

    /// The probe cycle (apply → read → roll back) over the per-thread
    /// reusable undo buffer: no allocation, no second-best repair (the
    /// rollback restores the hints), no nested apply/undo spans.
    ///
    /// At `ObsLevel::Full`, one probe in [`PROBE_SAMPLE_PERIOD`] per
    /// thread records its apply/read/undo split into
    /// `evaluator.probe_{apply,read,undo}_ns` — enough samples for
    /// `magus trace stats` phase attribution without three extra clock
    /// reads on every probe.
    fn probe_with(
        &self,
        state: &mut ModelState,
        change: ConfigChange,
        read: impl FnOnce(&ModelState) -> f64,
    ) -> f64 {
        let sampled = magus_obs::full_enabled()
            && PROBE_SAMPLE_TICK.with(|t| {
                let n = t.get();
                t.set(n.wrapping_add(1));
                n % PROBE_SAMPLE_PERIOD == 0
            });
        PROBE_UNDO.with(|slot| {
            let mut undo = slot.take();
            let value = if sampled {
                magus_obs::counter_inc!("evaluator.probe_sampled");
                magus_obs::timed!(
                    "evaluator.probe_apply_ns",
                    self.apply_into(state, change, &mut undo)
                );
                let value = magus_obs::timed!("evaluator.probe_read_ns", read(state));
                magus_obs::timed!("evaluator.probe_undo_ns", self.undo_in_place(state, &undo));
                value
            } else {
                self.apply_into(state, change, &mut undo);
                let value = read(state);
                self.undo_in_place(state, &undo);
                value
            };
            slot.replace(undo);
            value
        })
    }

    /// Probes a change: applies it, reads the utility, rolls back.
    ///
    /// `evaluator.probe_ns` measures the whole cycle; the fast path
    /// calls no public apply/undo, so `evaluator.apply_ns`/`undo_ns`
    /// no longer nest inside it (they count committed work only).
    pub fn probe_utility(
        &self,
        state: &mut ModelState,
        change: ConfigChange,
        kind: crate::utility::UtilityKind,
    ) -> f64 {
        magus_obs::counter_inc!("evaluator.probe");
        magus_obs::timed!(
            "evaluator.probe_ns",
            self.probe_with(state, change, |st| st.utility(kind))
        )
    }

    /// Probes a change against the *search objective* (see
    /// [`ModelState::objective`]): applies it, reads the objective,
    /// rolls back.
    pub fn probe_objective(
        &self,
        state: &mut ModelState,
        change: ConfigChange,
        kind: crate::utility::UtilityKind,
    ) -> f64 {
        magus_obs::counter_inc!("evaluator.probe");
        magus_obs::timed!(
            "evaluator.probe_ns",
            self.probe_with(state, change, |st| st.objective(kind))
        )
    }

    /// Hypothetical `r_max` at grid `i` if sector `s`'s power changed by
    /// `delta_db` (clamped to hardware limits) — the candidate test of
    /// Algorithm 1, line 4, without touching the state.
    ///
    /// *Exact*: this replays the sweep's own arithmetic for the one cell
    /// — the same product-form mW contributions, the same stored-`f32`
    /// best-server comparisons (including the `>=` serving-grew rule,
    /// strict-`>` takeover, and the runner-up promotion with its
    /// lowest-index tie-break), and the same rate table — so on a
    /// repaired (post-commit) state the result is bit-identical to what
    /// [`Evaluator::apply`] followed by [`ModelState::rmax_bps`] would
    /// report, as the property tests assert. The only divergence is the
    /// store path: hypotheticals read the direct (un-faulted) matrix,
    /// since they derive no persistent state to flag as degraded.
    pub fn hypothetical_rmax(&self, state: &ModelState, i: usize, s: u32, delta_db: Db) -> f64 {
        let sc = state.config.sector(SectorId(s));
        if !sc.on_air {
            return state.rmax[i] as f64;
        }
        let hw = self.network.sector(SectorId(s));
        let new_power = (sc.power.0 + delta_db.0).clamp(hw.min_power.0, hw.max_power.0);
        if new_power == sc.power.0 {
            return state.rmax[i] as f64;
        }
        let c = self.store.spec().coord_of_index(i);
        let mat = self.store.matrix(s, sc.tilt);
        let Some(l) = mat.get(c) else {
            return state.rmax[i] as f64; // outside s's footprint: no effect
        };
        let Some(mw_gain) = mat.get_mw(c) else {
            return state.rmax[i] as f64; // unreachable: same window as `get`
        };
        let total = (state.total_mw[i] - dbm_to_mw(sc.power.0) * mw_gain
            + dbm_to_mw(new_power) * mw_gain)
            .max(0.0);
        let si = s as i32;
        let nr = (new_power + l.0) as f32;
        // Best server under the hypothesis, replaying the sweep's rules.
        let bi = state.best_idx[i];
        let (best_idx, best_rp) = if bi == si {
            if nr >= state.best_rp[i] {
                (si, nr) // grew while serving
            } else {
                match state.best2_idx[i] {
                    NO_SECTOR => (si, nr), // sole server: stays best
                    UNKNOWN_SECTOR => self.scan_best_hypothetical(state, i, s, nr),
                    b2 => {
                        let b2rp = state.best2_rp[i];
                        if nr > b2rp || (nr == b2rp && si < b2) {
                            (si, nr)
                        } else {
                            (b2, b2rp) // the runner-up takes over
                        }
                    }
                }
            }
        } else if nr > state.best_rp[i] || bi == NO_SECTOR {
            (si, nr)
        } else {
            (bi, state.best_rp[i])
        };
        if best_idx == NO_SECTOR {
            return 0.0;
        }
        let signal = dbm_to_mw(best_rp as f64);
        let interference = (total - signal).max(0.0);
        self.rate_table
            .max_rate_bps(signal / (self.noise_mw + interference))
    }

    /// Defensive fallback for [`Evaluator::hypothetical_rmax`] when the
    /// runner-up hint is [`UNKNOWN_SECTOR`] (only possible mid-probe,
    /// before the post-commit repair): scan the covering sectors in the
    /// stored-`f32` domain with sector `s` overridden to `rp_s`,
    /// matching [`Evaluator::rescan_cell`]'s comparisons and tie-break.
    #[cold]
    fn scan_best_hypothetical(
        &self,
        state: &ModelState,
        i: usize,
        s: u32,
        rp_s: f32,
    ) -> (i32, f32) {
        let c = self.store.spec().coord_of_index(i);
        let mut b = NO_SECTOR;
        let mut brp = f32::NEG_INFINITY;
        for &o in self.covering(i) {
            let oc = state.config.sector(SectorId(o));
            if !oc.on_air {
                continue;
            }
            let om = self.store.matrix(o, oc.tilt);
            if let Some(ol) = om.get(c) {
                let rp = if o == s {
                    rp_s
                } else {
                    (oc.power.0 + ol.0) as f32
                };
                if rp > brp {
                    brp = rp;
                    b = o as i32;
                }
            }
        }
        (b, brp)
    }

    /// Uplink SINR (linear) of a UE in grid `i` toward its serving
    /// sector — the paper's "our methodology can also be used for uplink
    /// performance" extension.
    ///
    /// Model: reciprocal channel (the same per-(sector, tilt) path-loss
    /// matrix), UE transmit power `ue_tx_dbm` (LTE power class 3:
    /// 23 dBm), and one active full-power uplink interferer per *other*
    /// on-air sector, located at that sector's worst-coupled served grid
    /// toward the victim — a conservative single-interferer bound. Noise
    /// uses the same bandwidth as the downlink mapper.
    pub fn uplink_sinr(&self, state: &ModelState, i: usize, ue_tx_dbm: Dbm) -> f64 {
        let Some(serving) = state.serving(i) else {
            return 0.0;
        };
        let sc = state.config.sector(SectorId(serving));
        let mat = self.store.matrix(serving, sc.tilt);
        let c = self.store.spec().coord_of_index(i);
        let Some(l) = mat.get(c) else { return 0.0 };
        let signal = dbm_to_mw(ue_tx_dbm.0 + l.0);
        // Interference: for each other sector audible at the serving
        // site's cell, one UE transmitting at full power from the
        // strongest-coupled grid *it serves* inside the serving sector's
        // footprint. Approximated by the best cross-coupling between the
        // interfering sector's serving set and the serving sector's
        // matrix.
        let mut interference = 0.0;
        for &o in self.covering(i) {
            if o == serving {
                continue;
            }
            let oc = state.config.sector(SectorId(o));
            if !oc.on_air {
                continue;
            }
            // The interfering UE sits roughly at its own cell edge toward
            // the victim: couple at the interfering sector's own path
            // loss toward grid i, floored to the victim-serving loss
            // (the UE cannot be better coupled to the victim than a UE
            // *in* grid i would be).
            let om = self.store.matrix(o, oc.tilt);
            if let Some(ol) = om.get(c) {
                interference += dbm_to_mw(ue_tx_dbm.0 + ol.0.min(l.0));
            }
        }
        signal / (self.noise_mw + interference)
    }

    /// Uplink maximum rate at grid `i` in bits/s (same TBS chain as the
    /// downlink; single UE on the band).
    pub fn uplink_rmax_bps(&self, state: &ModelState, i: usize, ue_tx_dbm: Dbm) -> f64 {
        self.rate
            .max_rate_bps(self.uplink_sinr(state, i, ue_tx_dbm))
    }

    /// Exhaustively recomputes every grid's top-2 servers and checks the
    /// state's incremental tracking against them — the test/diagnostic
    /// oracle for the `best2` machinery, O(grids × sectors).
    ///
    /// `best` must hold the maximum received power bit-for-bit, achieved
    /// by the claimed sector (the *index* may legitimately differ from a
    /// fresh scan on exact ties: the sweep keeps the incumbent). A
    /// `best2` entry must be the exact runner-up — outside a probe's
    /// apply/undo window the committed-apply repair pass guarantees no
    /// cell is left [`UNKNOWN_SECTOR`], so an unknown here is an error.
    pub fn verify_top2(&self, state: &ModelState) -> Result<(), String> {
        let spec = *self.store.spec();
        for i in 0..state.num_grids() {
            let c = spec.coord_of_index(i);
            // Exact recompute: received power (f32, the stored
            // representation) of every on-air covering sector.
            let mut rps: Vec<(u32, f32)> = Vec::new();
            for &o in self.covering(i) {
                let oc = state.config.sector(SectorId(o));
                if !oc.on_air {
                    continue;
                }
                if let Some(l) = self.store.matrix(o, oc.tilt).get(c) {
                    rps.push((o, (oc.power.0 + l.0) as f32));
                }
            }
            let bi = state.best_idx[i];
            let b2 = state.best2_idx[i];
            if rps.is_empty() {
                if bi != NO_SECTOR || b2 != NO_SECTOR {
                    return Err(format!("grid {i}: no audible sector but best {bi}/{b2}"));
                }
                continue;
            }
            let max_rp = rps
                .iter()
                .map(|&(_, rp)| rp)
                .fold(f32::NEG_INFINITY, f32::max);
            if bi < 0 {
                return Err(format!("grid {i}: audible sectors but best {bi}"));
            }
            let claimed = rps.iter().find(|&&(o, _)| o as u32 == bi as u32);
            match claimed {
                Some(&(_, rp)) if rp.to_bits() == state.best_rp[i].to_bits() && rp == max_rp => {}
                _ => {
                    return Err(format!(
                        "grid {i}: best ({bi}, {}) is not the max {max_rp}",
                        state.best_rp[i]
                    ));
                }
            }
            // Exact runner-up among the *other* sectors.
            let second = rps.iter().filter(|&&(o, _)| o as i32 != bi).fold(
                None::<(u32, f32)>,
                |acc, &(o, rp)| match acc {
                    Some((_, arp)) if rp <= arp => acc,
                    _ => Some((o, rp)),
                },
            );
            match (second, b2) {
                (None, NO_SECTOR) => {}
                (None, got) => return Err(format!("grid {i}: no runner-up but best2 {got}")),
                (Some(_), NO_SECTOR) => {
                    return Err(format!(
                        "grid {i}: best2 claims none but a runner-up exists"
                    ));
                }
                (Some(_), UNKNOWN_SECTOR) => {
                    return Err(format!("grid {i}: best2 left unknown outside a probe"));
                }
                (Some((_, srp)), got) => {
                    let grp = state.best2_rp[i];
                    let achieved = rps
                        .iter()
                        .any(|&(o, rp)| o as i32 == got && rp.to_bits() == grp.to_bits());
                    if grp.to_bits() != srp.to_bits() || !achieved || got == bi {
                        return Err(format!(
                            "grid {i}: best2 ({got}, {grp}) vs exact runner-up {srp}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The serving map (serving sector per grid) of a state — the input
    /// to [`magus_net::UeLayer::uniform_per_sector`].
    pub fn serving_map(&self, state: &ModelState) -> Vec<Option<u32>> {
        (0..state.num_grids()).map(|i| state.serving(i)).collect()
    }

    /// Grid indices (within `within`, or everywhere if `None`) whose
    /// per-UE rate in `degraded` is strictly worse than in `reference` —
    /// the affected-grid set **G** of Algorithm 1.
    pub fn degraded_grids(
        &self,
        reference: &ModelState,
        degraded: &ModelState,
        within: Option<GridWindow>,
    ) -> Vec<u32> {
        let spec = *self.store.spec();
        (0..reference.num_grids())
            .filter(|&i| {
                if let Some(w) = within {
                    if !w.contains(spec.coord_of_index(i)) {
                        return false;
                    }
                }
                degraded.rate_bps(i) < reference.rate_bps(i) - 1e-9
            })
            .map(|i| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityKind;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, Db, Dbm, GridSpec, PointM};
    use magus_lte::Bandwidth;
    use magus_net::{BsId, Sector, SectorId};
    use magus_propagation::{AntennaParams, PropagationModel, SectorSite, SpmParams, TiltSettings};
    use magus_terrain::Terrain;

    /// Two opposing sectors, 3 km apart, on a flat 6 km raster.
    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(1_500.0, 0.0), 150.0, 6_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            )
        };
        let network = Arc::new(magus_net::Network::new(vec![
            mk(0, 0.0, 90.0),
            mk(1, 3_000.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            12_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), Db(7.0));
        let ue = UeLayer::constant(spec, 1.0);
        let config = Configuration::nominal(&network);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            config,
        )
    }

    #[test]
    fn initial_state_assigns_nearest_serving() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let spec = *ev.store().spec();
        let near0 = spec.coord_of_point(PointM::new(400.0, 0.0)).unwrap();
        let near1 = spec.coord_of_point(PointM::new(2_600.0, 0.0)).unwrap();
        assert_eq!(st.serving(spec.index(near0)), Some(0));
        assert_eq!(st.serving(spec.index(near1)), Some(1));
    }

    #[test]
    fn utility_positive_and_coverage_counts_ues() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let cov = st.utility(UtilityKind::Coverage);
        assert!(cov > 0.0);
        // Coverage utility is a UE count: bounded by total UEs.
        assert!(cov <= ev.ue_layer().total() + 1e-9);
        assert!(st.utility(UtilityKind::Performance) > 0.0);
    }

    #[test]
    fn taking_sector_down_degrades_utility() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let before = st.utility(UtilityKind::Performance);
        let undo = ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let during = st.utility(UtilityKind::Performance);
        assert!(during < before, "{during} !< {before}");
        ev.undo(&mut st, undo);
        assert!((st.utility(UtilityKind::Performance) - before).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_full_rebuild() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let changes = [
            ConfigChange::PowerDelta(SectorId(0), Db(2.0)),
            ConfigChange::SetOnAir(SectorId(1), false),
            ConfigChange::SetTilt(SectorId(0), 2),
            ConfigChange::PowerDelta(SectorId(0), Db(-4.0)),
            ConfigChange::SetOnAir(SectorId(1), true),
        ];
        for ch in changes {
            ev.apply(&mut st, ch);
            let fresh = ev.initial_state(st.config());
            for i in 0..st.num_grids() {
                assert_eq!(
                    st.serving(i),
                    fresh.serving(i),
                    "serving mismatch at {i} after {ch:?}"
                );
                assert!(
                    (st.rmax_bps(i) - fresh.rmax_bps(i)).abs() < 1.0,
                    "rmax mismatch at {i} after {ch:?}"
                );
            }
            for k in UtilityKind::ALL {
                assert!(
                    (st.utility(k) - fresh.utility(k)).abs() < 1e-6,
                    "utility {k} mismatch after {ch:?}"
                );
            }
        }
    }

    #[test]
    fn undo_restores_exactly() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let reference = ev.initial_state(&config);
        let undo1 = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(3.0)));
        let undo2 = ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        ev.undo(&mut st, undo2);
        ev.undo(&mut st, undo1);
        assert_eq!(st.config(), reference.config());
        for i in 0..st.num_grids() {
            assert_eq!(st.best_idx[i], reference.best_idx[i]);
            assert_eq!(st.best_rp[i], reference.best_rp[i]);
            assert_eq!(st.best2_idx[i], reference.best2_idx[i]);
            assert_eq!(st.best2_rp[i], reference.best2_rp[i]);
            assert_eq!(st.rmax[i], reference.rmax[i]);
            assert_eq!(st.total_mw[i], reference.total_mw[i]);
        }
        assert_eq!(st.n_s, reference.n_s);
        assert_eq!(st.a_s, reference.a_s);
        assert_eq!(st.bit_fingerprint(), reference.bit_fingerprint());
    }

    #[test]
    fn top2_exact_after_committed_applies() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        ev.verify_top2(&st).expect("initial top-2");
        for ch in [
            ConfigChange::PowerDelta(SectorId(0), Db(-6.0)),
            ConfigChange::SetTilt(SectorId(1), 3),
            ConfigChange::SetOnAir(SectorId(0), false),
            ConfigChange::SetOnAir(SectorId(0), true),
            ConfigChange::PowerDelta(SectorId(1), Db(4.0)),
        ] {
            ev.apply(&mut st, ch);
            ev.verify_top2(&st)
                .unwrap_or_else(|e| panic!("after {ch:?}: {e}"));
        }
    }

    #[test]
    fn probe_leaves_state_unchanged() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let before = st.utility(UtilityKind::Performance);
        let probed = ev.probe_utility(
            &mut st,
            ConfigChange::PowerDelta(SectorId(0), Db(3.0)),
            UtilityKind::Performance,
        );
        assert!((st.utility(UtilityKind::Performance) - before).abs() < 1e-12);
        assert_ne!(probed, before);
    }

    #[test]
    fn hypothetical_rmax_matches_real_apply() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        // Take sector 1 down so boosting sector 0 matters.
        ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let spec = *ev.store().spec();
        let i = spec.index(spec.coord_of_point(PointM::new(2_600.0, 0.0)).unwrap());
        let hypo = ev.hypothetical_rmax(&st, i, 0, Db(3.0));
        let undo = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(3.0)));
        let real = st.rmax_bps(i);
        ev.undo(&mut st, undo);
        assert!((hypo - real).abs() < 1.0, "hypo {hypo} vs real {real}");
    }

    #[test]
    fn degraded_grids_nonempty_after_outage() {
        let (ev, config) = fixture();
        let reference = ev.initial_state(&config);
        let mut st = ev.initial_state(&config);
        ev.apply(&mut st, ConfigChange::SetOnAir(SectorId(1), false));
        let degraded = ev.degraded_grids(&reference, &st, None);
        assert!(!degraded.is_empty());
        // Every reported grid really did degrade.
        for &g in &degraded {
            assert!(st.rate_bps(g as usize) < reference.rate_bps(g as usize));
        }
    }

    #[test]
    fn uplink_is_weaker_than_downlink_but_correlated() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let mut served = 0usize;
        let mut uplink_served = 0usize;
        for i in 0..st.num_grids() {
            if st.rmax_bps(i) > 0.0 {
                served += 1;
                // 23 dBm UE vs 43 dBm sector: uplink never out-covers
                // downlink under a reciprocal channel.
                if ev.uplink_rmax_bps(&st, i, Dbm(23.0)) > 0.0 {
                    uplink_served += 1;
                }
            } else {
                assert_eq!(ev.uplink_rmax_bps(&st, i, Dbm(23.0)), 0.0);
            }
        }
        assert!(uplink_served > 0, "some grids must have uplink service");
        assert!(uplink_served <= served);
    }

    #[test]
    fn uplink_rate_monotone_in_ue_power() {
        let (ev, config) = fixture();
        let st = ev.initial_state(&config);
        let spec = *ev.store().spec();
        let i = spec.index(spec.coord_of_point(PointM::new(400.0, 0.0)).unwrap());
        assert!(ev.uplink_sinr(&st, i, Dbm(23.0)) >= ev.uplink_sinr(&st, i, Dbm(10.0)));
    }

    #[test]
    fn pruned_probes_are_bit_identical_and_neighborhood_bounded() {
        use rand::Rng;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        let idx = ev.store().neighbor_index();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for step in 0..64u32 {
            let s = rng.random_range(0..2u32);
            let ch = match rng.random_range(0..3u32) {
                0 => ConfigChange::PowerDelta(SectorId(s), Db(rng.random_range(-6.0..6.0))),
                1 => ConfigChange::SetTilt(SectorId(s), rng.random_range(0..17) as u8),
                _ => ConfigChange::SetOnAir(SectorId(s), rng.random_range(0..2) == 0),
            };

            // A probe must restore the state bit-for-bit, tree included.
            let cov = st.agg.coverage().to_bits();
            let perf = st.agg.performance().to_bits();
            let fp = st.bit_fingerprint();
            ev.probe_utility(&mut st, ch, UtilityKind::Performance);
            assert_eq!(st.bit_fingerprint(), fp, "probe {step} mutated state");
            assert_eq!(
                st.agg.coverage().to_bits(),
                cov,
                "probe {step} mutated tree"
            );
            assert_eq!(st.agg.performance().to_bits(), perf);

            let undo = ev.apply(&mut st, ch);
            // Pruning contract: a change to sector `s` only moves the
            // aggregates of `s` and its interference neighbors — what
            // lets the scale path skip everything else.
            for &(t, _, _) in &undo.sectors {
                assert!(
                    t == s || idx.contains(s, t),
                    "step {step}: {ch:?} touched sector {t}"
                );
            }
            // The incrementally-maintained utility tree must equal a tree
            // rebuilt from the same aggregates, bit for bit.
            let mut full = UtilityAgg::default();
            full.rebuild(&st.n_s, &st.a_s);
            assert_eq!(
                st.agg.coverage().to_bits(),
                full.coverage().to_bits(),
                "step {step}: coverage tree diverged after {ch:?}"
            );
            assert_eq!(
                st.agg.performance().to_bits(),
                full.performance().to_bits(),
                "step {step}: performance tree diverged after {ch:?}"
            );
        }
    }

    #[test]
    fn clamped_power_change_is_a_noop() {
        let (ev, config) = fixture();
        let mut st = ev.initial_state(&config);
        // Drive to max first.
        ev.apply(&mut st, ConfigChange::SetPower(SectorId(0), Dbm(46.0)));
        let before = st.utility(UtilityKind::Performance);
        let undo = ev.apply(&mut st, ConfigChange::PowerDelta(SectorId(0), Db(5.0)));
        assert!(undo.cells.is_empty());
        assert_eq!(st.utility(UtilityKind::Performance), before);
    }
}
