//! The Magus analysis model (paper §4): coverage & capacity evaluation.
//!
//! Given a [`magus_net::Configuration`], the model computes, per grid:
//! received power from every audible sector (Formula 1), the serving
//! sector (best RP), SINR (Formula 2), the maximum rate via the LTE
//! lookup chain, the sector load N(g) (Formula 3) and the actual rate
//! r(g) = r_max(g)/N(g) (Formula 4) — and from those, the configuration's
//! utility (§5 Formulas 5/6).
//!
//! The paper's search probes *thousands* of candidate configurations, so
//! evaluation speed is the whole game. The implementation therefore keeps
//! an incremental [`ModelState`]:
//!
//! * per grid: total received power (linear mW, so interference sums are
//!   physical), the best server and its RP, and the cached max rate;
//! * per sector: the in-service UE mass `N_s` and the utility aggregate
//!   `A_s = Σ UE(g)·log10(r_max(g))`, which lets both paper utilities be
//!   recomputed in O(#sectors) after any change:
//!   `U_perf = Σ_s A_s − N_s·log10(N_s)` and `U_cov = Σ_s N_s`.
//!
//! A configuration change touches only the changed sector's footprint
//! window; every mutation produces an exact [`Undo`] record, so the
//! search can *probe* a change (apply → read utility → undo) without any
//! floating-point drift. `cargo test -p magus-model` includes property
//! tests asserting incremental ≡ from-scratch evaluation under random
//! change sequences.

#![forbid(unsafe_code)]

pub mod evaluator;
pub mod invariant;
pub mod service;
pub mod setup;
pub mod state;
pub mod utility;

pub use evaluator::Evaluator;
pub use service::ServiceMap;
pub use setup::{standard_setup, standard_setup_with, StandardModel, UeModel};
pub use state::{ModelState, Undo};
pub use utility::UtilityKind;

/// Single-import surface.
pub mod prelude {
    pub use crate::evaluator::Evaluator;
    pub use crate::service::ServiceMap;
    pub use crate::setup::{standard_setup, standard_setup_with, StandardModel, UeModel};
    pub use crate::state::ModelState;
    pub use crate::utility::UtilityKind;
}
