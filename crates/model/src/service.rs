//! Immutable service-map snapshots (paper Figures 4/5).

use crate::evaluator::Evaluator;
use crate::state::ModelState;
use magus_geo::{GridMap, GridSpec};

/// A frozen snapshot of per-grid service: serving sector, SINR, max rate,
/// and actual rate — the data behind the paper's coverage-map figures.
#[derive(Debug, Clone)]
pub struct ServiceMap {
    spec: GridSpec,
    serving: Vec<Option<u32>>,
    sinr_db: Vec<f64>,
    rmax_bps: Vec<f64>,
    rate_bps: Vec<f64>,
}

impl ServiceMap {
    /// Captures a snapshot of `state`.
    pub fn capture(ev: &Evaluator, state: &ModelState) -> ServiceMap {
        let spec = *ev.store().spec();
        let n = state.num_grids();
        let mut serving = Vec::with_capacity(n);
        let mut sinr_db = Vec::with_capacity(n);
        let mut rmax_bps = Vec::with_capacity(n);
        let mut rate_bps = Vec::with_capacity(n);
        for i in 0..n {
            serving.push(state.serving(i));
            let s = ev.sinr_linear(state, i);
            sinr_db.push(if s > 0.0 {
                10.0 * s.log10()
            } else {
                f64::NEG_INFINITY
            });
            rmax_bps.push(state.rmax_bps(i));
            rate_bps.push(state.rate_bps(i));
        }
        ServiceMap {
            spec,
            serving,
            sinr_db,
            rmax_bps,
            rate_bps,
        }
    }

    /// The raster spec.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Serving sector per grid.
    pub fn serving(&self) -> &[Option<u32>] {
        &self.serving
    }

    /// SINR in dB per grid (−∞ where unserved).
    pub fn sinr_db(&self) -> &[f64] {
        &self.sinr_db
    }

    /// Max rate per grid, bits/s.
    pub fn rmax_bps(&self) -> &[f64] {
        &self.rmax_bps
    }

    /// Actual per-UE rate per grid, bits/s.
    pub fn rate_bps(&self) -> &[f64] {
        &self.rate_bps
    }

    /// Fraction of grids with service (`r_max > 0`).
    pub fn coverage_fraction(&self) -> f64 {
        let served = self.rmax_bps.iter().filter(|&&r| r > 0.0).count();
        served as f64 / self.rmax_bps.len() as f64
    }

    /// SINR raster (for rendering).
    pub fn sinr_raster(&self) -> GridMap<f64> {
        GridMap::from_vec(self.spec, self.sinr_db.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, Db, PointM};
    use magus_lte::{Bandwidth, RateMapper};
    use magus_net::{BsId, Configuration, Network, Sector, SectorId, UeLayer};
    use magus_propagation::{
        AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    };
    use magus_terrain::Terrain;
    use std::sync::Arc;

    fn fixture() -> (Evaluator, ModelState) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 200.0, 4_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let network = Arc::new(Network::new(vec![Sector::macro_defaults(
            SectorId(0),
            BsId(0),
            SectorSite {
                position: PointM::new(0.0, 0.0),
                height_m: 30.0,
                azimuth: Bearing::new(0.0),
                antenna: AntennaParams::default(),
            },
        )]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            10_000.0,
        ));
        let ue = UeLayer::constant(spec, 1.0);
        let ev = Evaluator::new(
            store,
            network,
            RateMapper::new(Bandwidth::Mhz10),
            thermal_noise(Bandwidth::Mhz10.hz(), Db(7.0)),
            ue,
        );
        let st = ev.initial_state(&Configuration::nominal(ev.network()));
        (ev, st)
    }

    #[test]
    fn snapshot_is_consistent_with_state() {
        let (ev, st) = fixture();
        let map = ServiceMap::capture(&ev, &st);
        for i in 0..st.num_grids() {
            assert_eq!(map.serving()[i], st.serving(i));
            assert_eq!(map.rmax_bps()[i], st.rmax_bps(i));
        }
    }

    #[test]
    fn single_sector_covers_its_boresight() {
        let (ev, st) = fixture();
        let map = ServiceMap::capture(&ev, &st);
        assert!(map.coverage_fraction() > 0.2, "{}", map.coverage_fraction());
        // A cell 600 m north (boresight) must be served with strong SINR.
        let spec = *map.spec();
        let i = spec.index(spec.coord_of_point(PointM::new(0.0, 600.0)).unwrap());
        assert_eq!(map.serving()[i], Some(0));
        assert!(map.sinr_db()[i] > 10.0);
    }

    #[test]
    fn sinr_raster_has_matching_spec() {
        let (ev, st) = fixture();
        let map = ServiceMap::capture(&ev, &st);
        assert_eq!(map.sinr_raster().spec(), map.spec());
    }
}
