//! Debug-build runtime invariants for the analysis model.
//!
//! The static side of the safety story is `magus-audit`; this module is
//! the dynamic side: cheap structural checks that run in debug/test
//! builds (where `debug_assertions` is on) and compile to nothing in
//! release. They catch the failure classes the auditor can only point
//! at — NaN readings, shape mismatches, and out-of-range indices —
//! right where the bad value enters the model instead of three crates
//! downstream.

use crate::state::{ModelState, NO_SECTOR, UNKNOWN_SECTOR};
use magus_propagation::{PathLossStore, NUM_TILT_SETTINGS};

/// Structural soundness of the per-grid top-2 server tracking: array
/// shapes, sentinel ranges, no self-duplication, and the runner-up
/// never outranking the best. (Semantic exactness — "is this really
/// the second-strongest sector" — is the job of
/// [`crate::Evaluator::verify_top2`], which needs store access.)
fn top2_structure(state: &ModelState, n_grids: usize, n_sectors: usize) -> Result<(), String> {
    if state.best_idx.len() != n_grids
        || state.best_rp.len() != n_grids
        || state.best2_idx.len() != n_grids
        || state.best2_rp.len() != n_grids
        || state.rmax.len() != n_grids
    {
        return Err("per-grid array shapes drifted".to_string());
    }
    for i in 0..n_grids {
        let b = state.best_idx[i];
        let b2 = state.best2_idx[i];
        if b != NO_SECTOR && (b < 0 || b as usize >= n_sectors) {
            return Err(format!("grid {i}: best index {b} out of range"));
        }
        if b == NO_SECTOR && b2 != NO_SECTOR {
            return Err(format!("grid {i}: no best but second {b2}"));
        }
        if b2 >= 0 {
            if b2 as usize >= n_sectors {
                return Err(format!("grid {i}: second index {b2} out of range"));
            }
            if b2 == b {
                return Err(format!("grid {i}: second duplicates best {b}"));
            }
            if state.best2_rp[i] > state.best_rp[i] {
                return Err(format!(
                    "grid {i}: second rp {} above best rp {}",
                    state.best2_rp[i], state.best_rp[i]
                ));
            }
        } else if b2 != NO_SECTOR && b2 != UNKNOWN_SECTOR {
            return Err(format!("grid {i}: second index {b2} is no sentinel"));
        }
    }
    Ok(())
}

/// Validates a path-loss store against its own raster: every sector
/// window within grid bounds, and every already-cached matrix
/// structurally sound. Debug builds only; no-op in release.
pub fn debug_validate_store(store: &PathLossStore) {
    #[cfg(debug_assertions)]
    {
        let spec = *store.spec();
        for s in 0..magus_geo::cast::len_u32(store.num_sectors()) {
            let w = store.window(s);
            debug_assert!(
                spec.contains_window(w),
                "sector {s} window {w:?} exceeds raster {}x{}",
                spec.width,
                spec.height
            );
        }
    }
    let _ = store;
}

/// Validates that a tilt index addresses a real tilt setting.
#[inline]
pub fn debug_validate_tilt(tilt: u8) {
    debug_assert!(
        tilt < NUM_TILT_SETTINGS,
        "tilt index {tilt} out of range (< {NUM_TILT_SETTINGS})"
    );
}

/// Runtime (release-mode) state validation, for recovery machinery:
/// after a fault is retried or rolled back, the migration executor must
/// *prove* the surviving state is structurally sound before trusting it
/// — in every build, not just debug ones. Checks the same properties as
/// [`debug_validate_state`] plus finiteness of every per-grid rate
/// aggregate, and reports the first violation instead of panicking.
pub fn validate_state(state: &ModelState, n_grids: usize, n_sectors: usize) -> Result<(), String> {
    if state.num_grids() != n_grids {
        return Err(format!(
            "state covers {} grids, expected {n_grids}",
            state.num_grids()
        ));
    }
    if state.n_s.len() != n_sectors || state.a_s.len() != n_sectors {
        return Err(format!(
            "sector aggregates drifted: {} / {} vs {n_sectors}",
            state.n_s.len(),
            state.a_s.len()
        ));
    }
    if let Some(s) = state.n_s.iter().position(|v| !v.is_finite()) {
        return Err(format!("non-finite load N_s at sector {s}"));
    }
    if let Some(s) = state.a_s.iter().position(|v| !v.is_finite()) {
        return Err(format!("non-finite aggregate A_s at sector {s}"));
    }
    if let Some(s) = state.n_s.iter().position(|&v| v < 0.0) {
        return Err(format!("negative load N_s at sector {s}"));
    }
    top2_structure(state, n_grids, n_sectors)?;
    for i in 0..n_grids {
        let r = state.rmax_bps(i);
        if !r.is_finite() || r < 0.0 {
            return Err(format!("bad r_max {r} at grid {i}"));
        }
    }
    Ok(())
}

/// Validates a model state's shape against the grid/sector counts it
/// claims to describe, and that aggregate fields are finite.
pub fn debug_validate_state(state: &ModelState, n_grids: usize, n_sectors: usize) {
    debug_assert_eq!(state.num_grids(), n_grids, "state grid count drifted");
    debug_assert!(
        state.n_s.len() == n_sectors && state.a_s.len() == n_sectors,
        "state sector aggregates drifted: {} / {} vs {n_sectors}",
        state.n_s.len(),
        state.a_s.len()
    );
    debug_assert!(
        state.n_s.iter().all(|v| v.is_finite()),
        "non-finite sector load in state"
    );
    #[cfg(debug_assertions)]
    if let Err(e) = top2_structure(state, n_grids, n_sectors) {
        panic!("top-2 tracking structurally unsound: {e}");
    }
    let _ = (state, n_grids, n_sectors);
}
