//! 3GPP LTE link adaptation for the Magus reproduction.
//!
//! The paper (§4.1) maps a grid's SINR to a user rate through the standard
//! LTE lookup chain:
//!
//! > "we look up the corresponding Modulation and Coding Scheme (MCS)
//! > index for a given SINR value, and then look up the Transport Block
//! > Size (TBS) index (TS 36.213 Table 7.1.7.1-1) and finally the
//! > Transport Block Size (Table 7.1.7.2.1-1) to map the SINR to the rate."
//!
//! This crate implements exactly that chain:
//!
//! * [`cqi`] — SINR → CQI (attenuated-Shannon efficiency match against the
//!   TS 36.213 Table 7.2.3-1 efficiencies, the approximation used by the
//!   LENA simulator the paper cites) and CQI → MCS.
//! * [`tbs`] — MCS → TBS index (Table 7.1.7.1-1) and TBS index × PRB count
//!   → transport block size in bits (Table 7.1.7.2.1-1, standard
//!   bandwidth columns).
//! * [`rate`] — the composed [`RateMapper`]: SINR → bits/s for a given
//!   channel bandwidth, including the out-of-service threshold
//!   [`SINR_MIN_DB`] below which the paper sets `r_max(g) = 0`.

#![forbid(unsafe_code)]

pub mod cqi;
pub mod rate;
pub mod tbs;

pub use cqi::{cqi_from_sinr, mcs_from_cqi, spectral_efficiency, Cqi, Mcs};
pub use rate::{Bandwidth, RateMapper, RateTable, SINR_MIN_DB};
pub use tbs::{itbs_from_mcs, transport_block_bits, TbsIndex, MAX_ITBS};
