//! SINR → CQI → MCS mapping.
//!
//! The Channel Quality Indicator is selected as the highest CQI whose
//! spectral efficiency (TS 36.213 Table 7.2.3-1) does not exceed the
//! link's achievable efficiency. Achievable efficiency is modeled with the
//! attenuated Shannon bound `η = min(α · log2(1 + SINR), η_max)` with
//! `α = 0.6` — the standard approximation from 3GPP TR 36.942 also used by
//! the LENA simulator the paper cites for its SINR → MCS lookup. The
//! ceiling is set to 5.6 bits/s/Hz, just above the CQI-15 efficiency, so
//! the full CQI range is reachable at high SINR (a 4.x ceiling would
//! artificially forbid 64QAM 8/9 links that real networks do use).

use serde::{Deserialize, Serialize};

/// A CQI value, 0–15. CQI 0 means "out of range" (no usable link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cqi(pub u8);

/// An MCS index, 0–28 (29–31 are reserved and never produced here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mcs(pub u8);

/// Spectral efficiencies of CQI 1..=15 from TS 36.213 Table 7.2.3-1
/// (bits/s/Hz).
pub const CQI_EFFICIENCY: [f64; 15] = [
    0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223, 3.9023,
    4.5234, 5.1152, 5.5547,
];

/// Highest MCS usable at each CQI 1..=15 (conservative downlink mapping;
/// matches the widely used LENA/amc mapping to within one index).
const CQI_TO_MCS: [u8; 15] = [0, 0, 2, 4, 6, 8, 11, 13, 16, 18, 21, 23, 25, 27, 28];

/// Attenuated-Shannon spectral efficiency for a linear SINR.
///
/// `η = min(0.6 · log2(1 + sinr), 5.6)`, floored at zero for non-positive
/// SINR.
pub fn spectral_efficiency(sinr_linear: f64) -> f64 {
    if sinr_linear <= 0.0 {
        return 0.0;
    }
    (0.6 * (1.0 + sinr_linear).log2()).min(5.6)
}

/// Maps a linear SINR to a CQI (0 = out of range).
pub fn cqi_from_sinr(sinr_linear: f64) -> Cqi {
    let eff = spectral_efficiency(sinr_linear);
    let mut cqi = 0u8;
    for (i, &e) in CQI_EFFICIENCY.iter().enumerate() {
        if eff >= e {
            cqi = (i + 1) as u8;
        } else {
            break;
        }
    }
    Cqi(cqi)
}

/// Maps a CQI to the MCS the scheduler would select.
///
/// Returns `None` for CQI 0 (out of range) — there is no transmittable
/// MCS.
pub fn mcs_from_cqi(cqi: Cqi) -> Option<Mcs> {
    match cqi.0 {
        0 => None,
        c @ 1..=15 => Some(Mcs(CQI_TO_MCS[usize::from(c - 1)])),
        _ => Some(Mcs(CQI_TO_MCS[14])), // clamp malformed CQI to the top
    }
}

/// Convenience: SINR in dB → CQI.
pub fn cqi_from_sinr_db(sinr_db: f64) -> Cqi {
    cqi_from_sinr(10f64.powf(sinr_db / 10.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_monotone_and_capped() {
        let mut prev = 0.0;
        for i in 0..200 {
            let sinr = 10f64.powf((i as f64 - 100.0) / 10.0);
            let e = spectral_efficiency(sinr);
            assert!(e >= prev, "efficiency decreased at {i}");
            prev = e;
        }
        assert_eq!(spectral_efficiency(1e12), 5.6);
        assert_eq!(spectral_efficiency(0.0), 0.0);
        assert_eq!(spectral_efficiency(-1.0), 0.0);
    }

    #[test]
    fn cqi_monotone_in_sinr() {
        let mut prev = Cqi(0);
        for db in -200..=400 {
            let c = cqi_from_sinr_db(db as f64 / 10.0);
            assert!(c >= prev, "CQI decreased at {db}");
            prev = c;
        }
        assert_eq!(prev, Cqi(15));
    }

    #[test]
    fn cqi_thresholds_sane() {
        // Around -7 dB the link becomes usable (CQI 1); well below, CQI 0.
        assert_eq!(cqi_from_sinr_db(-15.0), Cqi(0));
        assert!(cqi_from_sinr_db(-5.0) >= Cqi(1));
        // 20 dB is a strong link.
        assert!(cqi_from_sinr_db(20.0) >= Cqi(11));
    }

    #[test]
    fn mcs_mapping() {
        assert_eq!(mcs_from_cqi(Cqi(0)), None);
        assert_eq!(mcs_from_cqi(Cqi(1)), Some(Mcs(0)));
        assert_eq!(mcs_from_cqi(Cqi(15)), Some(Mcs(28)));
        // Monotone.
        let mut prev = Mcs(0);
        for c in 1..=15u8 {
            let m = mcs_from_cqi(Cqi(c)).unwrap();
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    fn cqi_efficiencies_strictly_increasing() {
        for w in CQI_EFFICIENCY.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
