//! Transport block size tables (TS 36.213 §7.1.7).
//!
//! Two lookups, exactly as the paper describes:
//!
//! 1. MCS index → TBS index `I_TBS` (Table 7.1.7.1-1).
//! 2. `(I_TBS, N_PRB)` → transport block size in bits (Table 7.1.7.2.1-1).
//!
//! The full 3GPP TBS table has 110 PRB columns; we carry the columns for
//! the six standard LTE channel bandwidths (6, 15, 25, 50, 75, 100 PRBs —
//! i.e. 1.4/3/5/10/15/20 MHz), which is all any experiment in the paper
//! needs. For intermediate PRB allocations (used by the testbed's MAC
//! scheduler when splitting a subframe), [`transport_block_bits`]
//! interpolates linearly between columns — TBS is near-linear in N_PRB by
//! construction, so the interpolation error is far below scheduling noise.

use crate::cqi::Mcs;
use serde::{Deserialize, Serialize};

/// A TBS index `I_TBS`, 0..=26.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TbsIndex(pub u8);

/// Largest valid TBS index.
pub const MAX_ITBS: u8 = 26;

/// PRB column headers of [`TBS_TABLE`].
pub const TBS_PRB_COLUMNS: [u32; 6] = [6, 15, 25, 50, 75, 100];

/// Transport block sizes in bits: rows are `I_TBS` 0..=26, columns are
/// [`TBS_PRB_COLUMNS`]. Values from TS 36.213 Table 7.1.7.2.1-1.
pub const TBS_TABLE: [[u32; 6]; 27] = [
    [152, 392, 680, 1_384, 2_088, 2_792],
    [208, 520, 904, 1_800, 2_728, 3_624],
    [256, 648, 1_096, 2_216, 3_368, 4_584],
    [328, 872, 1_416, 2_856, 4_392, 5_736],
    [408, 1_064, 1_800, 3_624, 5_352, 7_224],
    [504, 1_320, 2_216, 4_392, 6_712, 8_760],
    [600, 1_544, 2_600, 5_160, 7_736, 10_296],
    [712, 1_800, 3_112, 6_200, 9_144, 12_216],
    [808, 2_088, 3_496, 6_968, 10_680, 14_112],
    [936, 2_344, 4_008, 7_992, 11_832, 15_840],
    [1_032, 2_664, 4_392, 8_760, 12_960, 17_568],
    [1_192, 2_984, 4_968, 9_912, 14_688, 19_848],
    [1_352, 3_368, 5_736, 11_448, 16_992, 22_920],
    [1_544, 3_880, 6_456, 12_960, 19_080, 25_456],
    [1_736, 4_264, 7_224, 14_112, 21_384, 28_336],
    [1_800, 4_584, 7_736, 15_264, 22_920, 30_576],
    [1_928, 4_968, 7_992, 16_416, 24_496, 32_856],
    [2_152, 5_352, 9_144, 18_336, 27_376, 36_696],
    [2_344, 5_992, 9_912, 19_848, 29_296, 39_232],
    [2_600, 6_456, 10_680, 21_384, 32_856, 43_816],
    [2_792, 6_712, 11_448, 22_920, 35_160, 46_888],
    [2_984, 7_480, 12_576, 25_456, 37_888, 51_024],
    [3_240, 7_992, 13_536, 27_376, 40_576, 55_056],
    [3_496, 8_504, 14_112, 28_336, 42_368, 57_336],
    [3_752, 9_144, 15_264, 30_576, 46_888, 61_664],
    [4_008, 9_528, 15_840, 31_704, 47_736, 63_776],
    [4_584, 11_064, 18_336, 36_696, 55_056, 75_376],
];

/// MCS → TBS index per TS 36.213 Table 7.1.7.1-1.
///
/// Returns `None` for reserved MCS indices (29–31).
pub fn itbs_from_mcs(mcs: Mcs) -> Option<TbsIndex> {
    let i = match mcs.0 {
        m @ 0..=9 => m,       // QPSK
        m @ 10..=16 => m - 1, // 16QAM
        m @ 17..=28 => m - 2, // 64QAM
        _ => return None,     // reserved
    };
    Some(TbsIndex(i))
}

/// Transport block size in bits for `(itbs, n_prb)`.
///
/// Exact at the standard bandwidth columns; linearly interpolated between
/// them (and proportionally extrapolated below 6 PRBs). Returns 0 for a
/// zero-PRB allocation.
pub fn transport_block_bits(itbs: TbsIndex, n_prb: u32) -> u32 {
    assert!(itbs.0 <= MAX_ITBS, "invalid I_TBS {}", itbs.0);
    if n_prb == 0 {
        return 0;
    }
    let row = &TBS_TABLE[itbs.0 as usize];
    let n = n_prb.min(TBS_PRB_COLUMNS[TBS_PRB_COLUMNS.len() - 1]);
    // Below the first column: scale proportionally from the 6-PRB entry.
    if n <= TBS_PRB_COLUMNS[0] {
        return magus_geo::cast::round_u32((row[0] as f64) * n as f64 / TBS_PRB_COLUMNS[0] as f64);
    }
    // Find the bracketing columns.
    for w in 0..TBS_PRB_COLUMNS.len() - 1 {
        let (c0, c1) = (TBS_PRB_COLUMNS[w], TBS_PRB_COLUMNS[w + 1]);
        if n <= c1 {
            let t = (n - c0) as f64 / (c1 - c0) as f64;
            return magus_geo::cast::round_u32(
                row[w] as f64 + (row[w + 1] as f64 - row[w] as f64) * t,
            );
        }
    }
    row[TBS_PRB_COLUMNS.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itbs_mapping_matches_standard_shape() {
        assert_eq!(itbs_from_mcs(Mcs(0)), Some(TbsIndex(0)));
        assert_eq!(itbs_from_mcs(Mcs(9)), Some(TbsIndex(9)));
        assert_eq!(itbs_from_mcs(Mcs(10)), Some(TbsIndex(9))); // modulation switch
        assert_eq!(itbs_from_mcs(Mcs(16)), Some(TbsIndex(15)));
        assert_eq!(itbs_from_mcs(Mcs(17)), Some(TbsIndex(15))); // modulation switch
        assert_eq!(itbs_from_mcs(Mcs(28)), Some(TbsIndex(26)));
        assert_eq!(itbs_from_mcs(Mcs(29)), None);
        assert_eq!(itbs_from_mcs(Mcs(31)), None);
    }

    #[test]
    fn tbs_table_rows_monotone_in_itbs() {
        for col in 0..TBS_PRB_COLUMNS.len() {
            for r in 0..TBS_TABLE.len() - 1 {
                assert!(
                    TBS_TABLE[r + 1][col] >= TBS_TABLE[r][col],
                    "column {col} not monotone at row {r}"
                );
            }
        }
    }

    #[test]
    fn tbs_table_rows_monotone_in_prb() {
        for (r, row) in TBS_TABLE.iter().enumerate() {
            for w in row.windows(2) {
                assert!(w[1] > w[0], "row {r} not monotone in PRB");
            }
        }
    }

    #[test]
    fn exact_at_columns() {
        assert_eq!(transport_block_bits(TbsIndex(26), 100), 75_376);
        assert_eq!(transport_block_bits(TbsIndex(0), 6), 152);
        assert_eq!(transport_block_bits(TbsIndex(9), 50), 7_992);
    }

    #[test]
    fn interpolation_between_columns() {
        let at_25 = transport_block_bits(TbsIndex(10), 25);
        let at_50 = transport_block_bits(TbsIndex(10), 50);
        let mid = transport_block_bits(TbsIndex(10), 37); // ~48% of the way
        assert!(mid > at_25 && mid < at_50, "{at_25} < {mid} < {at_50}");
    }

    #[test]
    fn small_allocations_scale_down() {
        let one = transport_block_bits(TbsIndex(5), 1);
        let six = transport_block_bits(TbsIndex(5), 6);
        assert!(one > 0 && one < six);
        assert_eq!(transport_block_bits(TbsIndex(5), 0), 0);
    }

    #[test]
    fn interpolated_tbs_monotone_in_prb() {
        for itbs in [0u8, 9, 15, 26] {
            let mut prev = 0;
            for prb in 1..=100 {
                let v = transport_block_bits(TbsIndex(itbs), prb);
                assert!(v >= prev, "I_TBS {itbs} decreased at {prb} PRB");
                prev = v;
            }
        }
    }

    #[test]
    fn clamps_above_100_prb() {
        assert_eq!(
            transport_block_bits(TbsIndex(4), 110),
            transport_block_bits(TbsIndex(4), 100)
        );
    }

    #[test]
    #[should_panic(expected = "invalid I_TBS")]
    fn invalid_itbs_panics() {
        transport_block_bits(TbsIndex(27), 50);
    }
}
