//! The composed SINR → rate mapping of paper §4.1.
//!
//! [`RateMapper`] walks the full chain — SINR → CQI → MCS → `I_TBS` → TBS
//! → bits/s — for a fixed channel bandwidth, with the paper's
//! out-of-service rule: below `SINR_min` the grid is out of service and
//! `r_max(g) = 0`.

use crate::cqi::{cqi_from_sinr, mcs_from_cqi};
use crate::tbs::{itbs_from_mcs, transport_block_bits};
use serde::{Deserialize, Serialize};

/// The minimum-service SINR threshold in dB (paper §4.1: "There is a SINR
/// threshold SINR_min to provide the minimum service").
///
/// −6.5 dB is the conventional LTE cell-edge QPSK 1/8 operating point and
/// sits just above the CQI-1 threshold of the attenuated Shannon mapping.
pub const SINR_MIN_DB: f64 = -6.5;

/// LTE channel bandwidths and their PRB counts (TS 36.101).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bandwidth {
    /// 1.4 MHz, 6 PRBs.
    Mhz1_4,
    /// 3 MHz, 15 PRBs.
    Mhz3,
    /// 5 MHz, 25 PRBs.
    Mhz5,
    /// 10 MHz, 50 PRBs — the paper's single-carrier evaluation bandwidth
    /// and its testbed's experimental license bandwidth.
    Mhz10,
    /// 15 MHz, 75 PRBs.
    Mhz15,
    /// 20 MHz, 100 PRBs.
    Mhz20,
}

impl Bandwidth {
    /// Number of physical resource blocks.
    pub fn n_prb(self) -> u32 {
        match self {
            Bandwidth::Mhz1_4 => 6,
            Bandwidth::Mhz3 => 15,
            Bandwidth::Mhz5 => 25,
            Bandwidth::Mhz10 => 50,
            Bandwidth::Mhz15 => 75,
            Bandwidth::Mhz20 => 100,
        }
    }

    /// Occupied bandwidth in Hz (used for the thermal-noise term of the
    /// SINR denominator). This is the transmission bandwidth
    /// (PRBs × 180 kHz), not the nominal channel spacing.
    pub fn hz(self) -> f64 {
        self.n_prb() as f64 * 180e3
    }
}

/// Maps SINR to achievable downlink rate for a fixed bandwidth.
///
/// ```
/// use magus_lte::{Bandwidth, RateMapper};
/// let m = RateMapper::new(Bandwidth::Mhz10);
/// assert_eq!(m.max_rate_bps_db(-20.0), 0.0);            // out of service
/// assert!(m.max_rate_bps_db(10.0) > 5_000_000.0);       // mid-cell
/// assert_eq!(m.max_rate_bps_db(35.0), 36_696_000.0);    // I_TBS 26 peak
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateMapper {
    bandwidth: Bandwidth,
    sinr_min_linear: f64,
}

impl RateMapper {
    /// Creates a mapper with the default [`SINR_MIN_DB`] service
    /// threshold.
    pub fn new(bandwidth: Bandwidth) -> RateMapper {
        RateMapper::with_sinr_min(bandwidth, SINR_MIN_DB)
    }

    /// Creates a mapper with a custom service threshold in dB.
    ///
    /// The paper intentionally chooses a *high* threshold when rendering
    /// coverage maps (Fig. 4) "to show the clear difference between grids
    /// that receive good service and other grids"; experiments use the
    /// default.
    pub fn with_sinr_min(bandwidth: Bandwidth, sinr_min_db: f64) -> RateMapper {
        RateMapper {
            bandwidth,
            sinr_min_linear: 10f64.powf(sinr_min_db / 10.0),
        }
    }

    /// The mapper's bandwidth.
    pub fn bandwidth(self) -> Bandwidth {
        self.bandwidth
    }

    /// The service threshold as a linear SINR.
    pub fn sinr_min_linear(self) -> f64 {
        self.sinr_min_linear
    }

    /// Maximum sustainable rate in bits/s for a *linear* SINR — the
    /// paper's `r_max(g)`: full-buffer single-user rate at 1 TTI/ms.
    ///
    /// Returns 0.0 below the service threshold (grid out of service).
    pub fn max_rate_bps(self, sinr_linear: f64) -> f64 {
        if sinr_linear < self.sinr_min_linear || !sinr_linear.is_finite() {
            return 0.0;
        }
        let cqi = cqi_from_sinr(sinr_linear);
        let Some(mcs) = mcs_from_cqi(cqi) else {
            return 0.0;
        };
        let Some(itbs) = itbs_from_mcs(mcs) else {
            return 0.0;
        };
        // One transport block per 1 ms TTI.
        transport_block_bits(itbs, self.bandwidth.n_prb()) as f64 * 1000.0
    }

    /// Convenience: rate for a SINR in dB.
    pub fn max_rate_bps_db(self, sinr_db: f64) -> f64 {
        self.max_rate_bps(10f64.powf(sinr_db / 10.0))
    }

    /// Precomputes the transcendental-free lookup form of this mapper.
    pub fn table(self) -> RateTable {
        RateTable::new(self)
    }
}

/// Precomputed lookup form of [`RateMapper::max_rate_bps`].
///
/// The mapper's hot path spends its time in `log2` (CQI selection) and
/// the TBS chain; both are step functions of SINR, so the whole mapping
/// collapses to 15 linear-SINR thresholds and 15 rates. The thresholds
/// are found by bisecting [`cqi_from_sinr`] over the f64 bit lattice,
/// so table lookups return *bit-identical* rates to the closed-form
/// chain for every input — this is asserted by tests, and is what lets
/// the evaluator swap the table in without perturbing optimization
/// trajectories.
///
/// Kept separate from [`RateMapper`] (which stays a small serde-stable
/// value type); build one per evaluator with [`RateMapper::table`].
#[derive(Debug, Clone)]
pub struct RateTable {
    sinr_min_linear: f64,
    /// `thresholds[i]` = smallest linear SINR mapping to CQI `i + 1`.
    thresholds: [f64; 15],
    /// `rates[i]` = bits/s delivered at CQI `i + 1`.
    rates: [f64; 15],
}

impl RateTable {
    /// Builds the lookup table for a mapper.
    pub fn new(mapper: RateMapper) -> RateTable {
        let mut thresholds = [0.0f64; 15];
        let mut rates = [0.0f64; 15];
        for (i, t) in thresholds.iter_mut().enumerate() {
            *t = cqi_crossover((i + 1) as u8);
        }
        for (i, r) in rates.iter_mut().enumerate() {
            let Some(mcs) = mcs_from_cqi(crate::cqi::Cqi((i + 1) as u8)) else {
                continue;
            };
            let Some(itbs) = itbs_from_mcs(mcs) else {
                continue;
            };
            *r = transport_block_bits(itbs, mapper.bandwidth.n_prb()) as f64 * 1000.0;
        }
        RateTable {
            sinr_min_linear: mapper.sinr_min_linear,
            thresholds,
            rates,
        }
    }

    /// Maximum sustainable rate in bits/s for a linear SINR; bit-equal
    /// to [`RateMapper::max_rate_bps`] on the mapper this table was
    /// built from.
    #[inline]
    pub fn max_rate_bps(&self, sinr_linear: f64) -> f64 {
        if !sinr_linear.is_finite() || sinr_linear < self.sinr_min_linear {
            return 0.0;
        }
        let mut cqi = 0usize;
        while cqi < 15 && sinr_linear >= self.thresholds[cqi] {
            cqi += 1;
        }
        if cqi == 0 {
            return 0.0;
        }
        self.rates[cqi - 1]
    }

    /// Every rate this table can emit, ascending by CQI (may contain
    /// duplicates where adjacent CQIs share a TBS). `max_rate_bps`
    /// returns only these values or 0.0 — callers can precompute
    /// per-rate derived quantities (e.g. `log10`) against this set.
    pub fn rate_levels(&self) -> &[f64; 15] {
        &self.rates
    }
}

/// Smallest linear SINR whose CQI is at least `k`, found by bisecting
/// the (monotone) [`cqi_from_sinr`] over the positive-f64 bit lattice.
fn cqi_crossover(k: u8) -> f64 {
    let mut lo = 0u64; // 0.0 → CQI 0
    let mut hi = 1e12f64.to_bits(); // far above the CQI-15 crossover
    debug_assert!(cqi_from_sinr(1e12).0 >= k);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if cqi_from_sinr(f64::from_bits(mid)).0 >= k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    f64::from_bits(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_is_out_of_service() {
        let m = RateMapper::new(Bandwidth::Mhz10);
        assert_eq!(m.max_rate_bps_db(-7.0), 0.0);
        assert_eq!(m.max_rate_bps_db(-40.0), 0.0);
        assert!(m.max_rate_bps_db(-6.0) > 0.0);
    }

    #[test]
    fn rate_monotone_in_sinr() {
        let m = RateMapper::new(Bandwidth::Mhz10);
        let mut prev = 0.0;
        for db in -100..=400 {
            let r = m.max_rate_bps_db(db as f64 / 10.0);
            assert!(r >= prev, "rate decreased at {} dB", db as f64 / 10.0);
            prev = r;
        }
    }

    #[test]
    fn peak_rates_match_expectations() {
        // 10 MHz single layer peaks at I_TBS 26, 50 PRB = 36,696 bits/ms
        // ≈ 36.7 Mbps; 20 MHz at 75.4 Mbps.
        let m10 = RateMapper::new(Bandwidth::Mhz10);
        assert_eq!(m10.max_rate_bps_db(35.0), 36_696_000.0);
        let m20 = RateMapper::new(Bandwidth::Mhz20);
        assert_eq!(m20.max_rate_bps_db(35.0), 75_376_000.0);
    }

    #[test]
    fn wider_bandwidth_never_slower() {
        let m10 = RateMapper::new(Bandwidth::Mhz10);
        let m20 = RateMapper::new(Bandwidth::Mhz20);
        for db in [-5.0, 0.0, 5.0, 10.0, 20.0, 30.0] {
            assert!(m20.max_rate_bps_db(db) >= m10.max_rate_bps_db(db));
        }
    }

    #[test]
    fn custom_threshold_shifts_cutoff() {
        let strict = RateMapper::with_sinr_min(Bandwidth::Mhz10, 5.0);
        assert_eq!(strict.max_rate_bps_db(4.0), 0.0);
        assert!(strict.max_rate_bps_db(6.0) > 0.0);
    }

    #[test]
    fn non_finite_sinr_is_zero_rate() {
        let m = RateMapper::new(Bandwidth::Mhz10);
        assert_eq!(m.max_rate_bps(f64::NAN), 0.0);
        assert_eq!(m.max_rate_bps(f64::INFINITY), 0.0);
    }

    #[test]
    fn table_is_bit_identical_to_mapper() {
        for mapper in [
            RateMapper::new(Bandwidth::Mhz10),
            RateMapper::new(Bandwidth::Mhz20),
            RateMapper::with_sinr_min(Bandwidth::Mhz5, 5.0),
        ] {
            let table = mapper.table();
            // Dense sweep across the whole operating range, plus the
            // exact crossover bits and their neighbours.
            for centi_db in -2000..=4000 {
                let sinr = 10f64.powf(centi_db as f64 / 1000.0);
                assert_eq!(
                    table.max_rate_bps(sinr).to_bits(),
                    mapper.max_rate_bps(sinr).to_bits(),
                    "diverged at linear SINR {sinr}"
                );
            }
            for &t in &table.thresholds {
                for bits in [t.to_bits() - 1, t.to_bits(), t.to_bits() + 1] {
                    let sinr = f64::from_bits(bits);
                    assert_eq!(
                        table.max_rate_bps(sinr).to_bits(),
                        mapper.max_rate_bps(sinr).to_bits(),
                        "diverged at crossover neighbour {sinr}"
                    );
                }
            }
            assert_eq!(table.max_rate_bps(f64::NAN), 0.0);
            assert_eq!(table.max_rate_bps(f64::INFINITY), 0.0);
        }
    }

    #[test]
    fn rate_levels_cover_all_outputs() {
        let table = RateMapper::new(Bandwidth::Mhz10).table();
        let levels = table.rate_levels();
        for centi_db in -2000..=4000 {
            let r = table.max_rate_bps(10f64.powf(centi_db as f64 / 1000.0));
            assert!(r == 0.0 || levels.contains(&r));
        }
    }

    #[test]
    fn bandwidth_prbs_and_hz() {
        assert_eq!(Bandwidth::Mhz10.n_prb(), 50);
        assert_eq!(Bandwidth::Mhz10.hz(), 9e6);
        assert_eq!(Bandwidth::Mhz1_4.n_prb(), 6);
    }
}
