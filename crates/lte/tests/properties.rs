//! Property-based tests of the LTE link-adaptation chain.

use magus_lte::{
    cqi_from_sinr, itbs_from_mcs, mcs_from_cqi, transport_block_bits, Bandwidth, Mcs, RateMapper,
    TbsIndex, MAX_ITBS,
};
use proptest::prelude::*;

proptest! {
    /// The full SINR → rate chain is monotone non-decreasing.
    #[test]
    fn rate_chain_monotone(a in -30.0..45.0f64, b in -30.0..45.0f64) {
        let m = RateMapper::new(Bandwidth::Mhz10);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.max_rate_bps_db(lo) <= m.max_rate_bps_db(hi));
    }

    /// CQI selection is monotone in SINR.
    #[test]
    fn cqi_monotone(a in 0.0..10_000.0f64, b in 0.0..10_000.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cqi_from_sinr(lo) <= cqi_from_sinr(hi));
    }

    /// TBS is monotone in PRBs for every valid I_TBS, including between
    /// the 3GPP table columns (interpolated region).
    #[test]
    fn tbs_monotone_in_prb(itbs in 0u8..=26, p in 1u32..100) {
        let t = TbsIndex(itbs);
        prop_assert!(transport_block_bits(t, p) <= transport_block_bits(t, p + 1));
    }

    /// TBS is monotone in I_TBS for every PRB allocation.
    #[test]
    fn tbs_monotone_in_itbs(itbs in 0u8..26, prb in 1u32..=100) {
        prop_assert!(
            transport_block_bits(TbsIndex(itbs), prb)
                <= transport_block_bits(TbsIndex(itbs + 1), prb)
        );
    }

    /// Every non-reserved MCS maps into the valid I_TBS range, and the
    /// mapping is monotone.
    #[test]
    fn mcs_to_itbs_valid_and_monotone(m in 0u8..28) {
        let a = itbs_from_mcs(Mcs(m)).expect("valid MCS");
        let b = itbs_from_mcs(Mcs(m + 1)).expect("valid MCS");
        prop_assert!(a.0 <= MAX_ITBS && b.0 <= MAX_ITBS);
        prop_assert!(a <= b);
    }

    /// CQI → MCS never produces a reserved index.
    #[test]
    fn cqi_to_mcs_never_reserved(sinr in 0.0..100_000.0f64) {
        if let Some(m) = mcs_from_cqi(cqi_from_sinr(sinr)) {
            prop_assert!(m.0 <= 28);
            prop_assert!(itbs_from_mcs(m).is_some());
        }
    }

    /// Wider bandwidths never reduce the rate at equal SINR.
    #[test]
    fn bandwidth_ordering(db in -10.0..40.0f64) {
        let r5 = RateMapper::new(Bandwidth::Mhz5).max_rate_bps_db(db);
        let r10 = RateMapper::new(Bandwidth::Mhz10).max_rate_bps_db(db);
        let r20 = RateMapper::new(Bandwidth::Mhz20).max_rate_bps_db(db);
        prop_assert!(r5 <= r10 && r10 <= r20);
    }
}
