//! The migration executor: carrying out a gradual schedule against an
//! unreliable network.
//!
//! [`crate::gradual::plan_gradual`] produces the *intent* — an ordered
//! list of [`GradualStep`]s. This module executes that intent under the
//! process-global [`magus_fault`] plan, where tuning changes can fail to
//! apply (`ApplyStep`), apply but lose their ack (`Straggler`), and the
//! model evaluations backing every verification can hit degraded store
//! reads. The recovery contract:
//!
//! * **Bounded retry with sim-time backoff.** Each change gets up to the
//!   plan's retry budget; between attempts the executor advances its
//!   *simulated* clock by [`magus_fault::backoff_ms`] (exponential). No
//!   wall-clock is spent, so fault runs are as fast — and as
//!   deterministic — as clean ones.
//! * **Diff-based verification.** `PowerDelta` is not idempotent, so a
//!   failed ack is never answered by blind re-application. The executor
//!   tracks the expected configuration and compares the live one against
//!   it: a straggler (change applied, ack lost) verifies clean and is
//!   counted, not re-applied.
//! * **Rollback to the last invariant-safe configuration.** When a
//!   change fails past the retry budget, the whole step is rolled back
//!   to the configuration the step started from — which held the
//!   gradual invariant (`utility ≥ f(C_after)`) — and the run moves on.
//!   After the schedule, a *reconciliation* pass applies
//!   `config.diff(C_after)` (absolute, idempotent changes) so rolled-
//!   back steps still converge to `C_after` whenever the faults allow.
//! * **Invariants re-proved after every recovery.** Each step ends with
//!   a from-scratch model build whose structural invariants are checked
//!   with [`magus_model::invariant::validate_state`] in *every* build
//!   (not just debug); violations are recorded in the report, and the
//!   chaos-matrix gate asserts there are none.
//! * **Checkpoint/resume determinism.** Because fault decisions are
//!   pure in `(step, change, attempt)` and every step's evaluation
//!   starts from a from-scratch build of its starting configuration, a
//!   run checkpointed at any step boundary and resumed replays to a
//!   bit-identical [`MigrationReport`].

use crate::gradual::GradualOutcome;
use magus_fault::FaultPoint;
use magus_model::{Evaluator, UtilityKind};
use magus_net::{ConfigChange, Configuration};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Knobs of the migration executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrateParams {
    /// Utility whose floor (`f(C_after)`) the schedule protects; used
    /// for the per-step utility bookkeeping in the report.
    pub utility: UtilityKind,
    /// Base of the exponential sim-time retry backoff, milliseconds.
    pub base_backoff_ms: u64,
    /// Sim-time cost of cleanly applying one step, milliseconds.
    pub step_interval_ms: u64,
}

impl Default for MigrateParams {
    fn default() -> Self {
        MigrateParams {
            utility: UtilityKind::Performance,
            base_backoff_ms: 50,
            step_interval_ms: 1_000,
        }
    }
}

/// What happened while executing one schedule step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Step index in the schedule (the reconciliation pass, if any,
    /// reports as index `schedule.len()`).
    pub step: usize,
    /// Apply attempts across the step's changes (1 per clean apply).
    pub attempts: u32,
    /// Retries after injected apply failures.
    pub retries: u32,
    /// Stragglers detected by diff verification (applied, ack lost).
    pub stragglers: u32,
    /// Changes deferred to a later reconciliation round after their
    /// retry budget ran out (reconciliation stages only; scheduled
    /// steps roll back instead).
    pub deferred: u32,
    /// `true` when the step failed past the retry budget and was rolled
    /// back to its starting configuration.
    pub rolled_back: bool,
    /// Simulated clock after the step, milliseconds.
    pub sim_time_ms: u64,
    /// Utility of the configuration left behind by the step.
    pub utility: f64,
    /// Whether the step's evaluation used any stale (last-known-good)
    /// path-loss matrix.
    pub degraded: bool,
}

/// The executor's full account of one migration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Per-step accounts, in execution order.
    pub steps: Vec<StepReport>,
    /// Steps rolled back (subset of `steps`).
    pub rolled_back_steps: usize,
    /// `true` when the final configuration is exactly `C_after`.
    pub completed: bool,
    /// Simulated end-to-end duration, milliseconds.
    pub sim_time_ms: u64,
    /// Whether any step's evaluation was degraded.
    pub degraded: bool,
    /// Structural invariant violations found after recoveries (the
    /// chaos gate asserts this stays empty).
    pub invariant_violations: Vec<String>,
    /// The configuration the run ended on.
    pub final_config: Configuration,
}

/// A resumable snapshot of migration progress, taken at a step
/// boundary. Serializable so a crashed run can persist it and a new
/// process can replay the remainder bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationCheckpoint {
    /// Index of the next schedule step to execute.
    pub next_step: usize,
    /// Simulated clock at the checkpoint, milliseconds.
    pub sim_time_ms: u64,
    /// Reports of the steps completed so far.
    pub steps: Vec<StepReport>,
    /// Rolled-back count so far.
    pub rolled_back_steps: usize,
    /// The configuration in effect at the checkpoint.
    pub config: Configuration,
}

/// Either a finished run or a checkpoint taken at `stop_after` steps.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// The run executed the whole schedule (plus reconciliation).
    Complete(MigrationReport),
    /// The run stopped at a step boundary; resume with
    /// [`execute_gradual_from`].
    Checkpoint(MigrationCheckpoint),
}

/// Executes `schedule` from `before` toward `after` under the active
/// fault plan. See the module docs for the recovery contract.
pub fn execute_gradual(
    ev: &Evaluator,
    before: &Configuration,
    after: &Configuration,
    schedule: &GradualOutcome,
    params: &MigrateParams,
) -> MigrationReport {
    let mut checkpoint: Option<MigrationCheckpoint> = None;
    loop {
        match execute_gradual_from(ev, before, after, schedule, params, checkpoint.take(), None) {
            ExecOutcome::Complete(report) => return report,
            // Unreachable with `stop_after: None`, but resuming is the
            // correct (and panic-free) answer if it ever happens.
            ExecOutcome::Checkpoint(c) => checkpoint = Some(c),
        }
    }
}

/// [`execute_gradual`] with explicit resume and crash points: starts
/// from `resume` (or from `before` when `None`) and, when `stop_after`
/// is set, returns a [`MigrationCheckpoint`] once that many *additional*
/// steps have executed — simulating a crash at a step boundary.
pub fn execute_gradual_from(
    ev: &Evaluator,
    before: &Configuration,
    after: &Configuration,
    schedule: &GradualOutcome,
    params: &MigrateParams,
    resume: Option<MigrationCheckpoint>,
    stop_after: Option<usize>,
) -> ExecOutcome {
    let _span = magus_obs::span_enter("execute_gradual");
    let plan = magus_fault::active_plan();
    let retry_limit = plan.as_ref().map_or(0, |p| p.retry_limit());

    let (start_step, mut sim_time_ms, mut steps, mut rolled_back_steps, mut config) = match resume {
        Some(c) => (
            c.next_step,
            c.sim_time_ms,
            c.steps,
            c.rolled_back_steps,
            c.config,
        ),
        None => (0, 0, Vec::new(), 0, before.clone()),
    };
    let mut invariant_violations: Vec<String> = Vec::new();
    let mut executed_now = 0usize;

    // Schedule steps, then up to RECONCILE_ROUNDS reconciliation passes
    // (index >= len), each re-targeting C_after in case a step rolled
    // back. Every round re-issues the remaining diff as *new* commands —
    // fresh fault-site keys — so a permanently lost command delays, but
    // cannot wedge, the migration; only a change unlucky in every round
    // leaves the run incomplete.
    const RECONCILE_ROUNDS: usize = 8;
    let total_stages = schedule.steps.len() + RECONCILE_ROUNDS;
    for stage in start_step..total_stages {
        if stop_after == Some(executed_now) {
            return ExecOutcome::Checkpoint(MigrationCheckpoint {
                next_step: stage,
                sim_time_ms,
                steps,
                rolled_back_steps,
                config,
            });
        }
        let changes: Vec<ConfigChange> = if stage < schedule.steps.len() {
            schedule.steps[stage].changes.clone()
        } else {
            config.diff(after)
        };
        if stage >= schedule.steps.len() && changes.is_empty() {
            break; // nothing left to reconcile
        }

        let step_start = config.clone();
        let mut attempts = 0u32;
        let mut retries = 0u32;
        let mut stragglers = 0u32;
        let mut deferred = 0u32;
        let mut rolled_back = false;
        if stage >= schedule.steps.len() {
            magus_obs::counter_inc!("migrate.reconcile_rounds");
        }

        'changes: for (ci, &change) in changes.iter().enumerate() {
            let key = magus_fault::site_key(stage as u64, ci as u64, 0);
            let expected = config.with(ev.network(), change);
            let mut attempt = 0u32;
            loop {
                attempts += 1;
                // Straggler: the change reaches the eNodeB (takes
                // effect) but the ack is lost. ApplyStep: the change is
                // dropped outright. Both surface to the executor as a
                // failed apply.
                let (applied, acked) = match &plan {
                    Some(p) if p.injects(FaultPoint::Straggler, key, attempt) => (true, false),
                    Some(p) if p.injects(FaultPoint::ApplyStep, key, attempt) => (false, false),
                    _ => (true, true),
                };
                if applied {
                    config = expected.clone();
                }
                if acked {
                    break;
                }
                // Verification instead of blind re-apply: if the live
                // configuration already matches the expectation, the
                // "failure" was a lost ack.
                if config.diff(&expected).is_empty() {
                    stragglers += 1;
                    magus_obs::counter_inc!("migrate.stragglers");
                    break;
                }
                if attempt >= retry_limit {
                    rolled_back = true;
                    rolled_back_steps += 1;
                    if let Some(p) = &plan {
                        p.note_rollback();
                    }
                    magus_obs::trace_event!("migrate.rollback",
                        "step" => stage,
                        "change" => ci,
                    );
                    if stage >= schedule.steps.len() {
                        // Reconciliation: the round's changes are
                        // independent absolute re-issues, so keep the
                        // ones that landed and defer only this change to
                        // the next round (a fresh command, fresh fault
                        // key) instead of discarding the round.
                        deferred += 1;
                        magus_obs::counter_inc!("migrate.deferred_changes");
                        continue 'changes;
                    }
                    // Scheduled step: mid-step configurations may sit
                    // below the utility floor, so roll the whole step
                    // back to its invariant-safe starting configuration.
                    config = step_start.clone();
                    break 'changes;
                }
                sim_time_ms += magus_fault::backoff_ms(params.base_backoff_ms, attempt);
                if let Some(p) = &plan {
                    p.note_retry();
                }
                retries += 1;
                attempt += 1;
            }
        }
        sim_time_ms += params.step_interval_ms;

        // Re-prove the surviving configuration: from-scratch build (so
        // resume is bit-identical) plus runtime invariant validation
        // after any recovery action.
        let state = ev.initial_state(&config);
        if retries > 0 || stragglers > 0 || rolled_back {
            if let Err(v) = magus_model::invariant::validate_state(
                &state,
                ev.store().spec().len(),
                ev.network().num_sectors(),
            ) {
                invariant_violations.push(format!("step {stage}: {v}"));
            }
        }
        let utility = state.utility(params.utility);
        let step_degraded = state.is_degraded();
        magus_obs::counter_add!("migrate.retries", retries as u64);
        magus_obs::trace_event!("migrate.step",
            "step" => stage,
            "attempts" => attempts,
            "retries" => retries,
            "stragglers" => stragglers,
            "deferred" => deferred,
            "rolled_back" => rolled_back,
            "utility" => utility,
            "degraded" => step_degraded,
            "sim_time_ms" => sim_time_ms,
        );
        steps.push(StepReport {
            step: stage,
            attempts,
            retries,
            stragglers,
            deferred,
            rolled_back,
            sim_time_ms,
            utility,
            degraded: step_degraded,
        });
        executed_now += 1;
    }

    let completed = config.diff(after).is_empty();
    let degraded = steps.iter().any(|s| s.degraded);
    magus_obs::counter_add!("migrate.rolled_back_steps", rolled_back_steps as u64);
    ExecOutcome::Complete(MigrationReport {
        steps,
        rolled_back_steps,
        completed,
        sim_time_ms,
        degraded,
        invariant_violations,
        final_config: config,
    })
}

/// Rehearses a precomputed playbook mitigation under the active fault
/// plan: plans the gradual migration for `entry`'s outage and executes
/// it with the executor, returning the full report. This is the NOC's
/// "will this playbook entry actually deploy?" drill.
pub fn rehearse_entry(
    ev: &Evaluator,
    entry: &crate::playbook::PlaybookEntry,
    gradual: &crate::gradual::GradualParams,
    params: &MigrateParams,
) -> MigrationReport {
    let schedule = crate::gradual::plan_gradual(
        ev,
        &entry.outcome.config_before,
        &entry.outcome.config_after,
        &entry.outcome.targets,
        gradual,
    );
    execute_gradual(
        ev,
        &entry.outcome.config_before,
        &entry.outcome.config_after,
        &schedule,
        params,
    )
}

/// Convenience for tests and the chaos harness: runs `f` with `plan`
/// installed globally, restoring the previous plan afterwards. The
/// caller is responsible for serializing concurrent *tests* (see
/// [`magus_fault::test_guard`]); production callers install one plan at
/// process start.
pub fn with_fault_plan<T>(plan: Arc<magus_fault::FaultPlan>, f: impl FnOnce() -> T) -> T {
    let _guard = magus_fault::PlanGuard::install(plan);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradual::{plan_gradual, GradualParams};
    use crate::tuning::{power_search, SearchParams};
    use magus_fault::FaultPlan;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, GridSpec, PointM};
    use magus_lte::{Bandwidth, RateMapper};
    use magus_net::{BsId, Network, Sector, SectorId, UeLayer};
    use magus_propagation::{
        AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    };
    use magus_terrain::Terrain;
    use std::sync::Arc;

    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 150.0, 9_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            let mut s = Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            );
            s.nominal_ue_count = 100.0;
            s
        };
        let network = Arc::new(Network::new(vec![
            mk(0, -2_500.0, 90.0),
            mk(1, 0.0, 0.0),
            mk(2, 2_500.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            14_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), magus_geo::Db(7.0));
        let nominal = Configuration::nominal(&network);
        let ue = UeLayer::constant(spec, 1.0);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            nominal,
        )
    }

    fn plan_fixture() -> (Evaluator, Configuration, Configuration, GradualOutcome) {
        let (ev, before) = fixture();
        let reference = ev.initial_state(&before);
        let mut state = ev.initial_state(&before);
        ev.apply(
            &mut state,
            magus_net::ConfigChange::SetOnAir(SectorId(1), false),
        );
        power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        let after = state.config().clone();
        let schedule = plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
        (ev, before, after, schedule)
    }

    #[test]
    fn clean_run_reaches_c_after() {
        let _lock = magus_fault::test_guard();
        magus_fault::set_plan(None);
        let (ev, before, after, schedule) = plan_fixture();
        let report = execute_gradual(&ev, &before, &after, &schedule, &MigrateParams::default());
        assert!(report.completed);
        assert_eq!(report.final_config, after);
        assert_eq!(report.rolled_back_steps, 0);
        assert!(report.invariant_violations.is_empty());
        assert!(!report.degraded);
        assert_eq!(report.steps.len(), schedule.steps.len());
        assert!(report.steps.iter().all(|s| s.retries == 0));
    }

    #[test]
    fn zero_rate_plan_matches_no_plan_byte_identically() {
        let _lock = magus_fault::test_guard();
        magus_fault::set_plan(None);
        let (ev, before, after, schedule) = plan_fixture();
        let params = MigrateParams::default();
        let baseline = execute_gradual(&ev, &before, &after, &schedule, &params);
        let faulted = with_fault_plan(Arc::new(FaultPlan::zero(123)), || {
            execute_gradual(&ev, &before, &after, &schedule, &params)
        });
        let a = serde_json::to_vec(&baseline).expect("serialize");
        let b = serde_json::to_vec(&faulted).expect("serialize");
        assert_eq!(a, b, "zero-rate plan must not perturb the run");
    }
}
