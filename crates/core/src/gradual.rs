//! Gradual tuning: migrating users ahead of the outage (paper §6,
//! "Benefits of Gradual Tuning", Figure 11).
//!
//! Changing `C_before → C_after` in one shot forces every UE of the
//! target sector to hand over simultaneously — a signaling storm — and,
//! worse, those handovers are *hard* (the source has vanished). Magus
//! instead steps the target sector's power down well before the planned
//! time, nudging UEs to neighbors a few at a time, and whenever the
//! predicted utility would fall below `f(C_after)` it spends some of the
//! planned neighbor retunes (toward `C_after`) to compensate. The
//! schedule therefore maintains the paper's invariant:
//!
//! > "we make sure that the utility never goes below f(C_after)".
//!
//! Handovers are accounted as UE mass whose serving sector changes in a
//! step; a handover is *seamless* when the source sector is still on-air
//! after the step, *hard* otherwise.

use magus_geo::Db;
use magus_model::{Evaluator, UtilityKind};
use magus_net::{ConfigChange, Configuration, SectorId};
use serde::{Deserialize, Serialize};

/// Knobs of the gradual planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradualParams {
    /// Utility to protect.
    pub utility: UtilityKind,
    /// Per-step power reduction applied to each target sector, dB.
    pub step_down_db: f64,
    /// Safety cap on the number of gradual steps.
    pub max_steps: usize,
}

impl Default for GradualParams {
    fn default() -> Self {
        GradualParams {
            utility: UtilityKind::Performance,
            step_down_db: 3.0,
            max_steps: 24,
        }
    }
}

/// One committed step of the schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradualStep {
    /// Changes committed in this step (power-down plus compensations).
    pub changes: Vec<ConfigChange>,
    /// Utility after the step.
    pub utility: f64,
    /// UE mass that changed serving sector in this step.
    pub handovers: f64,
    /// The subset of `handovers` whose source sector was still on-air.
    pub seamless: f64,
    /// Number of compensation moves spent (the "∧" marks of Figure 11).
    pub compensations: usize,
}

/// The one-shot alternative, for comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DirectOutcome {
    /// UE mass handing over at the single reconfiguration instant (this
    /// *is* the max-simultaneous figure).
    pub handovers: f64,
    /// Seamless fraction (UEs not served by the vanishing targets).
    pub seamless_fraction: f64,
}

/// The full gradual schedule plus its aggregate statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradualOutcome {
    /// Committed steps, in order (the last one takes the targets
    /// off-air).
    pub steps: Vec<GradualStep>,
    /// Utility at `C_before`.
    pub f_before: f64,
    /// Utility at `C_after` — the floor the schedule never dips under.
    pub f_after: f64,
    /// Largest per-step handover mass.
    pub max_simultaneous: f64,
    /// Total handover mass over the schedule.
    pub total_handovers: f64,
    /// Fraction of handover mass that was seamless.
    pub seamless_fraction: f64,
    /// The one-shot comparison.
    pub direct: DirectOutcome,
}

impl GradualOutcome {
    /// The paper's headline ratio: one-shot simultaneous handovers over
    /// the schedule's worst step (≈3× in Figure 11, ≈8× across
    /// scenarios).
    pub fn simultaneous_reduction_factor(&self) -> f64 {
        if self.max_simultaneous > 0.0 {
            self.direct.handovers / self.max_simultaneous
        } else if self.direct.handovers > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Handover accounting between two serving maps under the *new*
/// configuration: returns `(total, seamless)` UE mass.
fn handovers_between(
    ev: &Evaluator,
    old_serving: &[Option<u32>],
    new_serving: &[Option<u32>],
    new_config: &Configuration,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut seamless = 0.0;
    for i in 0..old_serving.len() {
        let (o, n) = (old_serving[i], new_serving[i]);
        if o == n {
            continue;
        }
        // Only UEs that *had* service and move to a (possibly different)
        // sector count as handovers; service loss is not a handover.
        let (Some(src), Some(_dst)) = (o, n) else {
            continue;
        };
        let ue = ev.ue_at(i);
        if ue <= 0.0 {
            continue;
        }
        total += ue;
        if new_config.sector(SectorId(src)).on_air {
            seamless += ue;
        }
    }
    (total, seamless)
}

/// Plans the gradual migration from `before` to `after`.
///
/// `after` must be the tuned post-upgrade configuration (targets off-air,
/// neighbors retuned), e.g. the output of
/// [`crate::tuning::power_search`].
pub fn plan_gradual(
    ev: &Evaluator,
    before: &Configuration,
    after: &Configuration,
    targets: &[SectorId],
    params: &GradualParams,
) -> GradualOutcome {
    for &t in targets {
        assert!(
            !after.sector(t).on_air,
            "C_after must have target {t:?} off-air"
        );
    }
    let _span = magus_obs::span_enter("plan_gradual");
    let mut state = ev.initial_state(before);
    let f_before = state.utility(params.utility);
    let f_after = ev.initial_state(after).utility(params.utility);

    // Direct (one-shot) comparison.
    let direct = {
        let before_state = ev.initial_state(before);
        let after_state = ev.initial_state(after);
        let (total, seamless) = handovers_between(
            ev,
            &ev.serving_map(&before_state),
            &ev.serving_map(&after_state),
            after,
        );
        DirectOutcome {
            handovers: total,
            seamless_fraction: if total > 0.0 { seamless / total } else { 1.0 },
        }
    };

    let mut steps: Vec<GradualStep> = Vec::new();
    let mut serving_prev = ev.serving_map(&state);
    // Changes applied to `state` during an aborted partial step; they must
    // still appear in the recorded schedule (inside the final jump) or a
    // replay of `steps` would not land on `C_after`.
    let mut pending: Vec<ConfigChange> = Vec::new();

    for _ in 0..params.max_steps {
        // Are any UEs still attached to the targets?
        let attached: f64 = targets.iter().map(|t| state.sector_load(t.0)).sum();
        let at_floor = targets.iter().all(|&t| {
            let cur = state.config().sector(t).power;
            cur <= ev.network().sector(t).min_power
        });
        if attached <= 1e-9 || at_floor {
            break;
        }

        let mut changes = Vec::new();
        // Step the targets down.
        for &t in targets {
            let ch = ConfigChange::PowerDelta(t, Db(-params.step_down_db));
            if state.config().would_change(ev.network(), ch) {
                ev.apply(&mut state, ch);
                changes.push(ch);
            }
        }
        // Compensate toward C_after while below the floor.
        let mut compensations = 0usize;
        loop {
            if state.utility(params.utility) >= f_after - 1e-9 {
                break;
            }
            // Remaining planned retunes (exclude target on-air moves).
            let remaining: Vec<ConfigChange> = state
                .config()
                .diff(after)
                .into_iter()
                .filter(|c| !targets.contains(&c.sector()))
                .collect();
            if remaining.is_empty() {
                break;
            }
            let current = state.utility(params.utility);
            let mut best: Option<(ConfigChange, f64)> = None;
            for ch in remaining {
                let u = ev.probe_utility(&mut state, ch, params.utility);
                if best.map_or(true, |(_, bu)| u > bu) {
                    best = Some((ch, u));
                }
            }
            let (ch, u) = best.expect("non-empty remaining set");
            if u <= current + 1e-12 {
                break; // compensation cannot help further
            }
            ev.apply(&mut state, ch);
            changes.push(ch);
            compensations += 1;
        }
        if state.utility(params.utility) < f_after - 1e-9 {
            // Cannot hold the floor: the paper jumps straight to C_after.
            // Roll this partial step into the final jump below.
            pending = changes;
            break;
        }
        let serving_now = ev.serving_map(&state);
        let (handovers, seamless) =
            handovers_between(ev, &serving_prev, &serving_now, state.config());
        serving_prev = serving_now;
        magus_obs::counter_inc!("gradual.steps");
        magus_obs::counter_add!("gradual.compensations", compensations as u64);
        magus_obs::trace_event!("gradual.step",
            "step" => steps.len(),
            "changes" => changes.len(),
            "compensations" => compensations,
            "utility" => state.utility(params.utility),
            "handovers" => handovers,
            "seamless" => seamless,
            "final" => false,
        );
        steps.push(GradualStep {
            changes,
            utility: state.utility(params.utility),
            handovers,
            seamless,
            compensations,
        });
    }

    // Final step: jump the rest of the way to C_after (taking the
    // targets off-air). Any pending partial-step changes are folded in so
    // replaying the schedule from C_before reproduces C_after exactly.
    let mut final_changes = pending;
    let jump = state.config().diff(after);
    for ch in &jump {
        ev.apply(&mut state, *ch);
    }
    final_changes.extend(jump);
    let serving_now = ev.serving_map(&state);
    let (handovers, seamless) = handovers_between(ev, &serving_prev, &serving_now, after);
    magus_obs::counter_inc!("gradual.steps");
    magus_obs::trace_event!("gradual.step",
        "step" => steps.len(),
        "changes" => final_changes.len(),
        "compensations" => 0u64,
        "utility" => state.utility(params.utility),
        "handovers" => handovers,
        "seamless" => seamless,
        "final" => true,
    );
    steps.push(GradualStep {
        changes: final_changes,
        utility: state.utility(params.utility),
        handovers,
        seamless,
        compensations: 0,
    });

    let max_simultaneous = steps.iter().map(|s| s.handovers).fold(0.0, f64::max);
    let total_handovers: f64 = steps.iter().map(|s| s.handovers).sum();
    let total_seamless: f64 = steps.iter().map(|s| s.seamless).sum();
    GradualOutcome {
        steps,
        f_before,
        f_after,
        max_simultaneous,
        total_handovers,
        seamless_fraction: if total_handovers > 0.0 {
            total_seamless / total_handovers
        } else {
            1.0
        },
        direct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::{power_search, SearchParams};
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, GridSpec, PointM};
    use magus_lte::{Bandwidth, RateMapper};
    use magus_net::{BsId, Network, Sector, UeLayer};
    use magus_propagation::{
        AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    };
    use magus_terrain::Terrain;
    use std::sync::Arc;

    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 150.0, 9_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            let mut s = Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            );
            s.nominal_ue_count = 100.0;
            s
        };
        let network = Arc::new(Network::new(vec![
            mk(0, -2_500.0, 90.0),
            mk(1, 0.0, 0.0),
            mk(2, 2_500.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            14_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), magus_geo::Db(7.0));
        let nominal = Configuration::nominal(&network);
        let probe = Evaluator::new(
            Arc::clone(&store),
            Arc::clone(&network),
            RateMapper::new(Bandwidth::Mhz10),
            noise,
            UeLayer::constant(spec, 1.0),
        );
        let serving = probe.serving_map(&probe.initial_state(&nominal));
        let totals: Vec<f64> = network
            .sectors()
            .iter()
            .map(|s| s.nominal_ue_count)
            .collect();
        let ue = UeLayer::uniform_per_sector(spec, &serving, &totals);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            nominal,
        )
    }

    fn after_config(ev: &Evaluator, before: &Configuration) -> Configuration {
        let reference = ev.initial_state(before);
        let mut state = ev.initial_state(before);
        ev.apply(&mut state, ConfigChange::SetOnAir(SectorId(1), false));
        power_search(
            ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        state.config().clone()
    }

    #[test]
    fn gradual_never_dips_below_f_after() {
        let (ev, before) = fixture();
        let after = after_config(&ev, &before);
        let out = plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
        for (k, step) in out.steps.iter().enumerate() {
            assert!(
                step.utility >= out.f_after - 1e-6,
                "step {k} utility {} below floor {}",
                step.utility,
                out.f_after
            );
        }
    }

    #[test]
    fn gradual_spreads_handovers() {
        let (ev, before) = fixture();
        let after = after_config(&ev, &before);
        let out = plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
        assert!(out.steps.len() > 1, "should take multiple steps");
        assert!(
            out.max_simultaneous <= out.direct.handovers + 1e-9,
            "gradual worst step {} must not exceed one-shot {}",
            out.max_simultaneous,
            out.direct.handovers
        );
        assert!(out.simultaneous_reduction_factor() >= 1.0);
    }

    #[test]
    fn gradual_improves_seamless_fraction() {
        let (ev, before) = fixture();
        let after = after_config(&ev, &before);
        let out = plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
        assert!(
            out.seamless_fraction >= out.direct.seamless_fraction - 1e-9,
            "gradual seamless {} vs direct {}",
            out.seamless_fraction,
            out.direct.seamless_fraction
        );
        assert!(
            out.seamless_fraction > 0.5,
            "most handovers should be seamless"
        );
    }

    #[test]
    fn final_configuration_is_c_after() {
        let (ev, before) = fixture();
        let after = after_config(&ev, &before);
        let out = plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
        // Replay the schedule and confirm we land exactly on C_after.
        let mut state = ev.initial_state(&before);
        for step in &out.steps {
            for ch in &step.changes {
                ev.apply(&mut state, *ch);
            }
        }
        assert_eq!(state.config(), &after);
    }

    #[test]
    #[should_panic(expected = "off-air")]
    fn rejects_after_config_with_targets_on_air() {
        let (ev, before) = fixture();
        let after = before.clone(); // targets still on-air: invalid
        plan_gradual(
            &ev,
            &before,
            &after,
            &[SectorId(1)],
            &GradualParams::default(),
        );
    }
}
