//! Precomputed outage playbooks — the paper's future-work extension:
//!
//! > "using Magus's predictive model for unplanned outages (using Magus's
//! > computed configuration as a starting point for feedback control, and
//! > pre-computing configurations for different outages)".
//!
//! A [`OutagePlaybook`] holds, for every sector an operator cares about,
//! the pre-searched mitigation configuration and its predicted utilities.
//! When an *unplanned* outage hits, the NOC deploys the stored `C_after`
//! in one shot (reactive model-based, but with zero model latency), then
//! optionally lets a feedback loop polish it — the paper's `1 + k` hybrid
//! with `k ≪ K`.

use crate::experiment::{prepare_scenario_for_targets, ExperimentConfig, RecoveryOutcome};
use crate::tuning::TuningKind;
use magus_model::StandardModel;
use magus_net::{Configuration, SectorId};
use std::collections::BTreeMap;

/// One precomputed mitigation.
#[derive(Debug, Clone)]
pub struct PlaybookEntry {
    /// The recovery run that produced this entry (includes `C_after`,
    /// utilities, and the applied steps).
    pub outcome: RecoveryOutcome,
}

impl PlaybookEntry {
    /// The stored mitigation configuration.
    pub fn config_after(&self) -> &Configuration {
        &self.outcome.config_after
    }
}

/// Precomputed mitigations for single-sector outages.
#[derive(Default)]
pub struct OutagePlaybook {
    entries: BTreeMap<SectorId, PlaybookEntry>,
}

impl OutagePlaybook {
    /// Precomputes mitigations for every sector in `sectors` (typically
    /// the sectors of an operator's tuning area), using the given tuning
    /// family.
    ///
    /// This is the batch job an operator would run nightly; each entry is
    /// an independent single-sector outage search.
    pub fn precompute(
        sm: &StandardModel,
        market: &magus_net::Market,
        sectors: &[SectorId],
        tuning: TuningKind,
        cfg: &ExperimentConfig,
    ) -> OutagePlaybook {
        let mut entries = BTreeMap::new();
        for &s in sectors {
            let prepared = prepare_scenario_for_targets(sm, market, vec![s], cfg);
            let outcome = prepared.run(sm, tuning, cfg);
            entries.insert(s, PlaybookEntry { outcome });
        }
        OutagePlaybook { entries }
    }

    /// The precomputed mitigation for an outage of `sector`, if present.
    pub fn lookup(&self, sector: SectorId) -> Option<&PlaybookEntry> {
        self.entries.get(&sector)
    }

    /// Number of precomputed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been precomputed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sectors covered by the playbook.
    pub fn sectors(&self) -> impl Iterator<Item = SectorId> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_model::{standard_setup, UtilityKind};
    use magus_net::{AreaType, Market, MarketParams, UpgradeScenario};

    #[test]
    fn playbook_matches_on_demand_search() {
        let market = Market::generate(MarketParams::tiny(AreaType::Suburban, 41));
        let sm = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
        let cfg = ExperimentConfig::default();
        // Precompute for the scenario-(a) target, then compare with an
        // on-demand run.
        let target = magus_net::upgrade_targets(&market, UpgradeScenario::SingleCentralSector)[0];
        let playbook = OutagePlaybook::precompute(&sm, &market, &[target], TuningKind::Power, &cfg);
        assert_eq!(playbook.len(), 1);
        let entry = playbook.lookup(target).expect("entry present");
        let on_demand = crate::experiment::run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            TuningKind::Power,
            &cfg,
        );
        assert_eq!(entry.config_after(), &on_demand.config_after);
        assert_eq!(
            entry.outcome.recovery(UtilityKind::Performance),
            on_demand.recovery(UtilityKind::Performance)
        );
    }

    #[test]
    fn lookup_missing_sector_is_none() {
        let playbook = OutagePlaybook::default();
        assert!(playbook.is_empty());
        assert!(playbook.lookup(SectorId(0)).is_none());
    }

    #[test]
    fn playbook_covers_multiple_sectors() {
        let market = Market::generate(MarketParams::tiny(AreaType::Suburban, 42));
        let sm = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
        let mut cfg = ExperimentConfig::default();
        // Keep the batch cheap for the test.
        cfg.pretune_params.max_moves = 16;
        let bs = market
            .network()
            .nearest_base_station(magus_geo::PointM::new(0.0, 0.0))
            .expect("base stations exist");
        let sectors = bs.sectors.clone();
        let playbook = OutagePlaybook::precompute(&sm, &market, &sectors, TuningKind::Power, &cfg);
        assert_eq!(playbook.len(), sectors.len());
        for s in sectors {
            let e = playbook.lookup(s).expect("entry");
            assert!(!e.config_after().sector(s).on_air, "target must be off-air");
        }
    }
}
