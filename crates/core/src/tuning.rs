//! The configuration search algorithms (paper §5).
//!
//! All searches share a shape: starting from the state *after* the target
//! sectors went off-air, repeatedly pick a configuration change on a
//! neighboring sector that increases the global utility, until nothing
//! improves. They differ in how candidates are generated:
//!
//! * [`power_search`] — the paper's Algorithm 1. Candidate set β contains
//!   only sectors that would improve `r_max` of at least one *affected*
//!   grid by a `T`-dB power increase; the globally best candidate is
//!   applied; `T` escalates when β dries up.
//! * [`tilt_search`] — the paper's greedy tilt pass: uptilt each neighbor
//!   (nearest first) while utility improves.
//! * [`joint_search`] — the paper's joint pass: tilt first, then power
//!   ("we explore the benefit of first employing tilt-tuning, followed by
//!   power-tuning").
//! * [`naive_search`] — the baseline of Figure 13: +1 dB to the first
//!   neighbor until utility worsens, then the second, and so on — no
//!   affected-grid gating, no global argmax.

use magus_geo::Db;
use magus_model::{Evaluator, ModelState, UtilityKind};
use magus_net::{ConfigChange, SectorId};
use serde::{Deserialize, Serialize};

/// Which tuning family to run (Table 1's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TuningKind {
    /// Algorithm 1 power tuning only.
    Power,
    /// Greedy tilt tuning only.
    Tilt,
    /// Tilt first, then power.
    Joint,
}

impl TuningKind {
    /// All kinds in the paper's Table 1 row order.
    pub const ALL: [TuningKind; 3] = [TuningKind::Power, TuningKind::Tilt, TuningKind::Joint];
}

impl std::fmt::Display for TuningKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TuningKind::Power => "power",
            TuningKind::Tilt => "tilt",
            TuningKind::Joint => "joint",
        })
    }
}

/// Knobs of the search algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Which utility to maximize.
    pub utility: UtilityKind,
    /// Power step unit in dB ("one unit is to increase the transmission
    /// power by 1 dB").
    pub step_db: f64,
    /// Largest step `T` may escalate to before the search gives up.
    pub max_step_db: f64,
    /// Hard cap on applied changes (safety net; the paper notes
    /// operational constraints on the number of changes pushed to a
    /// production network).
    pub max_changes: usize,
    /// Minimum utility improvement for a change to be accepted.
    pub epsilon: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            utility: UtilityKind::Performance,
            step_db: 1.0,
            max_step_db: 6.0,
            max_changes: 64,
            epsilon: 1e-9,
        }
    }
}

/// Result of a search: the changes applied (in order) and bookkeeping.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Changes applied to reach the final configuration, in order.
    pub steps: Vec<ConfigChange>,
    /// Utility after the search (in the optimized kind).
    pub utility: f64,
    /// Number of candidate probes evaluated (the model-evaluation cost).
    pub probes: usize,
}

/// Sorts `neighbors` by distance to the nearest of `targets` — the
/// paper's "first neighboring sector" ordering for tilt and naive passes.
pub fn order_by_proximity(
    ev: &Evaluator,
    neighbors: &[SectorId],
    targets: &[SectorId],
) -> Vec<SectorId> {
    let net = ev.network();
    let mut out = neighbors.to_vec();
    let dist = |id: SectorId| -> f64 {
        let p = net.sector(id).site.position;
        targets
            .iter()
            .map(|&t| net.sector(t).site.position.distance(p))
            .fold(f64::INFINITY, f64::min)
    };
    out.sort_by(|&a, &b| dist(a).total_cmp(&dist(b)));
    out
}

/// The paper's Algorithm 1: power tuning with an affected-grid candidate
/// set and escalating step.
///
/// * `state` — the model state at `C_upgrade` (targets already off-air);
///   mutated in place to the tuned configuration.
/// * `reference` — the state at `C_before`, defining degraded grids.
/// * `neighbors` — the involved sector set **B**.
pub fn power_search(
    ev: &Evaluator,
    state: &mut ModelState,
    reference: &ModelState,
    neighbors: &[SectorId],
    params: &SearchParams,
) -> SearchOutcome {
    let _span = magus_obs::span_enter("power_search");
    let mut steps = Vec::new();
    let mut probes = 0usize;
    // Initial affected set G: every grid whose rate degraded.
    let g0 = ev.degraded_grids(reference, state, None);
    let mut g = g0.clone();
    let mut t = params.step_db;

    while steps.len() < params.max_changes {
        if g.is_empty() {
            break; // all degraded grids recovered
        }
        // β: sectors whose +T would improve r_max of some affected grid
        // (lines 2–8). Early-exit on the first improving grid.
        let mut beta: Vec<SectorId> = Vec::new();
        for &b in neighbors {
            let sc = state.config().sector(b);
            if !sc.on_air {
                continue;
            }
            let hw = ev.network().sector(b);
            if sc.power.0 >= hw.max_power.0 {
                continue; // no headroom: the rural constraint
            }
            let window = ev.store().window(b.0);
            let spec = *ev.store().spec();
            let improves = g.iter().any(|&gi| {
                let c = spec.coord_of_index(gi as usize);
                if !window.contains(c) {
                    return false;
                }
                ev.hypothetical_rmax(state, gi as usize, b.0, Db(t)) > state.rmax_bps(gi as usize)
            });
            if improves {
                beta.push(b);
            }
        }
        if beta.is_empty() {
            t += params.step_db;
            if t > params.max_step_db {
                break;
            }
            continue;
        }
        // Line 9: pick the β member with the best global utility.
        let current = state.objective(params.utility);
        let mut best: Option<(SectorId, f64)> = None;
        for &b in &beta {
            let u = ev.probe_objective(state, ConfigChange::PowerDelta(b, Db(t)), params.utility);
            probes += 1;
            if best.map_or(true, |(_, bu)| u > bu) {
                best = Some((b, u));
            }
        }
        let (b_best, u_best) = best.expect("beta non-empty");
        if u_best <= current + params.epsilon {
            // β members help some grid locally but nobody helps globally:
            // escalate T, as the paper's goto-with-increment does.
            t += params.step_db;
            if t > params.max_step_db {
                break;
            }
            continue;
        }
        let change = ConfigChange::PowerDelta(b_best, Db(t));
        ev.apply(state, change);
        steps.push(change);
        // Line 11: update G (grids still degraded relative to C_before).
        g = g0
            .iter()
            .copied()
            .filter(|&gi| state.rate_bps(gi as usize) < reference.rate_bps(gi as usize) - 1e-9)
            .collect();
        magus_obs::counter_inc!("search.steps");
        magus_obs::trace_event!("search.step",
            "algo" => "power",
            "step" => steps.len() - 1,
            "change" => format!("{change:?}"),
            "utility" => u_best,
            "degraded_left" => g.len(),
        );
        t = params.step_db;
    }

    magus_obs::counter_add!("search.probes", probes as u64);
    SearchOutcome {
        steps,
        utility: state.utility(params.utility),
        probes,
    }
}

/// The paper's greedy tilt pass: uptilt each neighbor (nearest to the
/// targets first) while the utility keeps improving.
pub fn tilt_search(
    ev: &Evaluator,
    state: &mut ModelState,
    targets: &[SectorId],
    neighbors: &[SectorId],
    params: &SearchParams,
) -> SearchOutcome {
    let _span = magus_obs::span_enter("tilt_search");
    let ordered = order_by_proximity(ev, neighbors, targets);
    let mut steps = Vec::new();
    let mut probes = 0usize;
    for b in ordered {
        if steps.len() >= params.max_changes {
            break;
        }
        loop {
            let sc = state.config().sector(b);
            if !sc.on_air || sc.tilt == 0 {
                break; // fully uptilted
            }
            let current = state.objective(params.utility);
            let change = ConfigChange::SetTilt(b, sc.tilt - 1);
            let u = ev.probe_objective(state, change, params.utility);
            probes += 1;
            if u > current + params.epsilon {
                ev.apply(state, change);
                steps.push(change);
                magus_obs::counter_inc!("search.steps");
                magus_obs::trace_event!("search.step",
                    "algo" => "tilt",
                    "step" => steps.len() - 1,
                    "change" => format!("{change:?}"),
                    "utility" => u,
                );
                if steps.len() >= params.max_changes {
                    break;
                }
            } else {
                break;
            }
        }
    }
    magus_obs::counter_add!("search.probes", probes as u64);
    SearchOutcome {
        steps,
        utility: state.utility(params.utility),
        probes,
    }
}

/// The paper's joint pass: tilt-tuning followed by power-tuning.
pub fn joint_search(
    ev: &Evaluator,
    state: &mut ModelState,
    reference: &ModelState,
    targets: &[SectorId],
    neighbors: &[SectorId],
    params: &SearchParams,
) -> SearchOutcome {
    let tilt = tilt_search(ev, state, targets, neighbors, params);
    let power = power_search(ev, state, reference, neighbors, params);
    let mut steps = tilt.steps;
    steps.extend(power.steps);
    SearchOutcome {
        steps,
        utility: state.utility(params.utility),
        probes: tilt.probes + power.probes,
    }
}

/// The naive baseline of Figure 13: walk the neighbors nearest-first,
/// adding +1 dB steps to each until utility worsens, then move on.
pub fn naive_search(
    ev: &Evaluator,
    state: &mut ModelState,
    targets: &[SectorId],
    neighbors: &[SectorId],
    params: &SearchParams,
) -> SearchOutcome {
    let _span = magus_obs::span_enter("naive_search");
    let ordered = order_by_proximity(ev, neighbors, targets);
    let mut steps = Vec::new();
    let mut probes = 0usize;
    for b in ordered {
        if steps.len() >= params.max_changes {
            break;
        }
        loop {
            let change = ConfigChange::PowerDelta(b, Db(params.step_db));
            if !state.config().would_change(ev.network(), change) {
                break; // at max power
            }
            let current = state.objective(params.utility);
            let u = ev.probe_objective(state, change, params.utility);
            probes += 1;
            if u > current + params.epsilon {
                ev.apply(state, change);
                steps.push(change);
                magus_obs::counter_inc!("search.steps");
                if steps.len() >= params.max_changes {
                    break;
                }
            } else {
                break;
            }
        }
    }
    magus_obs::counter_add!("search.probes", probes as u64);
    SearchOutcome {
        steps,
        utility: state.utility(params.utility),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, GridSpec, PointM};
    use magus_lte::{Bandwidth, RateMapper};
    use magus_net::{BsId, Configuration, Network, Sector, UeLayer};
    use magus_propagation::{
        AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    };
    use magus_terrain::Terrain;
    use std::sync::Arc;

    /// Three sectors in a row; the middle one will be upgraded.
    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 150.0, 9_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            let mut s = Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            );
            s.nominal_ue_count = 100.0;
            s
        };
        let network = Arc::new(Network::new(vec![
            mk(0, -2_500.0, 90.0),
            mk(1, 0.0, 0.0),
            mk(2, 2_500.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            14_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), magus_geo::Db(7.0));
        // Phase-1 serving map for the uniform UE layer.
        let probe = Evaluator::new(
            Arc::clone(&store),
            Arc::clone(&network),
            RateMapper::new(Bandwidth::Mhz10),
            noise,
            UeLayer::constant(spec, 1.0),
        );
        let nominal = Configuration::nominal(&network);
        let serving = probe.serving_map(&probe.initial_state(&nominal));
        let totals: Vec<f64> = network
            .sectors()
            .iter()
            .map(|s| s.nominal_ue_count)
            .collect();
        let ue = UeLayer::uniform_per_sector(spec, &serving, &totals);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            nominal,
        )
    }

    fn take_down(ev: &Evaluator, config: &Configuration) -> (ModelState, ModelState) {
        let reference = ev.initial_state(config);
        let mut state = ev.initial_state(config);
        ev.apply(&mut state, ConfigChange::SetOnAir(SectorId(1), false));
        (reference, state)
    }

    #[test]
    fn power_search_recovers_some_utility() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        let f_before = reference.utility(UtilityKind::Performance);
        let f_upgrade = state.utility(UtilityKind::Performance);
        assert!(f_upgrade < f_before);
        let out = power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        assert!(out.utility > f_upgrade, "search should improve utility");
        assert!(!out.steps.is_empty());
        // Only neighbors were touched.
        for ch in &out.steps {
            assert_ne!(ch.sector(), SectorId(1));
        }
    }

    #[test]
    fn power_search_monotonically_improves() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        let mut replay = ev.initial_state(state.config());
        let out = power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        let mut prev = replay.utility(UtilityKind::Performance);
        for ch in &out.steps {
            ev.apply(&mut replay, *ch);
            let u = replay.utility(UtilityKind::Performance);
            assert!(u > prev, "step {ch:?} did not improve utility");
            prev = u;
        }
    }

    #[test]
    fn power_search_respects_max_power() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        for id in [SectorId(0), SectorId(2)] {
            let hw = ev.network().sector(id);
            assert!(state.config().sector(id).power <= hw.max_power);
        }
    }

    #[test]
    fn tilt_search_only_uptilts() {
        let (ev, config) = fixture();
        let (_reference, mut state) = take_down(&ev, &config);
        let before_tilts: Vec<u8> = [0u32, 2]
            .iter()
            .map(|&i| state.config().sector(SectorId(i)).tilt)
            .collect();
        let out = tilt_search(
            &ev,
            &mut state,
            &[SectorId(1)],
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        for (k, &i) in [0u32, 2].iter().enumerate() {
            assert!(state.config().sector(SectorId(i)).tilt <= before_tilts[k]);
        }
        // Every step is a tilt change.
        assert!(out
            .steps
            .iter()
            .all(|c| matches!(c, ConfigChange::SetTilt(_, _))));
    }

    #[test]
    fn joint_at_least_as_good_as_parts_started_fresh() {
        let (ev, config) = fixture();
        let params = SearchParams::default();
        let neighbors = [SectorId(0), SectorId(2)];

        let (reference, mut s_pow) = take_down(&ev, &config);
        let pow = power_search(&ev, &mut s_pow, &reference, &neighbors, &params);

        let (_reference, mut s_tilt) = take_down(&ev, &config);
        let tilt = tilt_search(&ev, &mut s_tilt, &[SectorId(1)], &neighbors, &params);

        let (reference, mut s_joint) = take_down(&ev, &config);
        let joint = joint_search(
            &ev,
            &mut s_joint,
            &reference,
            &[SectorId(1)],
            &neighbors,
            &params,
        );

        assert!(joint.utility >= tilt.utility - 1e-9);
        // Joint is not guaranteed ≥ power in every topology, but must at
        // least match the no-tuning level and typically beats it; sanity
        // check against gross regressions:
        assert!(joint.utility >= pow.utility * 0.95);
    }

    #[test]
    fn naive_search_improves_but_probes_differently() {
        let (ev, config) = fixture();
        let (_reference, mut state) = take_down(&ev, &config);
        let f_upgrade = state.utility(UtilityKind::Performance);
        let out = naive_search(
            &ev,
            &mut state,
            &[SectorId(1)],
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        assert!(out.utility >= f_upgrade);
    }

    #[test]
    fn proximity_ordering() {
        let (ev, _config) = fixture();
        let ordered = order_by_proximity(&ev, &[SectorId(2), SectorId(0)], &[SectorId(0)]);
        assert_eq!(ordered, vec![SectorId(0), SectorId(2)]);
    }

    #[test]
    fn empty_neighbor_set_is_a_noop() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        let f_upgrade = state.utility(UtilityKind::Performance);
        for out in [
            power_search(&ev, &mut state, &reference, &[], &SearchParams::default()),
            tilt_search(
                &ev,
                &mut state,
                &[SectorId(1)],
                &[],
                &SearchParams::default(),
            ),
            naive_search(
                &ev,
                &mut state,
                &[SectorId(1)],
                &[],
                &SearchParams::default(),
            ),
        ] {
            assert!(out.steps.is_empty());
            assert_eq!(out.utility, f_upgrade);
        }
    }

    #[test]
    fn max_changes_zero_stops_immediately() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        let params = SearchParams {
            max_changes: 0,
            ..SearchParams::default()
        };
        let out = power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &params,
        );
        assert!(out.steps.is_empty());
    }

    #[test]
    fn off_air_neighbors_are_never_candidates() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        // Also take a would-be helper off-air.
        ev.apply(&mut state, ConfigChange::SetOnAir(SectorId(0), false));
        let out = power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &SearchParams::default(),
        );
        assert!(out.steps.iter().all(|c| c.sector() != SectorId(0)));
    }

    #[test]
    fn coverage_objective_search_runs() {
        let (ev, config) = fixture();
        let (reference, mut state) = take_down(&ev, &config);
        let params = SearchParams {
            utility: UtilityKind::Coverage,
            ..SearchParams::default()
        };
        let before = state.utility(UtilityKind::Coverage);
        let out = power_search(
            &ev,
            &mut state,
            &reference,
            &[SectorId(0), SectorId(2)],
            &params,
        );
        assert!(out.utility >= before - 1e-9);
    }

    #[test]
    fn searches_are_deterministic() {
        let (ev, config) = fixture();
        let run = || {
            let (reference, mut state) = take_down(&ev, &config);
            power_search(
                &ev,
                &mut state,
                &reference,
                &[SectorId(0), SectorId(2)],
                &SearchParams::default(),
            )
            .steps
        };
        assert_eq!(run(), run());
    }
}
