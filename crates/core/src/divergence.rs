//! Model-divergence experiments: what happens when reality doesn't match
//! the planning database.
//!
//! The paper's §2 caveat: *"if the network and traffic conditions do not
//! match the history or the path loss model, then the model-based
//! approach might reach a sub-optimal configuration with lower utility
//! than a feedback-based configuration"* — which is exactly why it
//! proposes the hybrid (model first, feedback polish after, reaching the
//! optimum in `1 + k` steps).
//!
//! [`model_divergence`] quantifies this: the search runs on the *planning*
//! model, but outcomes are scored on a *ground-truth* model whose
//! shadowing diverges from the database (same geography, layout, and
//! constants; independent shadowing draws). It reports the recovery the
//! planner *predicted*, the recovery *realized* on the ground truth, and
//! the recovery after a feedback polish driven by ground-truth
//! measurements.

use crate::experiment::ExperimentConfig;
use crate::strategy::{reactive_feedback, FeedbackMode};
use crate::tuning::TuningKind;
use magus_model::{setup::setup_from_parts, StandardModel, UtilityKind};
use magus_net::{ConfigChange, Market, UpgradeScenario};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one divergence experiment.
///
/// Scores are normalized on the ground truth so that 0 = doing nothing
/// (`C_upgrade`) and 1 = what a from-scratch ground-truth feedback loop
/// achieves (the reactive optimum the paper's SON baseline converges to).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DivergenceOutcome {
    /// Recovery ratio the planning model predicted for its own `C_after`
    /// (ordinary Formula 7 on the planning model, 0..1).
    pub predicted_recovery: f64,
    /// Ground-truth score of deploying the model's `C_after` as-is.
    /// Below 1 = the paper's "model-based might reach a sub-optimal
    /// configuration"; can exceed 1 when the model's answer escapes the
    /// feedback loop's local optimum.
    pub model_score: f64,
    /// Ground-truth score after the hybrid's feedback polish from
    /// `C_after`.
    pub polished_score: f64,
    /// Polish steps `k` (the hybrid's `1 + k`).
    pub polish_steps: usize,
    /// Feedback steps `K` needed from scratch on the ground truth (for
    /// the `k ≪ K` comparison).
    pub from_scratch_steps: usize,
}

/// Runs the divergence experiment for one scenario.
///
/// * `market` — the market whose store is the *planning database*.
/// * `truth_seed` — shadowing seed of the ground-truth radio environment.
/// * `divergence` — blend weight in `[0, 1]`: how far reality has
///   drifted from the database (0 = identical, 1 = independent
///   shadowing).
pub fn model_divergence(
    sm: &StandardModel,
    market: &Market,
    scenario: UpgradeScenario,
    truth_seed: u64,
    divergence: f64,
    cfg: &ExperimentConfig,
) -> DivergenceOutcome {
    // Search on the planning model (joint: the same knobs the feedback
    // oracle may touch, so scores compare like with like).
    let prepared = crate::experiment::prepare_scenario(sm, market, scenario, cfg);
    let planned = prepared.run(sm, TuningKind::Joint, cfg);
    let predicted_recovery = planned.recovery(UtilityKind::Performance);

    // Ground truth: same network, (partially) divergent shadowing.
    let truth_store = market.store_with_shadowing_blend(truth_seed, divergence);
    let truth = setup_from_parts(
        truth_store,
        Arc::new(market.network().clone()),
        cfg.bandwidth,
    );
    let tev = &truth.evaluator;

    // Score C_upgrade / C_after on the truth.
    let mut upgrade_state = tev.initial_state(&planned.config_before);
    for &t in &planned.targets {
        tev.apply(&mut upgrade_state, ConfigChange::SetOnAir(t, false));
    }
    let u_upgrade = upgrade_state.utility(UtilityKind::Performance);
    let mut after_state = tev.initial_state(&planned.config_after);
    let u_model = after_state.utility(UtilityKind::Performance);

    // Hybrid polish: feedback on the ground truth, starting from C_after.
    let polish = reactive_feedback(
        tev,
        &mut after_state,
        &planned.neighbors,
        &cfg.search,
        FeedbackMode::Idealized,
    );
    let u_polished = after_state.utility(UtilityKind::Performance);

    // From-scratch feedback on the ground truth: the reactive optimum
    // that normalizes the scores, and the K comparison.
    let scratch = reactive_feedback(
        tev,
        &mut upgrade_state,
        &planned.neighbors,
        &cfg.search,
        FeedbackMode::Idealized,
    );
    let u_fb_opt = upgrade_state.utility(UtilityKind::Performance);

    let span = u_fb_opt - u_upgrade;
    let score = |u: f64| {
        if span.abs() < 1e-12 {
            1.0
        } else {
            (u - u_upgrade) / span
        }
    };

    DivergenceOutcome {
        predicted_recovery,
        model_score: score(u_model),
        polished_score: score(u_polished),
        polish_steps: polish.steps,
        from_scratch_steps: scratch.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_model::standard_setup;
    use magus_net::{AreaType, MarketParams};

    #[test]
    fn divergence_experiment_has_expected_structure() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 61));
        let sm = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
        let mut cfg = ExperimentConfig::default();
        cfg.pretune_params.max_moves = 24; // keep the test quick
        let out = model_divergence(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            4242,
            0.5,
            &cfg,
        );
        // The polish can only help (feedback is monotone on its oracle).
        assert!(out.polished_score >= out.model_score - 1e-9);
        for r in [out.predicted_recovery, out.model_score, out.polished_score] {
            assert!(r.is_finite());
        }
        // The test truncates the planning pass (max_moves = 24) for
        // speed, so the search may harvest residual planning slack and
        // exceed 1; full-convergence runs stay within [0, 1.1].
        assert!((0.0..=2.0).contains(&out.predicted_recovery));
        // Polish reaches (at least) the quality of a from-scratch
        // feedback run — the hybrid loses nothing.
        assert!(
            out.polished_score >= 0.95,
            "polished {}",
            out.polished_score
        );
    }

    #[test]
    fn zero_divergence_realizes_the_prediction() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 62));
        let sm = standard_setup(&market, magus_lte::Bandwidth::Mhz10);
        let mut cfg = ExperimentConfig::default();
        cfg.pretune_params.max_moves = 24;
        // Ground truth generated with the *same* seed as the market: the
        // stores are identical, so realized == predicted (UE layers may
        // differ slightly through the serving map, hence the tolerance).
        let out = model_divergence(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            market.params().seed,
            0.0,
            &cfg,
        );
        // With identical stores the model's answer is already near the
        // feedback optimum.
        assert!(out.model_score > 0.6, "model score {}", out.model_score);
    }
}
