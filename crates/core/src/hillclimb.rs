//! Generic greedy utility hill-climbing.
//!
//! Used as the *planning pass*: before any upgrade experiment we let a
//! planner polish the nominal configuration of the sectors around the
//! tuning area to a local utility optimum ("radio network planners
//! attempt to maximize coverage and minimize interference by setting …
//! transmit power and antenna tilt", §1). Without this, `C_before` would
//! be arbitrary and the recovery ratio (Formula 7) could exceed 1 simply
//! because tuning fixes pre-existing planning slack rather than
//! upgrade-induced loss.

use magus_geo::Db;
use magus_model::{Evaluator, ModelState, UtilityKind};
use magus_net::{ConfigChange, SectorId};
use serde::{Deserialize, Serialize};

/// Knobs for the hill-climber.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillClimbParams {
    /// The utility to maximize.
    pub utility: UtilityKind,
    /// Power move size, dB.
    pub step_db: f64,
    /// Whether tilt ±1 moves are considered too.
    pub tune_tilt: bool,
    /// How far below a sector's *nominal* power the planner may go, dB.
    ///
    /// Real planners do not mute a deployed sector; without this floor
    /// the hill-climber can power a sector down to its hardware minimum,
    /// which makes any later "take that sector off-air" experiment
    /// degenerate (nothing was being served by it).
    pub power_floor_below_nominal_db: f64,
    /// Maximum accepted moves.
    pub max_moves: usize,
    /// Minimum improvement to accept a move.
    pub epsilon: f64,
}

impl Default for HillClimbParams {
    fn default() -> Self {
        HillClimbParams {
            utility: UtilityKind::Performance,
            step_db: 1.0,
            tune_tilt: true,
            max_moves: 400,
            epsilon: 1e-9,
            power_floor_below_nominal_db: 6.0,
        }
    }
}

/// The fixed-order candidate list for one iteration: for each on-air
/// sector (in `sectors` order) power +step, power −step (if the floor
/// allows), tilt −1, tilt +1 (if enabled), filtered to moves that would
/// actually change the configuration.
///
/// Both the serial and the parallel paths enumerate candidates through
/// this one function, so candidate *indices* — which the deterministic
/// reduction ties on — mean the same thing at every thread count. The
/// portfolio strategies in [`crate::search`] reuse it so "candidate k"
/// names the same move for every strategy.
pub(crate) fn candidate_moves(
    ev: &Evaluator,
    state: &ModelState,
    sectors: &[SectorId],
    params: &HillClimbParams,
) -> Vec<ConfigChange> {
    let mut out = Vec::new();
    for &s in sectors {
        let sc = state.config().sector(s);
        if !sc.on_air {
            continue;
        }
        let mut candidates: Vec<ConfigChange> =
            vec![ConfigChange::PowerDelta(s, Db(params.step_db))];
        let floor = ev.network().sector(s).nominal_power.0 - params.power_floor_below_nominal_db;
        if sc.power.0 - params.step_db >= floor {
            candidates.push(ConfigChange::PowerDelta(s, Db(-params.step_db)));
        }
        if params.tune_tilt {
            if sc.tilt > 0 {
                candidates.push(ConfigChange::SetTilt(s, sc.tilt - 1));
            }
            if sc.tilt + 1 < magus_propagation::NUM_TILT_SETTINGS {
                candidates.push(ConfigChange::SetTilt(s, sc.tilt + 1));
            }
        }
        out.extend(
            candidates
                .into_iter()
                .filter(|&ch| state.config().would_change(ev.network(), ch)),
        );
    }
    out
}

/// The order-fixed selection: drop scores at or below the acceptance
/// threshold, then take the maximum with ties broken by the lowest
/// candidate index (identical to the historical serial strictly-greater
/// scan, but insensitive to the order scores arrive in).
fn select_best(
    scores: impl IntoIterator<Item = (usize, f64)>,
    current: f64,
    epsilon: f64,
) -> Option<(usize, f64)> {
    magus_exec::argmax_det(scores.into_iter().filter(|&(_, u)| u > current + epsilon))
}

/// Bookkeeping a climb returns beyond the accepted moves, so the
/// search-portfolio strategies can aggregate cost across their phases.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClimbOutcome {
    /// Accepted moves, in order.
    pub moves: Vec<ConfigChange>,
    /// Candidate probes evaluated.
    pub probes: u64,
    /// Iterations run (accepted moves plus the final rejected round).
    pub iters: u64,
}

/// A command to a probe worker holding a private [`ModelState`] replica.
#[derive(Clone)]
enum ProbeCmd {
    /// Probe each `(candidate index, move)` against the replica.
    Probe(Vec<(usize, ConfigChange)>),
    /// An accepted move: replay it so the replica stays in lock-step.
    Apply(ConfigChange),
}

/// Greedily applies the best single move (power ±step, optionally tilt
/// ±1) over `sectors` until no move improves the utility. Returns the
/// applied moves in order.
///
/// Candidate probes fan out over [`magus_exec::threads`] workers; by the
/// determinism contract (see DESIGN.md §"Parallel execution") the result
/// is bit-identical at every thread count.
pub fn hill_climb(
    ev: &Evaluator,
    state: &mut ModelState,
    sectors: &[SectorId],
    params: &HillClimbParams,
) -> Vec<ConfigChange> {
    hill_climb_with_threads(ev, state, sectors, params, magus_exec::threads())
}

/// [`hill_climb`] with an explicit worker count.
///
/// With `threads` ≤ 1 probes run inline on the caller's state; otherwise
/// each worker keeps a private clone of `state`, probes its share of
/// each iteration's candidates (probe = apply + undo restores the
/// replica exactly), and replays every accepted move. Because replicas
/// are bitwise copies and probes are index-tagged and reduced with
/// [`magus_exec::argmax_det`], the trajectory — every accepted move, in
/// order, and the final state — is identical for every `threads` value.
pub fn hill_climb_with_threads(
    ev: &Evaluator,
    state: &mut ModelState,
    sectors: &[SectorId],
    params: &HillClimbParams,
    threads: usize,
) -> Vec<ConfigChange> {
    climb_with_threads(ev, state, sectors, params, threads, None).moves
}

/// The full-bookkeeping climb the portfolio strategies call: identical
/// trajectory to [`hill_climb_with_threads`], but it also returns probe
/// and iteration counts, and — when `label` names a strategy — emits
/// `search.iter` / `search.accept` trace records alongside the legacy
/// `hillclimb.iter` stream.
pub(crate) fn climb_with_threads(
    ev: &Evaluator,
    state: &mut ModelState,
    sectors: &[SectorId],
    params: &HillClimbParams,
    threads: usize,
    label: Option<&str>,
) -> ClimbOutcome {
    let _span = magus_obs::span_enter("hill_climb");
    if threads <= 1 {
        return climb(
            ev,
            state,
            sectors,
            params,
            label,
            |st, cands| {
                cands
                    .iter()
                    .enumerate()
                    .map(|(i, &ch)| (i, ev.probe_objective(st, ch, params.utility)))
                    .collect()
            },
            |_ch| {},
        );
    }

    // Per-worker replicas of the starting state, handed to workers by id.
    let replicas: Vec<parking_lot::Mutex<Option<ModelState>>> = (0..threads)
        .map(|_| parking_lot::Mutex::new(Some(state.clone())))
        .collect();
    let utility = params.utility;
    magus_exec::team::with_team(
        threads,
        |port: magus_exec::team::WorkerPort<ProbeCmd, Vec<(usize, f64)>>| {
            let Some(mut replica) = replicas[port.id()].lock().take() else {
                return;
            };
            while let Some(cmd) = port.next() {
                match cmd {
                    ProbeCmd::Probe(batch) => {
                        let scores = batch
                            .into_iter()
                            .map(|(i, ch)| (i, ev.probe_objective(&mut replica, ch, utility)))
                            .collect();
                        if !port.send(scores) {
                            break;
                        }
                    }
                    ProbeCmd::Apply(ch) => {
                        let _undo = ev.apply(&mut replica, ch);
                    }
                }
            }
        },
        |team| {
            climb(
                ev,
                state,
                sectors,
                params,
                label,
                |_st, cands| {
                    // Strided partition: worker w probes candidates w,
                    // w + threads, …; any partition reduces identically.
                    let mut sent = 0usize;
                    for w in 0..team.workers() {
                        let batch: Vec<(usize, ConfigChange)> = cands
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(team.workers())
                            .map(|(i, &ch)| (i, ch))
                            .collect();
                        if !batch.is_empty() && team.send(w, ProbeCmd::Probe(batch)) {
                            sent += 1;
                        }
                    }
                    let mut scores: Vec<(usize, f64)> = team
                        .collect(sent)
                        .into_iter()
                        .flat_map(|(_, v)| v)
                        .collect();
                    scores.sort_unstable_by_key(|&(i, _)| i);
                    scores
                },
                |ch| {
                    // Keep every replica in lock-step with the driver.
                    team.broadcast(ProbeCmd::Apply(ch));
                },
            )
        },
    )
}

/// The shared climb loop: `score` evaluates one iteration's candidates
/// (serially or through a team) and returns `(candidate index,
/// objective)` pairs; everything else — candidate enumeration, the
/// order-fixed reduction, acceptance, tracing — is common to both paths.
fn climb<S, A>(
    ev: &Evaluator,
    state: &mut ModelState,
    sectors: &[SectorId],
    params: &HillClimbParams,
    label: Option<&str>,
    mut score: S,
    mut on_accept: A,
) -> ClimbOutcome
where
    S: FnMut(&mut ModelState, &[ConfigChange]) -> Vec<(usize, f64)>,
    A: FnMut(ConfigChange),
{
    let mut out = ClimbOutcome::default();
    while out.moves.len() < params.max_moves {
        let current = state.objective(params.utility);
        let cands = candidate_moves(ev, state, sectors, params);
        let scores = score(state, &cands);
        let probes = scores.len() as u64;
        let best = select_best(scores, current, params.epsilon)
            .and_then(|(i, u)| cands.get(i).map(|&ch| (ch, u)));
        magus_obs::counter_inc!("hillclimb.iters");
        magus_obs::counter_add!("hillclimb.probes", probes);
        // One trace record per iteration: the chosen candidate (or the
        // rejected last round), how many probes it took, and the
        // objective movement.
        magus_obs::trace_event!("hillclimb.iter",
            "iter" => out.iters,
            "candidate" => best.map_or_else(String::new, |(ch, _)| format!("{ch:?}")),
            "probes" => probes,
            "objective" => current,
            "delta" => best.map_or(0.0, |(_, u)| u - current),
            "accepted" => best.is_some(),
        );
        if let Some(strategy) = label {
            magus_obs::trace_event!("search.iter",
                "strategy" => strategy,
                "iter" => out.iters,
                "probes" => probes,
                "objective" => current,
                "accepted" => best.is_some(),
            );
        }
        out.probes += probes;
        match best {
            Some((ch, u)) => {
                ev.apply(state, ch);
                on_accept(ch);
                if let Some(strategy) = label {
                    magus_obs::trace_event!("search.accept",
                        "strategy" => strategy,
                        "iter" => out.iters,
                        "change" => format!("{ch:?}"),
                        "utility" => u,
                    );
                }
                out.moves.push(ch);
                magus_obs::counter_inc!("hillclimb.moves");
            }
            None => {
                out.iters += 1;
                break;
            }
        }
        out.iters += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_geo::units::thermal_noise;
    use magus_geo::{Bearing, GridSpec, PointM};
    use magus_lte::{Bandwidth, RateMapper};
    use magus_net::{BsId, Configuration, Network, Sector, UeLayer};
    use magus_propagation::{
        AntennaParams, PathLossStore, PropagationModel, SectorSite, SpmParams, TiltSettings,
    };
    use magus_terrain::Terrain;
    use std::sync::Arc;

    fn fixture() -> (Evaluator, Configuration) {
        let spec = GridSpec::centered(PointM::new(0.0, 0.0), 200.0, 6_000.0);
        let model = PropagationModel::new(Arc::new(Terrain::flat(spec)), SpmParams::smooth(), 1);
        let mk = |id: u32, x: f64, az: f64| {
            Sector::macro_defaults(
                SectorId(id),
                BsId(id),
                SectorSite {
                    position: PointM::new(x, 0.0),
                    height_m: 30.0,
                    azimuth: Bearing::new(az),
                    antenna: AntennaParams::default(),
                },
            )
        };
        let network = Arc::new(Network::new(vec![
            mk(0, -1_000.0, 90.0),
            mk(1, 1_000.0, 270.0),
        ]));
        let store = Arc::new(PathLossStore::build(
            spec,
            network.sites(),
            &model,
            TiltSettings::default(),
            10_000.0,
        ));
        let noise = thermal_noise(Bandwidth::Mhz10.hz(), magus_geo::Db(7.0));
        let ue = UeLayer::constant(spec, 1.0);
        let nominal = Configuration::nominal(&network);
        (
            Evaluator::new(store, network, RateMapper::new(Bandwidth::Mhz10), noise, ue),
            nominal,
        )
    }

    #[test]
    fn hill_climb_never_decreases_utility() {
        let (ev, config) = fixture();
        let mut state = ev.initial_state(&config);
        let before = state.utility(UtilityKind::Performance);
        let moves = hill_climb(
            &ev,
            &mut state,
            &[SectorId(0), SectorId(1)],
            &HillClimbParams::default(),
        );
        let after = state.utility(UtilityKind::Performance);
        assert!(after >= before);
        assert!(moves.len() <= HillClimbParams::default().max_moves);
    }

    #[test]
    fn result_is_local_optimum() {
        let (ev, config) = fixture();
        let mut state = ev.initial_state(&config);
        let params = HillClimbParams::default();
        hill_climb(&ev, &mut state, &[SectorId(0), SectorId(1)], &params);
        let u = state.utility(params.utility);
        for s in [SectorId(0), SectorId(1)] {
            for d in [1.0, -1.0] {
                let ch = ConfigChange::PowerDelta(s, Db(d));
                if state.config().would_change(ev.network(), ch) {
                    let probed = ev.probe_utility(&mut state, ch, params.utility);
                    assert!(probed <= u + 1e-9, "{ch:?} still improves");
                }
            }
        }
    }

    #[test]
    fn trajectory_is_thread_count_invariant() {
        let (ev, config) = fixture();
        let params = HillClimbParams::default();
        let mut baseline = ev.initial_state(&config);
        let serial_moves =
            hill_climb_with_threads(&ev, &mut baseline, &[SectorId(0), SectorId(1)], &params, 1);
        let serial_u = baseline.utility(params.utility);
        for threads in [2, 3, 8] {
            let mut state = ev.initial_state(&config);
            let moves = hill_climb_with_threads(
                &ev,
                &mut state,
                &[SectorId(0), SectorId(1)],
                &params,
                threads,
            );
            assert_eq!(
                moves, serial_moves,
                "trajectory diverged at {threads} threads"
            );
            assert_eq!(state.config(), baseline.config());
            assert_eq!(
                state.utility(params.utility).to_bits(),
                serial_u.to_bits(),
                "utility not bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn tilt_moves_only_when_enabled() {
        let (ev, config) = fixture();
        let mut state = ev.initial_state(&config);
        let moves = hill_climb(
            &ev,
            &mut state,
            &[SectorId(0), SectorId(1)],
            &HillClimbParams {
                tune_tilt: false,
                ..HillClimbParams::default()
            },
        );
        assert!(moves.iter().all(|m| matches!(
            m,
            ConfigChange::PowerDelta(_, _) | ConfigChange::SetPower(_, _)
        )));
    }
}
