//! The end-to-end recovery experiment (paper §6, Tables 1–2, Figure 13).
//!
//! Pipeline for one (market, scenario, tuning-kind) cell:
//!
//! 1. Build the standard model over the market (§4 model + uniform UE
//!    layer).
//! 2. **Planning pass**: hill-climb the sectors around the tuning area to
//!    a local utility optimum — this is `C_before`, standing in for the
//!    carrier's planner-optimized configuration.
//! 3. Take the scenario's target sectors off-air → `C_upgrade`.
//! 4. Run the selected search (power / tilt / joint, or the naive
//!    baseline) over the neighbor set **B** → `C_after`.
//! 5. Report the recovery ratio (Formula 7):
//!    `(f(C_after) − f(C_upgrade)) / (f(C_before) − f(C_upgrade))`.
//!
//! Utilities are always recorded under *both* paper metrics so Table 2's
//! cross-utility cells fall out of the same run.

use crate::hillclimb::{hill_climb, HillClimbParams};
use crate::search::StrategySpec;
use crate::tuning::{
    joint_search, naive_search, power_search, tilt_search, SearchOutcome, SearchParams, TuningKind,
};
use magus_lte::Bandwidth;
use magus_model::{setup::standard_setup, Evaluator, ModelState, StandardModel, UtilityKind};
use magus_net::{ConfigChange, Configuration, Market, SectorId, UpgradeScenario};
use serde::{Deserialize, Serialize};

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Channel bandwidth (paper: single LTE carrier; testbed used 10 MHz).
    pub bandwidth: Bandwidth,
    /// Neighbor set radius as a multiple of the market's inter-site
    /// distance.
    pub neighbor_radius_isd: f64,
    /// Search knobs (also selects the utility being optimized).
    pub search: SearchParams,
    /// Whether to run the planning pass (recommended; see module docs).
    pub pretune: bool,
    /// Planning-pass knobs.
    pub pretune_params: HillClimbParams,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            bandwidth: Bandwidth::Mhz10,
            neighbor_radius_isd: 2.2,
            search: SearchParams::default(),
            pretune: true,
            pretune_params: HillClimbParams::default(),
        }
    }
}

/// A utility reading under both paper metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityReadings {
    /// Formula 6 (log-rate).
    pub performance: f64,
    /// Formula 5 (served-UE count).
    pub coverage: f64,
}

impl UtilityReadings {
    /// Reads both utilities from a state.
    pub fn of(state: &ModelState) -> UtilityReadings {
        UtilityReadings {
            performance: state.utility(UtilityKind::Performance),
            coverage: state.utility(UtilityKind::Coverage),
        }
    }

    /// The reading for one kind.
    pub fn get(&self, kind: UtilityKind) -> f64 {
        match kind {
            UtilityKind::Performance => self.performance,
            UtilityKind::Coverage => self.coverage,
        }
    }
}

/// Everything a recovery run produces.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Which tuning family ran.
    pub tuning: TuningKind,
    /// Sectors taken off-air.
    pub targets: Vec<SectorId>,
    /// The neighbor set **B**.
    pub neighbors: Vec<SectorId>,
    /// Utilities at `C_before`.
    pub before: UtilityReadings,
    /// Utilities at `C_upgrade`.
    pub upgrade: UtilityReadings,
    /// Utilities at `C_after`.
    pub after: UtilityReadings,
    /// The planner-polished pre-upgrade configuration.
    pub config_before: Configuration,
    /// The tuned post-upgrade configuration.
    pub config_after: Configuration,
    /// Search bookkeeping.
    pub search: SearchOutcome,
    /// The portfolio strategy that ran, when the run went through
    /// [`PreparedScenario::run_strategy`] (`None` for the classic
    /// tuning families).
    pub strategy: Option<String>,
}

impl RecoveryOutcome {
    /// Formula 7 under a utility kind. Positive = recovery; the paper's
    /// Table 2 shows it can go negative when optimizing the *other*
    /// utility.
    pub fn recovery(&self, kind: UtilityKind) -> f64 {
        let degraded = self.before.get(kind) - self.upgrade.get(kind);
        if degraded.abs() < 1e-12 {
            return 0.0; // the upgrade did not hurt this metric
        }
        (self.after.get(kind) - self.upgrade.get(kind)) / degraded
    }
}

/// The neighbor set **B** for a target list: on-air sectors within
/// `radius` of any target, excluding the targets themselves.
pub fn neighbor_set(ev: &Evaluator, targets: &[SectorId], radius_m: f64) -> Vec<SectorId> {
    let net = ev.network();
    let mut out: Vec<SectorId> = Vec::new();
    for &t in targets {
        let p = net.sector(t).site.position;
        for id in net.sectors_within(p, radius_m, targets) {
            if !out.contains(&id) {
                out.push(id);
            }
        }
    }
    out.sort();
    out
}

/// A scenario prepared for tuning runs: the planner-polished `C_before`,
/// the baseline reference state, and the post-outage starting state.
///
/// Preparing once and running several tunings against it amortizes the
/// expensive planning pass (the paper's Table 1 runs three tunings per
/// scenario against the same baseline).
pub struct PreparedScenario {
    /// Sectors the scenario takes off-air.
    pub targets: Vec<SectorId>,
    /// The neighbor set **B**.
    pub neighbors: Vec<SectorId>,
    /// Planner-polished pre-upgrade configuration.
    pub config_before: Configuration,
    /// Utilities at `C_before`.
    pub before: UtilityReadings,
    /// Utilities at `C_upgrade`.
    pub upgrade: UtilityReadings,
    /// Model state at `C_before` (the reference for degraded grids).
    reference: magus_model::ModelState,
    /// Model state at `C_upgrade` (the search starting point).
    upgraded: magus_model::ModelState,
}

/// Prepares a scenario: neighbor selection, planning pass, takedown.
pub fn prepare_scenario(
    sm: &StandardModel,
    market: &Market,
    scenario: UpgradeScenario,
    cfg: &ExperimentConfig,
) -> PreparedScenario {
    prepare_scenario_for_targets(
        sm,
        market,
        magus_net::upgrade_targets(market, scenario),
        cfg,
    )
}

/// Prepares an arbitrary target set (used by the outage playbook, where
/// the "scenario" is any single sector failing).
pub fn prepare_scenario_for_targets(
    sm: &StandardModel,
    market: &Market,
    targets: Vec<SectorId>,
    cfg: &ExperimentConfig,
) -> PreparedScenario {
    let ev = &sm.evaluator;
    let radius = cfg.neighbor_radius_isd * market.params().isd_m;
    let neighbors = neighbor_set(ev, &targets, radius);

    // Planning pass: polish C_before around the affected area.
    let mut state = ev.initial_state(&sm.nominal);
    if cfg.pretune {
        let mut region = targets.clone();
        region.extend(neighbors.iter().copied());
        hill_climb(ev, &mut state, &region, &cfg.pretune_params);
    }
    let config_before = state.config().clone();
    let before = UtilityReadings::of(&state);
    let reference = state.clone();

    // Take the targets down.
    for &t in &targets {
        ev.apply(&mut state, ConfigChange::SetOnAir(t, false));
    }
    let upgrade = UtilityReadings::of(&state);
    PreparedScenario {
        targets,
        neighbors,
        config_before,
        before,
        upgrade,
        reference,
        upgraded: state,
    }
}

impl PreparedScenario {
    /// Runs one tuning family from this prepared baseline.
    pub fn run(
        &self,
        sm: &StandardModel,
        tuning: TuningKind,
        cfg: &ExperimentConfig,
    ) -> RecoveryOutcome {
        let ev = &sm.evaluator;
        let mut state = self.upgraded.clone();
        let search = match tuning {
            TuningKind::Power => power_search(
                ev,
                &mut state,
                &self.reference,
                &self.neighbors,
                &cfg.search,
            ),
            TuningKind::Tilt => {
                tilt_search(ev, &mut state, &self.targets, &self.neighbors, &cfg.search)
            }
            TuningKind::Joint => joint_search(
                ev,
                &mut state,
                &self.reference,
                &self.targets,
                &self.neighbors,
                &cfg.search,
            ),
        };
        self.outcome(tuning, state, search)
    }

    /// Runs a portfolio search strategy (`--strategy`) over the
    /// neighbor set from this prepared baseline. The classic tuning
    /// families go through [`PreparedScenario::run`]; this path drives
    /// the whole recovery with one [`crate::search::SearchStrategy`],
    /// power and tilt jointly.
    pub fn run_strategy(
        &self,
        sm: &StandardModel,
        spec: StrategySpec,
        cfg: &ExperimentConfig,
    ) -> RecoveryOutcome {
        let ev = &sm.evaluator;
        let mut state = self.upgraded.clone();
        let hill = self.strategy_hill_params(cfg);
        let report = crate::search::run_strategy_spec(spec, hill, ev, &mut state, &self.neighbors);
        let search = SearchOutcome {
            steps: report.moves.clone(),
            utility: report.utility,
            probes: usize::try_from(report.probes).unwrap_or(usize::MAX),
        };
        let mut out = self.outcome(TuningKind::Joint, state, search);
        out.strategy = Some(report.strategy);
        out
    }

    /// The climb knobs a portfolio strategy runs with: the experiment's
    /// utility and step size, capped at the tuning move budget.
    fn strategy_hill_params(&self, cfg: &ExperimentConfig) -> HillClimbParams {
        HillClimbParams {
            utility: cfg.search.utility,
            step_db: cfg.search.step_db,
            tune_tilt: true,
            power_floor_below_nominal_db: cfg.pretune_params.power_floor_below_nominal_db,
            max_moves: cfg.search.max_changes,
            epsilon: cfg.search.epsilon,
        }
    }

    /// A clone of the post-outage starting state (what every strategy
    /// searches from) — for harnesses that drive strategies directly.
    pub fn start_state(&self) -> magus_model::ModelState {
        self.upgraded.clone()
    }

    /// Runs the naive baseline from this prepared baseline (Figure 13).
    pub fn run_naive(&self, sm: &StandardModel, cfg: &ExperimentConfig) -> RecoveryOutcome {
        let ev = &sm.evaluator;
        let mut state = self.upgraded.clone();
        let search = naive_search(ev, &mut state, &self.targets, &self.neighbors, &cfg.search);
        self.outcome(TuningKind::Power, state, search)
    }

    fn outcome(
        &self,
        tuning: TuningKind,
        state: magus_model::ModelState,
        search: SearchOutcome,
    ) -> RecoveryOutcome {
        RecoveryOutcome {
            tuning,
            targets: self.targets.clone(),
            neighbors: self.neighbors.clone(),
            before: self.before,
            upgrade: self.upgrade,
            after: UtilityReadings::of(&state),
            config_before: self.config_before.clone(),
            config_after: state.config().clone(),
            search,
            strategy: None,
        }
    }
}

/// Runs one recovery experiment, building the model from scratch.
pub fn run_recovery(
    market: &Market,
    scenario: UpgradeScenario,
    tuning: TuningKind,
    cfg: &ExperimentConfig,
) -> RecoveryOutcome {
    let sm = standard_setup(market, cfg.bandwidth);
    run_recovery_with(&sm, market, scenario, tuning, cfg)
}

/// Runs one recovery experiment against an existing model (reuse this
/// across a market's scenarios/tunings to amortize setup; for several
/// tunings of the *same* scenario, prefer [`prepare_scenario`]).
pub fn run_recovery_with(
    sm: &StandardModel,
    market: &Market,
    scenario: UpgradeScenario,
    tuning: TuningKind,
    cfg: &ExperimentConfig,
) -> RecoveryOutcome {
    prepare_scenario(sm, market, scenario, cfg).run(sm, tuning, cfg)
}

/// Runs the naive baseline under the same pipeline (for Figure 13's
/// improvement ratio).
pub fn run_naive_recovery(
    sm: &StandardModel,
    market: &Market,
    scenario: UpgradeScenario,
    cfg: &ExperimentConfig,
) -> RecoveryOutcome {
    prepare_scenario(sm, market, scenario, cfg).run_naive(sm, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_net::{AreaType, MarketParams};

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::default()
    }

    #[test]
    fn recovery_pipeline_produces_sane_numbers() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 31));
        let sm = standard_setup(&market, Bandwidth::Mhz10);
        let out = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            TuningKind::Power,
            &cfg(),
        );
        // The upgrade must hurt, and tuning must not make things worse
        // than the upgrade.
        assert!(out.upgrade.performance < out.before.performance);
        assert!(out.after.performance >= out.upgrade.performance);
        let r = out.recovery(UtilityKind::Performance);
        assert!(r >= 0.0, "recovery {r}");
        assert!(r <= 1.05, "recovery {r} exceeds full recovery");
        assert!(!out.neighbors.is_empty());
        assert!(!out.neighbors.contains(&out.targets[0]));
    }

    #[test]
    fn joint_beats_or_matches_tilt_alone() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 32));
        let sm = standard_setup(&market, Bandwidth::Mhz10);
        let tilt = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            TuningKind::Tilt,
            &cfg(),
        );
        let joint = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            TuningKind::Joint,
            &cfg(),
        );
        assert!(
            joint.recovery(UtilityKind::Performance)
                >= tilt.recovery(UtilityKind::Performance) - 1e-9
        );
    }

    #[test]
    fn naive_runs_and_is_comparable() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Suburban, 33));
        let sm = standard_setup(&market, Bandwidth::Mhz10);
        let magus = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::SingleCentralSector,
            TuningKind::Power,
            &cfg(),
        );
        let naive = run_naive_recovery(&sm, &market, UpgradeScenario::SingleCentralSector, &cfg());
        // Same C_before / C_upgrade baselines.
        assert!((magus.before.performance - naive.before.performance).abs() < 1e-9);
        assert!((magus.upgrade.performance - naive.upgrade.performance).abs() < 1e-9);
    }

    #[test]
    fn experiments_are_deterministic() {
        let market = magus_net::Market::generate(MarketParams::tiny(AreaType::Rural, 34));
        let sm = standard_setup(&market, Bandwidth::Mhz10);
        let a = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::CentralBaseStation,
            TuningKind::Power,
            &cfg(),
        );
        let b = run_recovery_with(
            &sm,
            &market,
            UpgradeScenario::CentralBaseStation,
            TuningKind::Power,
            &cfg(),
        );
        assert_eq!(a.search.steps, b.search.steps);
        assert_eq!(a.after.performance, b.after.performance);
    }
}
